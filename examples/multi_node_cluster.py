#!/usr/bin/env python3
"""Multi-node SPRIGHT: chain units per node, cluster-level load balancing.

§3.8 of the paper notes that scaling SPRIGHT beyond one node requires the
whole chain on every node (shared memory cannot cross machines) and load
balancing between the chain units. This example builds a 3-node cluster,
deploys one S-SPRIGHT chain unit per node, balances a closed-loop load over
them, and reports the per-unit split plus the placement fragmentation the
paper warns about.

Run:  python examples/multi_node_cluster.py
"""

from repro.dataplane import SSprightDataplane
from repro.dataplane.base import Request, RequestClass
from repro.runtime import (
    Cluster,
    ClusterIngress,
    FunctionSpec,
    fragmentation_report,
    sequential_chain,
)
from repro.stats import LatencyRecorder


def main() -> None:
    cluster = Cluster(node_count=3)
    ingress = ClusterIngress(cluster, policy="least_loaded")

    functions = [
        FunctionSpec(name="decode", service_time=60e-6),
        FunctionSpec(name="transform", service_time=90e-6),
        FunctionSpec(name="encode", service_time=60e-6),
    ]
    chain = sequential_chain("media", functions)

    unit_counter = [0]

    def plane_factory(node):
        unit_counter[0] += 1
        return SSprightDataplane(
            node, functions, chain_name=f"media-{unit_counter[0]}"
        )

    ingress.deploy_chain_units(chain, plane_factory)
    print(f"deployed {len(ingress.units)} chain units:")
    for unit in ingress.units:
        print(f"  {unit.plane.chain_name} on {unit.node.name}")

    recorder = LatencyRecorder()
    request_class = RequestClass(
        name="media", sequence=["decode", "transform", "encode"], payload_size=4096
    )

    def client(env, count):
        for _ in range(count):
            request = Request(
                request_class=request_class, payload=b"x" * 4096, created_at=env.now
            )
            yield env.process(ingress.submit(request))
            recorder.record(env.now, request.latency)
            yield env.timeout(0.001)

    for _ in range(12):
        cluster.env.process(client(cluster.env, 200))
    cluster.run(until=10.0)

    summary = recorder.summary("")
    print(f"\nrequests   : {summary.count}")
    print(f"mean       : {summary.mean * 1e3:.3f} ms")
    print(f"p99        : {summary.p99 * 1e3:.3f} ms")
    print("per-unit   :", [unit.served for unit in ingress.units])

    report = fragmentation_report(cluster)
    print(f"\nplacement  : {report['chains_per_node']}")
    print(f"fragmentation (stranded cores fraction): {report['fragmentation']:.2f}")
    print(
        "\nNote the §3.8 trade-off: every node hosts the *whole* chain "
        "(gateway + pool + all functions), so capacity fragments at chain "
        "granularity rather than per-function."
    )


if __name__ == "__main__":
    main()
