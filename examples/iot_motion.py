#!/usr/bin/env python3
"""IoT motion detection over MQTT, through the gateway's protocol adapter.

Demonstrates §3.6: MQTT PUBLISH packets arrive at the SPRIGHT gateway, the
*in-gateway* event-driven adapter converts them to CloudEvents (no separate
adapter pod, no extra stack traversal), and the payload drives the
sensor -> actuator chain. Also contrasts Knative's cold-start behaviour on
the same intermittent trace (the paper's Fig 11 scenario).

Run:  python examples/iot_motion.py
"""

import json

from repro.dataplane import SSprightDataplane
from repro.dataplane.base import RequestClass
from repro.experiments import motion_exp
from repro.protocols import ConnectPacket, PublishPacket
from repro.runtime import WorkerNode
from repro.workloads.motion import motion_functions


def adapter_demo() -> None:
    print("=== MQTT -> CloudEvent adaptation inside the gateway ===")
    node = WorkerNode()
    plane = SSprightDataplane(node, motion_functions(), chain_name="iot")
    plane.deploy()

    # Stateful L7: the gateway (not the adapter) owns the MQTT session.
    connack = plane.adapter_hook.sessions.connect(
        ConnectPacket(client_id="hallway-sensor").encode()
    )
    print(f"CONNECT handled at gateway, CONNACK bytes: {connack.hex()}")

    publish = PublishPacket(
        topic="sensors/motion/hall",
        payload=json.dumps({"sensor": 7, "motion": True}).encode(),
        qos=1,
        packet_id=42,
    )
    request_class = RequestClass(
        name="motion", sequence=["sensor", "actuator"], payload_size=64
    )
    results = {}

    def driver(env):
        request, ack = yield from plane.handle_raw(
            publish.encode(), "mqtt", request_class
        )
        results["request"] = request
        results["ack"] = ack

    node.env.process(driver(node.env))
    node.run(until=1.0)

    request = results["request"]
    print(f"chain response      : {request.response!r}")
    print(f"end-to-end latency  : {request.latency * 1e3:.3f} ms")
    print(f"PUBACK returned     : {results['ack'].hex()} (QoS 1 ack)")
    print(f"adapters loaded     : {plane.adapter_hook.loaded()}")
    print()


def cold_start_demo() -> None:
    print("=== Fig 11: cold starts vs always-warm (30 min trace) ===")
    runs = motion_exp.run_fig11(duration=1800.0)
    print(motion_exp.format_report(runs))
    knative = runs["knative"]
    spright = runs["s-spright"]
    print(
        f"\nKnative's worst event waited {knative.max_latency_s():.1f} s on pod "
        f"startup ({knative.cold_starts} cold starts); S-SPRIGHT stayed at "
        f"{spright.latency_ms('p99'):.2f} ms p99 with zero cold starts, because "
        "its warm pods cost no CPU while idle."
    )


if __name__ == "__main__":
    adapter_demo()
    cold_start_demo()
