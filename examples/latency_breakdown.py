#!/usr/bin/env python3
"""Where do the milliseconds go? Per-request waterfalls across dataplanes.

Sends one traced request through Knative, gRPC mode, and S-SPRIGHT, and
renders each journey as an ASCII waterfall — making the paper's Table 1/2
story visible per request: in Knative the dataplane (broker hops, sidecars,
kernel crossings) swamps the actual function work; in SPRIGHT the functions
dominate their own latency.

Run:  python examples/latency_breakdown.py
"""

from repro.dataplane import (
    GrpcDataplane,
    KnativeDataplane,
    Request,
    RequestClass,
    SSprightDataplane,
)
from repro.runtime import FunctionSpec, WorkerNode
from repro.stats import overhead_time, service_time, waterfall


def trace_one(plane_cls):
    node = WorkerNode()
    functions = [
        FunctionSpec(name="detect", service_time=300e-6, service_time_cv=0.0),
        FunctionSpec(name="annotate", service_time=150e-6, service_time_cv=0.0),
    ]
    plane = plane_cls(node, functions)
    plane.deploy()
    request = Request(
        request_class=RequestClass(
            name="inference", sequence=["detect", "annotate"], payload_size=1024
        ),
        payload=b"img" * 342,
        created_at=0.0,
    ).enable_timeline()

    def driver(env):
        yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=2.0)
    return request


def main() -> None:
    for plane_cls in (KnativeDataplane, GrpcDataplane, SSprightDataplane):
        request = trace_one(plane_cls)
        total_ms = request.latency * 1e3
        served = service_time(request.timeline)
        overhead = overhead_time(
            request.timeline, request.created_at, request.completed_at
        )
        print(f"=== {plane_cls.__name__} ===")
        print(waterfall(request.timeline, request.created_at))
        print(
            f"function work: {served * 1e3:.3f} ms "
            f"({served / request.latency * 100:.0f}%)   "
            f"dataplane overhead: {overhead * 1e3:.3f} ms "
            f"({overhead / request.latency * 100:.0f}%)   "
            f"total: {total_ms:.3f} ms"
        )
        print()


if __name__ == "__main__":
    main()
