#!/usr/bin/env python3
"""Quickstart: deploy a SPRIGHT function chain and send requests through it.

Builds a worker node, deploys a two-function chain on the S-SPRIGHT
dataplane (eBPF SPROXY + shared memory), drives a short closed-loop load,
and prints latency, CPU, and the per-request overhead audit that reproduces
the paper's Table 2 — all inside the simulated kernel.

Run:  python examples/quickstart.py
"""

from repro.audit import Auditor, OverheadKind
from repro.dataplane import RequestClass, SSprightDataplane
from repro.runtime import FunctionSpec, WorkerNode
from repro.stats import LatencyRecorder
from repro.workloads import ClosedLoopGenerator, WeightedMix


def main() -> None:
    # 1. A 40-core worker node with a simulated kernel (eBPF VM included).
    node = WorkerNode()

    # 2. Two functions; service_time is each invocation's CPU cost.
    functions = [
        FunctionSpec(name="resize", service_time=50e-6),
        FunctionSpec(name="watermark", service_time=80e-6),
    ]

    # 3. Deploy the chain on S-SPRIGHT: a private shared-memory pool, a
    #    2-core gateway, SPROXY sockets, and a security domain are created.
    plane = SSprightDataplane(node, functions, chain_name="images")
    plane.deploy()

    # 4. Drive it: 16 concurrent clients for 2 simulated seconds.
    request_class = RequestClass(
        name="thumbnail", sequence=["resize", "watermark"], payload_size=2048
    )
    recorder = LatencyRecorder()
    auditor = Auditor(name="quickstart")
    generator = ClosedLoopGenerator(
        node,
        plane,
        WeightedMix([request_class]),
        recorder,
        concurrency=16,
        duration=2.0,
        client_overhead=0.0005,
        auditor=auditor,
    )
    generator.start()
    node.run(until=2.0)

    # 5. Results.
    summary = recorder.summary("")
    print(f"requests completed : {summary.count}")
    print(f"throughput         : {summary.count / 2.0:,.0f} req/s")
    print(f"mean latency       : {summary.mean * 1e3:.3f} ms")
    print(f"p99 latency        : {summary.p99 * 1e3:.3f} ms")
    print(f"gateway CPU        : {node.cpu_percent_prefix('sspright/gw'):.0f}%")
    print(f"function CPU       : {node.cpu_percent_prefix('sspright/fn'):.0f}%")
    print()

    table = auditor.table()
    print("Per-request overhead audit (the paper's Table 2 accounting):")
    print(table.render())
    copies = table.chain_total(OverheadKind.COPY)
    print(f"\nZero-copy within the chain: {copies} data copies between functions.")

    pool = plane.runtime.pool
    print(
        f"Shared pool: {pool.stats.allocs} buffers used, "
        f"peak in flight {pool.stats.peak_in_use}, zero leaks "
        f"({pool.in_use_count} still allocated)."
    )


if __name__ == "__main__":
    main()
