#!/usr/bin/env python3
"""Online boutique: four dataplanes, one workload (the paper's §4.2.1).

Deploys the 10-service online boutique on Knative, plain gRPC, D-SPRIGHT,
and S-SPRIGHT, drives the Table 3 request mix with Locust-style users, and
prints a Table 5-shaped latency comparison plus CPU breakdowns.

Run:  python examples/boutique_demo.py [--scale 0.1] [--duration 60]
"""

import argparse

from repro.experiments import boutique_exp
from repro.stats import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--duration", type=float, default=40.0)
    args = parser.parse_args()

    rows = []
    for plane in ("knative", "grpc", "s-spright", "d-spright"):
        run = boutique_exp.run_boutique(
            plane, scale=args.scale, duration=args.duration
        )
        summary = run.recorder.summary("")
        rows.append(
            [
                plane,
                run.users,
                f"{run.rps:.0f}",
                summary.mean * 1e3,
                summary.p95 * 1e3,
                summary.p99 * 1e3,
                round(run.cpu("gw") + run.cpu("qp")),
                round(run.cpu("fn")),
            ]
        )
        print(f"[{plane}] done: {summary.count} requests")

    print()
    print(
        format_table(
            ["plane", "users", "RPS", "mean ms", "p95 ms", "p99 ms", "proxies %", "functions %"],
            rows,
            title=f"Online boutique @ scale={args.scale} (Table 5 layout)",
        )
    )
    print(
        "\nExpected shape (paper): Knative >> gRPC >> D-SPRIGHT ~ S-SPRIGHT in "
        "latency; S-SPRIGHT lowest CPU, D-SPRIGHT pays a polling floor."
    )


if __name__ == "__main__":
    main()
