#!/usr/bin/env python3
"""Automated parking garage: image detection & charging (the paper's Fig 12).

A camera sweeps 164 spots every 240 s; each ~3 KB snapshot flows through
plate detection (435 ms of VGG-16-grade CPU), plate search, optional
persist, and charging — Table 4's service times. Compares pre-warmed
Knative against always-warm S-SPRIGHT and prints the charging ledger the
functions actually built up in their pod-local state.

Run:  python examples/parking_garage.py
"""

from repro.experiments import parking_exp
from repro.workloads.parking import ParkingTraceParams


def main() -> None:
    params = ParkingTraceParams(duration=700.0)
    print("Running 700 s of garage operation on both planes...\n")
    runs = parking_exp.run_fig12(duration=700.0)
    print(parking_exp.format_report(runs))

    spright = runs["s-spright"]
    knative = runs["knative"]
    cpu_saving = 1 - spright.total_cpu_core_seconds() / knative.total_cpu_core_seconds()
    print(
        f"\nPaper's claim: ~41% CPU saving and ~16% lower response time for "
        f"S-SPRIGHT over pre-warmed Knative. Measured here: "
        f"{cpu_saving * 100:.0f}% CPU saving."
    )

    # Inspect the charging function's real application state.
    charging_pods = spright.plane_obj.deployments["charging"].servable_pods()
    ledger = {}
    for pod in charging_pods:
        ledger.update(pod.context.get("ledger", {}))
    billed = sorted(ledger.items())
    print(f"\nCharging ledger: {len(billed)} plates billed. First five:")
    for plate, amount in billed[:5]:
        print(f"  {plate}: ${amount:.2f}")

    detection = spright.recorder.summary("Ch-2")
    print(
        f"\nFast path (known plate, Ch-2): mean {detection.mean:.3f} s across "
        f"{detection.count} snapshots — dominated by the 435 ms VGG-16 stage, "
        "as Table 4 dictates."
    )


if __name__ == "__main__":
    main()
