#!/usr/bin/env python3
"""Write, verify, and run your own eBPF programs on the simulated kernel.

The reproduction ships a real (if small) eBPF stack: a register ISA, an
assembler with labels, a static verifier enforcing the kernel's safety
contract, maps, helpers, and hook points. This example builds a custom
SK_MSG rate-limiter program, watches the verifier reject unsafe programs,
and inspects the stock SPRIGHT programs.

Run:  python examples/ebpf_playground.py
"""

from repro.kernel.ebpf import (
    Assembler,
    ArrayMap,
    HELPER_ARRAY_ADD,
    MapRegistry,
    ProgramType,
    R0,
    R1,
    R2,
    R3,
    SK_DROP,
    SK_PASS,
    VerifierError,
    Vm,
    programs,
    verify,
)


def build_rate_limiter(counter_fd: int, limit: int):
    """SK_MSG program: pass the first ``limit`` messages, then drop.

    Equivalent C would read: if (__sync_fetch_and_add(&cnt, 1) >= limit)
    return SK_DROP; return SK_PASS;
    """
    asm = Assembler("rate_limiter")
    asm.mov_imm(R1, counter_fd)
    asm.mov_imm(R2, 0)            # slot 0 = message counter
    asm.mov_imm(R3, 1)
    asm.call(HELPER_ARRAY_ADD)    # R0 = ++counter
    asm.jgt_imm(R0, limit, "over")
    asm.mov_imm(R0, SK_PASS)
    asm.exit_()
    asm.label("over")
    asm.mov_imm(R0, SK_DROP)
    asm.exit_()
    return asm.build(ProgramType.SK_MSG)


def main() -> None:
    registry = MapRegistry()
    counter = ArrayMap(max_entries=1, name="msg_counter")
    fd = registry.create(counter)
    vm = Vm(registry)

    program = build_rate_limiter(fd, limit=3)
    verify(program)
    print(f"rate_limiter verified: {len(program)} instructions")

    verdicts = [vm.run(program).return_value for _ in range(5)]
    names = {SK_PASS: "PASS", SK_DROP: "DROP"}
    print("verdicts:", [names[v] for v in verdicts])
    assert verdicts == [SK_PASS, SK_PASS, SK_PASS, SK_DROP, SK_DROP]

    # The verifier rejects unsafe programs, exactly like the kernel.
    print("\nverifier rejections:")
    bad_read = Assembler("uninit").mov_reg(R0, R3).exit_().build(ProgramType.SK_MSG)
    try:
        verify(bad_read)
    except VerifierError as error:
        print(f"  uninitialized read : {error}")

    from repro.kernel.ebpf.isa import Insn, Op, Program

    looping = Program(
        insns=(Insn(Op.MOV_IMM, dst=R0, imm=0), Insn(Op.JA, off=-1), Insn(Op.EXIT)),
        prog_type=ProgramType.SK_MSG,
    )
    try:
        verify(looping)
    except VerifierError as error:
        print(f"  backward jump      : {error}")

    # The stock SPRIGHT programs, sized in instructions.
    print("\nstock SPRIGHT programs:")
    stock = {
        "sproxy_redirect": programs.sproxy_redirect(sockmap_fd=fd),
        "sproxy_filtered_redirect": programs.sproxy_filtered_redirect(fd, fd),
        "sproxy_l7_metrics": programs.sproxy_l7_metrics(fd),
        "eproxy_l3_metrics": programs.eproxy_l3_metrics(fd),
        "xdp_fib_forward": programs.xdp_fib_forward(),
        "tc_fib_forward": programs.tc_fib_forward(),
    }
    for name, prog in stock.items():
        print(f"  {name:26s} {len(prog):3d} insns ({prog.prog_type.value})")


if __name__ == "__main__":
    main()
