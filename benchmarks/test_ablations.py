"""Bench: ablations of SPRIGHT's design choices (DESIGN.md index)."""

from conftest import run_once

from repro.experiments import ablations


def test_dfr_ablation(benchmark):
    result = run_once(benchmark, ablations.run_dfr_ablation, duration=1.5)
    # Routing every hop through the gateway roughly doubles latency and
    # halves throughput on a 2-function chain.
    assert result["speedup"] > 1.3
    assert result["mediated"].rps < result["dfr"].rps


def test_security_filtering_is_cheap(benchmark):
    result = run_once(benchmark, ablations.run_security_ablation, duration=1.5)
    # §3.4's filtering runs a ~15-instruction eBPF program per descriptor:
    # its latency cost must be well under a microsecond per request.
    assert abs(result["latency_cost"]) < 0.01  # ms


def test_hugepage_ablation(benchmark):
    result = run_once(benchmark, ablations.run_hugepage_ablation)
    for size, data in result.items():
        assert data["hugepages_us"] < data["4k_pages_us"], size
        assert 0.0 < data["saving"] < 0.5


def test_lb_ablation(benchmark):
    result = run_once(benchmark, ablations.run_lb_ablation, duration=2.0)
    # Residual-capacity balancing should not lose to round robin on tails.
    assert result["residual"]["p95_ms"] <= result["round_robin"]["p95_ms"] * 1.25
