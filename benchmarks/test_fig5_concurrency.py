"""Bench E3/E11: regenerate Fig 5 (event-based vs polling shared memory)."""

from conftest import run_once

from repro.experiments import fig5

LEVELS = (1, 8, 32, 128)


def test_fig5_concurrency_sweep(benchmark):
    result = run_once(
        benchmark, fig5.run_fig5, levels=LEVELS, duration=1.0
    )
    print()
    print(fig5.format_report(result))

    knative_32 = result.at("knative", 32)
    s_32 = result.at("s-spright", 32)
    d_32 = result.at("d-spright", 32)

    # §3.2.2: S and D deliver ~5.7x Knative's RPS at concurrency 32.
    assert s_32.rps / knative_32.rps > 3.0
    assert d_32.rps / knative_32.rps > 3.0
    # Knative's latency is several times higher.
    assert knative_32.mean_latency_ms / s_32.mean_latency_ms > 3.0

    # D-SPRIGHT edges out S-SPRIGHT on peak throughput (paper: 1.2x) ...
    s_peak = max(point.rps for point in result.series("s-spright"))
    d_peak = max(point.rps for point in result.series("d-spright"))
    assert 0.95 < d_peak / s_peak < 1.6

    # ... but S-SPRIGHT's CPU is load-proportional while D pays a poll floor.
    s_idle = result.at("s-spright", 1)
    d_idle = result.at("d-spright", 1)
    assert d_idle.total_cpu / s_idle.total_cpu > 5.0
    assert s_idle.total_cpu < 100.0  # well under one core at concurrency 1

    # Knative's queue proxies dominate its CPU (paper: ~70%).
    assert knative_32.queue_proxy_cpu / knative_32.total_cpu > 0.5
