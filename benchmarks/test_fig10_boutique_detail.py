"""Bench E6: regenerate Fig 10 (boutique per-chain CDFs, latency, CPU)."""

from conftest import run_once

from repro.experiments import boutique_exp
from repro.workloads import boutique


def test_fig10_boutique_detail(benchmark, boutique_comparison):
    comparison = run_once(benchmark, lambda: boutique_comparison)
    print()
    print(boutique_exp.format_fig10(comparison))

    knative = comparison.runs["knative"]
    grpc = comparison.runs["grpc"]
    s_spright = comparison.runs["s-spright"]
    d_spright = comparison.runs["d-spright"]

    # (a)/(b): Knative's tail dwarfs gRPC's (paper: 693 ms vs 141 ms p95).
    assert knative.recorder.summary("").p95 > 2.0 * grpc.recorder.summary("").p95

    # (c): both SPRIGHT variants sit far below both baselines.
    for run in (s_spright, d_spright):
        assert run.recorder.summary("").p95 < grpc.recorder.summary("").p95

    # Checkout (Ch-6, the longest chain) is the slowest chain everywhere.
    for run in comparison.runs.values():
        if run.recorder.count("Ch-6") >= 5 and run.recorder.count("Ch-2") >= 5:
            assert (
                run.chain_summary("Ch-6").mean > run.chain_summary("Ch-2").mean
            ), run.plane

    # (g)-(i): Knative burns CPU on proxies; S-SPRIGHT's functions dominate
    # its own (small) footprint; D pays the polling floor.
    assert knative.cpu("qp") + knative.cpu("gw") > 0.5 * knative.cpu("fn")
    assert d_spright.cpu("fn") > 3.0 * s_spright.cpu("fn")

    # Every chain class saw traffic in every plane.
    for run in comparison.runs.values():
        seen = sum(1 for chain in boutique.CALL_SEQUENCES if run.recorder.count(chain))
        assert seen == len(boutique.CALL_SEQUENCES), run.plane
