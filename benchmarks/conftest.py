"""Benchmark fixtures: session-cached heavy runs shared across benches.

Every benchmark regenerates one paper artifact. Runs are deterministic, so
each is executed exactly once (pedantic, one round); pytest-benchmark
records the wall time of regenerating the artifact, and the test body
asserts the paper's qualitative shape on the result.
"""

import pytest

from repro.experiments import boutique_exp

BOUTIQUE_SCALE = 0.05
BOUTIQUE_DURATION = 30.0


@pytest.fixture(scope="session")
def boutique_comparison():
    """All four planes over the boutique mix, shared by Figs 9/10 + Table 5."""
    return boutique_exp.BoutiqueComparison().run_all(
        scale=BOUTIQUE_SCALE, duration=BOUTIQUE_DURATION
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Deterministic simulation: one round, one iteration."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
