"""Bench E8: regenerate Fig 11 (motion detection: cold start vs warm)."""

from conftest import run_once

from repro.experiments import motion_exp

DURATION = 1800.0  # half the paper's hour; same burst/idle structure


def test_fig11_motion(benchmark):
    runs = run_once(benchmark, motion_exp.run_fig11, duration=DURATION)
    print()
    print(motion_exp.format_report(runs))

    knative = runs["knative"]
    s_spright = runs["s-spright"]

    # Both planes saw the same trace.
    assert knative.recorder.count("") == s_spright.recorder.count("")

    # Knative pays multi-second cold-start tails (paper: up to ~9 s).
    assert knative.cold_starts > 0
    assert knative.max_latency_s() > 2.0
    # S-SPRIGHT never cold-starts and stays in the low milliseconds.
    assert s_spright.cold_starts == 0
    assert s_spright.max_latency_s() < 0.05
    assert s_spright.latency_ms("p99") < 10.0

    # Keeping SPRIGHT's pods warm costs (almost) nothing while idle.
    assert s_spright.fn_cpu_percent() < 1.0
    # Knative's pod churn (startup + termination) burns real CPU.
    assert knative.fn_cpu_percent() + knative.qp_cpu_percent() > 2.0
