"""Bench E9: regenerate Fig 12 (parking: pre-warmed Knative vs S-SPRIGHT)."""

from conftest import run_once

from repro.experiments import parking_exp


def test_fig12_parking(benchmark):
    runs = run_once(benchmark, parking_exp.run_fig12, duration=700.0)
    print()
    print(parking_exp.format_report(runs))

    knative = runs["knative"]
    s_spright = runs["s-spright"]

    # Same snapshots were processed by both planes.
    assert knative.recorder.count("") == s_spright.recorder.count("")

    # Paper: S-SPRIGHT saves ~41% CPU over the 700 s experiment.
    cpu_saving = 1 - s_spright.total_cpu_core_seconds() / knative.total_cpu_core_seconds()
    assert 0.2 < cpu_saving < 0.7, cpu_saving

    # Paper: ~16% lower response time (mean and p95).
    mean_saving = 1 - s_spright.latency_ms("mean") / knative.latency_ms("mean")
    assert 0.05 < mean_saving < 0.5, mean_saving
    assert s_spright.latency_ms("p95") < knative.latency_ms("p95")

    # Latency is dominated by the 435 ms VGG-16 stage on both planes.
    assert s_spright.latency_ms("mean") > 435.0
