"""Bench E1: regenerate Table 1 (Knative per-request overhead audit)."""

from conftest import run_once

from repro.audit import OverheadKind
from repro.experiments import audits

PAPER_TOTALS = {
    OverheadKind.COPY: 15,
    OverheadKind.CONTEXT_SWITCH: 15,
    OverheadKind.INTERRUPT: 25,
    OverheadKind.PROTOCOL_PROCESSING: 12,
    OverheadKind.SERIALIZATION: 8,
    OverheadKind.DESERIALIZATION: 7,
}


def test_table1_audit(benchmark):
    table = run_once(benchmark, audits.run_table1)
    print()
    print(table.render())
    for kind, expected in PAPER_TOTALS.items():
        assert table.total(kind) == expected, kind
    # Takeaway #1: ~80% of copies/switches happen within the chain.
    chain_share = table.chain_total(OverheadKind.COPY) / table.total(OverheadKind.COPY)
    assert abs(chain_share - 0.8) < 1e-9
