"""Bench E2: regenerate Fig 2 (sidecar proxy comparison)."""

from conftest import run_once

from repro.experiments import fig2


def test_fig2_sidecars(benchmark):
    results = run_once(benchmark, fig2.run_fig2, duration=3.0)
    print()
    print(fig2.format_report(results))
    by_name = {result.name: result for result in results}
    null = by_name["Null"]

    # Paper: equipping a sidecar costs 3x-7x in RPS, latency, and cycles.
    for name in ("QP", "Envoy", "OFW"):
        sidecar = by_name[name]
        rps_penalty = null.rps / sidecar.rps
        latency_penalty = sidecar.mean_latency_ms / null.mean_latency_ms
        cycles_penalty = sum(sidecar.cycles_per_request.values()) / sum(
            null.cycles_per_request.values()
        )
        assert 2.0 < rps_penalty < 10.0, (name, rps_penalty)
        assert 2.0 < latency_penalty < 14.0, (name, latency_penalty)
        assert 2.0 < cycles_penalty < 10.0, (name, cycles_penalty)

    # Envoy is the heaviest sidecar; the kernel stack carries a large share.
    assert by_name["Envoy"].rps < by_name["QP"].rps
    envoy_cycles = by_name["Envoy"].cycles_per_request
    assert envoy_cycles["kernel stack"] > 0.2 * envoy_cycles["sidecar container"]
