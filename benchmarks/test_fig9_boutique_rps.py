"""Bench E5: regenerate Fig 9 (boutique RPS time series, four planes).

This bench builds the shared boutique comparison (also consumed by the
Fig 10 and Table 5 benches); the pedantic timing covers all four plane runs.
"""

from conftest import BOUTIQUE_DURATION, BOUTIQUE_SCALE, run_once

from repro.experiments import boutique_exp


def test_fig9_boutique_rps(benchmark):
    comparison = run_once(
        benchmark,
        lambda: boutique_exp.BoutiqueComparison().run_all(
            scale=BOUTIQUE_SCALE, duration=BOUTIQUE_DURATION
        ),
    )
    print()
    print(boutique_exp.format_fig9(comparison, bucket=10.0))

    knative = comparison.runs["knative"]
    s_spright = comparison.runs["s-spright"]
    d_spright = comparison.runs["d-spright"]

    # SPRIGHT sustains 5x the users: its RPS exceeds Knative's.
    assert s_spright.rps > 1.5 * knative.rps
    # D and S track each other closely (paper: overlapping curves).
    assert abs(d_spright.rps - s_spright.rps) / s_spright.rps < 0.25

    # SPRIGHT's late-window RPS is stable (no overload collapse): completed
    # buckets in the last third stay within half of the series peak.
    series = [
        (t, rps)
        for t, rps in s_spright.rps_series(bucket=10.0)
        if t + 10.0 <= BOUTIQUE_DURATION  # only fully-elapsed buckets
    ]
    tail = [rps for t, rps in series if t >= BOUTIQUE_DURATION * 2 / 3 - 10.0]
    peak = max(rps for _, rps in series)
    assert tail and all(rps > 0.5 * peak for rps in tail)
