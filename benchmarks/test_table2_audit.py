"""Bench E4: regenerate Table 2 (SPRIGHT per-request overhead audit)."""

from conftest import run_once

from repro.audit import OverheadKind
from repro.experiments import audits

PAPER_TOTALS = {
    OverheadKind.COPY: 3,
    OverheadKind.CONTEXT_SWITCH: 7,
    OverheadKind.INTERRUPT: 11,
    OverheadKind.PROTOCOL_PROCESSING: 3,
    OverheadKind.SERIALIZATION: 2,
    OverheadKind.DESERIALIZATION: 1,
}


def test_table2_audit(benchmark):
    table = run_once(benchmark, audits.run_table2)
    print()
    print(table.render())
    for kind, expected in PAPER_TOTALS.items():
        assert table.total(kind) == expected, kind
    # The headline: zero copies / protocol work / (de)serialization in-chain.
    for kind in (
        OverheadKind.COPY,
        OverheadKind.PROTOCOL_PROCESSING,
        OverheadKind.SERIALIZATION,
        OverheadKind.DESERIALIZATION,
    ):
        assert table.chain_total(kind) == 0, kind
