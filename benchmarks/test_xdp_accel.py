"""Bench E10: regenerate the §3.5 claim (XDP/TC external-path acceleration)."""

from conftest import run_once

from repro.experiments import xdp_exp


def test_xdp_acceleration(benchmark):
    comparison = run_once(
        benchmark, xdp_exp.run_xdp_comparison, concurrency=64, duration=2.0
    )
    print()
    print(xdp_exp.format_report(comparison))

    # Paper: 1.3x throughput and ~20% latency reduction under peak load.
    assert 1.05 < comparison["throughput_gain"] < 1.6
    assert 0.10 < comparison["latency_reduction"] < 0.45
    # Acceleration must not help by doing less work at the gateway; it wins
    # by skipping the stack, not by dropping requests.
    assert comparison["accelerated"].rps > comparison["baseline"].rps
