"""Bench E7: regenerate Table 5 (boutique latency percentiles per plane)."""

from conftest import run_once

from repro.experiments import boutique_exp


def test_table5_latency(benchmark, boutique_comparison):
    comparison = run_once(benchmark, lambda: boutique_comparison)
    print()
    print(boutique_exp.format_table5(comparison))

    summaries = {
        plane: run.recorder.summary("") for plane, run in comparison.runs.items()
    }

    # Paper's ordering at 5K: Knative (693 ms p95) >> gRPC (141 ms)
    # >> D-SPRIGHT (11.1 ms) ~ S-SPRIGHT (13.4 ms).
    assert summaries["knative"].p95 > summaries["grpc"].p95
    assert summaries["grpc"].p95 > summaries["s-spright"].p95
    assert summaries["grpc"].p95 > summaries["d-spright"].p95

    # Knative's p95 advantage over SPRIGHT is an order of magnitude.
    assert summaries["knative"].p95 / summaries["s-spright"].p95 > 10.0

    # p99 >= p95 >= mean sanity on every plane.
    for plane, summary in summaries.items():
        assert summary.p99 >= summary.p95 >= summary.p50, plane
