"""Unit tests for the eBPF ISA, assembler, and interpreter."""

import pytest

from repro.kernel.ebpf import (
    Assembler,
    ArrayMap,
    HashMap,
    HELPER_ARRAY_ADD,
    HELPER_KTIME_GET_NS,
    HELPER_MAP_LOOKUP,
    HELPER_MAP_UPDATE,
    MapRegistry,
    ProgramType,
    R0,
    R1,
    R2,
    R3,
    R6,
    Scratch,
    Vm,
    VmFault,
)
from repro.kernel.ebpf.isa import Insn, Op


def run_program(asm, data=b"", registry=None, scratch=None):
    vm = Vm(registry)
    program = asm.build(ProgramType.XDP)
    return vm.run(program, data=data, scratch=scratch)


def test_mov_and_exit_returns_immediate():
    asm = Assembler("ret42").mov_imm(R0, 42).exit_()
    result = run_program(asm)
    assert result.return_value == 42
    assert result.insns_executed == 2


def test_alu_arithmetic():
    asm = (
        Assembler("math")
        .mov_imm(R0, 10)
        .add_imm(R0, 5)      # 15
        .mul_imm(R0, 4)      # 60
        .sub_imm(R0, 10)     # 50
        .div_imm(R0, 7)      # 7
        .mod_imm(R0, 4)      # 3
        .exit_()
    )
    assert run_program(asm).return_value == 3


def test_alu_register_ops_and_shifts():
    asm = (
        Assembler("bits")
        .mov_imm(R0, 0b1100)
        .mov_imm(R2, 0b1010)
        .and_reg(R0, R2)      # 0b1000
        .or_imm(R0, 0b0001)   # 0b1001
        .lsh_imm(R0, 4)       # 0b10010000
        .rsh_imm(R0, 2)       # 0b100100
        .exit_()
    )
    assert run_program(asm).return_value == 0b100100


def test_64bit_wraparound():
    asm = Assembler("wrap").mov_imm(R0, -1).add_imm(R0, 2).exit_()
    # -1 is stored as 2^64 - 1; +2 wraps to 1.
    assert run_program(asm).return_value == 1


def test_load_from_context():
    asm = Assembler("load").ld32(R0, R1, 4).exit_()
    data = (7).to_bytes(4, "little") + (99).to_bytes(4, "little")
    assert run_program(asm, data=data).return_value == 99


def test_load_sizes():
    data = bytes([0xAA, 0xBB, 0xCC, 0xDD, 0x11, 0x22, 0x33, 0x44])
    for op_name, size, expected in [
        ("ld8", 1, 0xAA),
        ("ld16", 2, 0xBBAA),
        ("ld32", 4, 0xDDCCBBAA),
        ("ld64", 8, 0x44332211DDCCBBAA),
    ]:
        asm = Assembler(op_name)
        getattr(asm, op_name)(R0, R1, 0)
        asm.exit_()
        assert run_program(asm, data=data).return_value == expected, op_name


def test_store_to_stack_and_reload():
    asm = (
        Assembler("stack")
        .mov_imm(R2, 1234)
        .st64(R1, R2, 0)  # spill via ctx base is fine too, but use fp:
        .exit_()
    )
    # Instead test the frame pointer path explicitly:
    asm = (
        Assembler("stack")
        .mov_imm(R2, 1234)
        .mov_reg(R3, 10)  # placeholder, rebuilt below
    )
    from repro.kernel.ebpf.isa import R10

    asm = Assembler("stack2")
    asm.mov_imm(R2, 1234)
    asm.st64(R10, R2, -8)
    asm.ld64(R0, R10, -8)
    asm.exit_()
    assert run_program(asm, data=b"\x00" * 8).return_value == 1234


def test_out_of_bounds_load_faults():
    asm = Assembler("oob").mov_imm(R2, 10_000_000).ld32(R0, R2, 0).exit_()
    with pytest.raises(VmFault, match="out of bounds"):
        run_program(asm, data=b"\x00" * 8)


def test_jump_taken_and_not_taken():
    def build(value):
        asm = Assembler("branch")
        asm.mov_imm(R2, value)
        asm.jeq_imm(R2, 5, "is_five")
        asm.mov_imm(R0, 0)
        asm.exit_()
        asm.label("is_five")
        asm.mov_imm(R0, 1)
        asm.exit_()
        return asm

    assert run_program(build(5)).return_value == 1
    assert run_program(build(6)).return_value == 0


def test_unconditional_jump_skips_code():
    asm = Assembler("ja")
    asm.mov_imm(R0, 1)
    asm.ja("end")
    asm.mov_imm(R0, 2)
    asm.label("end")
    asm.exit_()
    assert run_program(asm).return_value == 1


def test_jset_tests_bits():
    asm = Assembler("jset")
    asm.mov_imm(R2, 0b0110)
    asm.jset_imm(R2, 0b0100, "hit")
    asm.mov_imm(R0, 0)
    asm.exit_()
    asm.label("hit")
    asm.mov_imm(R0, 1)
    asm.exit_()
    assert run_program(asm).return_value == 1


def test_div_reg_by_zero_yields_zero():
    asm = (
        Assembler("divz")
        .mov_imm(R0, 100)
        .mov_imm(R2, 0)
        ._emit(Insn(Op.DIV_REG, dst=R0, src=R2))
        .exit_()
    )
    assert run_program(asm).return_value == 0


def test_helper_map_lookup_and_update():
    registry = MapRegistry()
    fd = registry.create(HashMap(max_entries=8, name="t"))
    asm = Assembler("map")
    asm.mov_imm(R1, fd)
    asm.mov_imm(R2, 7)       # key
    asm.mov_imm(R3, 31337)   # value
    asm.call(HELPER_MAP_UPDATE)
    asm.mov_imm(R1, fd)
    asm.mov_imm(R2, 7)
    asm.call(HELPER_MAP_LOOKUP)
    asm.exit_()
    assert run_program(asm, registry=registry).return_value == 31337


def test_helper_map_lookup_miss_returns_zero():
    registry = MapRegistry()
    fd = registry.create(HashMap(max_entries=8))
    asm = Assembler("miss")
    asm.mov_imm(R1, fd)
    asm.mov_imm(R2, 404)
    asm.call(HELPER_MAP_LOOKUP)
    asm.exit_()
    assert run_program(asm, registry=registry).return_value == 0


def test_helper_array_add_accumulates():
    registry = MapRegistry()
    fd = registry.create(ArrayMap(max_entries=2, name="metrics"))
    asm = Assembler("acc")
    for _ in range(3):
        asm.mov_imm(R1, fd)
        asm.mov_imm(R2, 0)
        asm.mov_imm(R3, 10)
        asm.call(HELPER_ARRAY_ADD)
    asm.exit_()
    result = run_program(asm, registry=registry)
    assert result.return_value == 30
    assert registry.get(fd).lookup(0) == 30


def test_helper_ktime_reads_scratch_clock():
    scratch = Scratch(now_ns=123456789)
    asm = Assembler("time").call(HELPER_KTIME_GET_NS).exit_()
    result = run_program(asm, scratch=scratch)
    assert result.return_value == 123456789


def test_unknown_helper_faults():
    asm = Assembler("bad").call(9999).exit_()
    with pytest.raises(VmFault, match="unknown helper"):
        run_program(asm)


def test_keep_register_across_helper_call():
    registry = MapRegistry()
    fd = registry.create(HashMap(max_entries=4))
    asm = Assembler("callee_saved")
    asm.mov_imm(R6, 55)        # R6 is callee-saved
    asm.mov_imm(R1, fd)
    asm.mov_imm(R2, 1)
    asm.call(HELPER_MAP_LOOKUP)
    asm.mov_reg(R0, R6)
    asm.exit_()
    assert run_program(asm, registry=registry).return_value == 55


def test_undefined_label_rejected_at_build():
    asm = Assembler("nolabel").mov_imm(R0, 0).ja("nowhere")
    with pytest.raises(ValueError, match="undefined label"):
        asm.build(ProgramType.XDP)


def test_duplicate_label_rejected():
    asm = Assembler("dup")
    asm.label("x")
    with pytest.raises(ValueError, match="duplicate label"):
        asm.label("x")


def test_invalid_register_rejected():
    with pytest.raises(ValueError, match="invalid register"):
        Insn(Op.MOV_IMM, dst=11)
