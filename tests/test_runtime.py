"""Tests for the orchestration substrate: pods, kubelet, autoscaler, placement."""

import pytest

from repro.kernel import NodeConfig
from repro.runtime import (
    Autoscaler,
    AutoscalerPolicy,
    ChainSpec,
    ENTRY,
    FunctionResult,
    FunctionSpec,
    Kubelet,
    MetricsServer,
    NodeDescriptor,
    PlacementEngine,
    PlacementError,
    PodMetrics,
    PodPhase,
    RESPONSE,
    WorkerNode,
    desired_scale_for_concurrency,
    sequential_chain,
)


def make_node(**overrides):
    config = NodeConfig(**overrides)
    return WorkerNode(config)


# -- specs ---------------------------------------------------------------------

def test_sequential_chain_routes():
    chain = sequential_chain(
        "c", [FunctionSpec(name="a"), FunctionSpec(name="b")]
    )
    assert chain.entry_function == "a"
    assert chain.next_hop("a") == "b"
    assert chain.next_hop("b") == RESPONSE


def test_chain_rejects_duplicate_function_names():
    with pytest.raises(ValueError, match="duplicate"):
        ChainSpec(
            name="c",
            functions=[FunctionSpec(name="a"), FunctionSpec(name="a")],
        )


def test_chain_rejects_dangling_route():
    with pytest.raises(ValueError, match="not in the chain"):
        ChainSpec(
            name="c",
            functions=[FunctionSpec(name="a")],
            routes={(ENTRY, ""): "ghost"},
        )


def test_chain_topic_routing_falls_back_to_default():
    chain = ChainSpec(
        name="c",
        functions=[FunctionSpec(name="a"), FunctionSpec(name="b")],
        routes={
            (ENTRY, ""): "a",
            ("a", "hot"): "b",
            ("a", ""): RESPONSE,
            ("b", ""): RESPONSE,
        },
    )
    assert chain.next_hop("a", "hot") == "b"
    assert chain.next_hop("a", "cold") == RESPONSE  # falls back to default


def test_function_spec_validation():
    with pytest.raises(ValueError):
        FunctionSpec(name="x", service_time=-1)
    with pytest.raises(ValueError):
        FunctionSpec(name="x", concurrency=0)
    with pytest.raises(ValueError):
        FunctionSpec(name="x", min_scale=5, max_scale=2)


# -- pods ------------------------------------------------------------------------

def test_pod_startup_delay_gates_readiness():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=True)
    pod = kubelet.create_pod(FunctionSpec(name="f"), cpu_tag="t/fn/f")
    assert pod.phase is PodPhase.STARTING
    node.run(until=30.0)
    assert pod.phase is PodPhase.RUNNING
    assert pod.ready.triggered


def test_pod_without_cold_start_is_ready_immediately():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False)
    pod = kubelet.create_pod(FunctionSpec(name="f"), cpu_tag="t/fn/f")
    node.run(until=0.001)
    assert pod.is_servable


def test_pod_serve_charges_service_time():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False)
    pod = kubelet.create_pod(
        FunctionSpec(name="f", service_time=0.010, service_time_cv=0.0),
        cpu_tag="t/fn/f",
    )
    results = []

    def client(env):
        yield pod.ready
        result = yield env.process(pod.serve(b"data"))
        results.append((env.now, result))

    node.env.process(client(node.env))
    node.run(until=1.0)
    assert len(results) == 1
    elapsed, result = results[0]
    assert isinstance(result, FunctionResult)
    assert result.payload == b"data"
    assert 0.009 <= elapsed <= 0.02
    assert node.cpu.accounting.total_busy["t/fn/f"] == pytest.approx(0.01, rel=0.2)


def test_pod_concurrency_limit_queues_requests():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False)
    pod = kubelet.create_pod(
        FunctionSpec(name="f", service_time=0.1, service_time_cv=0.0, concurrency=1),
        cpu_tag="t/fn/f",
    )
    completions = []

    def client(env, name):
        yield pod.ready
        yield env.process(pod.serve(b"x"))
        completions.append((name, round(env.now, 3)))

    node.env.process(client(node.env, "a"))
    node.env.process(client(node.env, "b"))
    node.run(until=2.0)
    assert [name for name, _ in completions] == ["a", "b"]
    # Second request waited for the first (concurrency=1).
    assert completions[1][1] >= 2 * 0.1 * 0.9


def test_pod_startup_burns_cpu():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=True)
    pod = kubelet.create_pod(FunctionSpec(name="f"), cpu_tag="t/fn/f")
    node.run(until=30.0)
    # Startup charged ~0.8 x delay of CPU.
    assert node.cpu.accounting.total_busy["t/fn/f"] > 0.5 * pod.startup_delay


def test_pod_termination_lag_holds_cpu():
    node = make_node(termination_lag=10.0)
    kubelet = Kubelet(node, cold_start_enabled=False)
    pod = kubelet.create_pod(FunctionSpec(name="f"), cpu_tag="t/fn/f")
    node.run(until=0.01)

    def killer(env):
        yield env.timeout(1.0)
        pod.terminate()

    node.env.process(killer(node.env))
    node.run(until=20.0)
    assert pod.phase is PodPhase.TERMINATED
    assert node.cpu.accounting.total_busy["t/fn/f"] == pytest.approx(
        10.0 * pod.termination_cpu_fraction, rel=0.05
    )


def test_pod_serve_while_pending_is_an_error():
    node = make_node()
    pod_spec = FunctionSpec(name="f")
    from repro.runtime.pod import Pod

    pod = Pod(node, pod_spec, cpu_tag="t")
    with pytest.raises(RuntimeError, match="not servable"):
        next(pod.serve(b"x"))


# -- deployment & autoscaler ---------------------------------------------------------

def test_desired_scale_rule():
    assert desired_scale_for_concurrency(0, 32, 0, 10) == 0
    assert desired_scale_for_concurrency(1, 32, 0, 10) == 1
    assert desired_scale_for_concurrency(33, 32, 0, 10) == 2
    assert desired_scale_for_concurrency(9999, 32, 0, 10) == 10
    assert desired_scale_for_concurrency(0, 32, 1, 10) == 1


def test_deployment_scale_up_and_down():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    deployment = kubelet.deployment(FunctionSpec(name="f", max_scale=5), "t/fn/f")
    deployment.scale_to(3)
    node.run(until=0.01)
    assert deployment.scale == 3
    deployment.scale_to(1)
    node.run(until=0.02)
    assert deployment.scale == 1


def test_deployment_residual_capacity_picks_least_loaded():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False)
    deployment = kubelet.deployment(
        FunctionSpec(name="f", service_time=0.01, concurrency=4, max_scale=4), "t/fn/f"
    )
    deployment.scale_to(2)
    node.run(until=0.01)
    pod_a, pod_b = deployment.servable_pods()
    pod_a.in_flight = 3
    for _ in range(20):
        pod_a.rate_window.observe(node.env.now)
    chosen = deployment.pick_residual_capacity()
    assert chosen is pod_b


def test_deployment_any_servable_event_fires_on_cold_start():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=True)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=0), "t/fn/f")
    times = []

    def waiter(env):
        yield deployment.any_servable_event()
        times.append(env.now)

    node.env.process(waiter(node.env))
    deployment.scale_to(1)
    node.run(until=30.0)
    assert times and times[0] > 0.5  # had to wait for the cold start


def test_autoscaler_scales_to_zero_after_grace_period():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    metrics = MetricsServer()
    autoscaler = Autoscaler(node, metrics)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=0), "t/fn/f")
    deployment.scale_to(1)
    autoscaler.register(
        deployment, AutoscalerPolicy(scale_to_zero=True, grace_period=5.0)
    )
    autoscaler.start()
    node.run(until=20.0)
    assert deployment.scale == 0


def test_autoscaler_respects_min_scale_without_zero_scaling():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    metrics = MetricsServer()
    autoscaler = Autoscaler(node, metrics)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=1), "t/fn/f")
    autoscaler.register(deployment, AutoscalerPolicy(scale_to_zero=False))
    autoscaler.start()
    node.run(until=60.0)
    assert deployment.scale == 1  # stays warm


def test_autoscaler_scales_up_under_reported_load():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    metrics = MetricsServer()
    autoscaler = Autoscaler(node, metrics)
    deployment = kubelet.deployment(
        FunctionSpec(name="f", min_scale=1, max_scale=8), "t/fn/f"
    )
    autoscaler.register(deployment, AutoscalerPolicy(target_concurrency=32))
    autoscaler.start()

    def reporter(env):
        yield env.timeout(1.0)
        metrics.report(
            PodMetrics(function="f", timestamp=env.now, request_rate=500, concurrency=100)
        )

    node.env.process(reporter(node.env))
    node.run(until=10.0)
    assert deployment.scale >= 4  # ceil(100/32) = 4


def test_autoscaler_prewarm_schedules_scale_up():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=True, termination_lag=0.0)
    metrics = MetricsServer()
    autoscaler = Autoscaler(node, metrics)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=0), "t/fn/f")
    autoscaler.prewarm(deployment, at_time=5.0)
    node.run(until=4.9)
    assert deployment.scale == 0
    node.run(until=15.0)
    assert deployment.scale == 1


def test_activator_starts_zero_scaled_function():
    node = make_node()
    kubelet = Kubelet(node, cold_start_enabled=True)
    metrics = MetricsServer()
    autoscaler = Autoscaler(node, metrics)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=0), "t/fn/f")
    assert deployment.scale == 0
    autoscaler.activate(deployment)
    assert deployment.scale == 1


# -- metrics server --------------------------------------------------------------------

def test_metrics_server_staleness():
    metrics = MetricsServer(staleness_limit=10.0)
    metrics.report(PodMetrics(function="f", timestamp=0.0, request_rate=5, concurrency=2))
    assert metrics.request_rate("f", now=5.0) == 5
    assert metrics.request_rate("f", now=50.0) == 0.0


# -- placement -----------------------------------------------------------------------------

def boutique_sized_chain(name, functions=10):
    return sequential_chain(
        name, [FunctionSpec(name=f"{name}-f{i}") for i in range(functions)]
    )


def test_placement_keeps_chain_on_one_node():
    engine = PlacementEngine()
    engine.add_node(NodeDescriptor(name="w1", cores=40))
    engine.add_node(NodeDescriptor(name="w2", cores=40))
    chain = boutique_sized_chain("boutique")
    node_name = engine.place_chain(chain)
    assert engine.node_of("boutique") == node_name


def test_placement_best_fit_packs_tightly():
    engine = PlacementEngine()
    engine.add_node(NodeDescriptor(name="big", cores=40))
    engine.add_node(NodeDescriptor(name="small", cores=8))
    chain = boutique_sized_chain("tiny", functions=2)  # needs 1.5 cores
    assert engine.place_chain(chain) == "small"


def test_placement_rejects_oversized_chain():
    engine = PlacementEngine()
    engine.add_node(NodeDescriptor(name="w1", cores=2))
    with pytest.raises(PlacementError):
        engine.place_chain(boutique_sized_chain("big"))


def test_placement_eviction_frees_capacity():
    engine = PlacementEngine()
    engine.add_node(NodeDescriptor(name="w1", cores=8))
    chain = boutique_sized_chain("c", functions=2)
    engine.place_chain(chain)
    committed = engine.nodes["w1"].committed_cores
    assert committed > 0
    engine.evict_chain(chain)
    assert engine.nodes["w1"].committed_cores == pytest.approx(0.0)


def test_fragmentation_reported():
    engine = PlacementEngine()
    engine.add_node(NodeDescriptor(name="w1", cores=10))
    engine.place_chain(boutique_sized_chain("c", functions=2))
    assert 0.0 < engine.fragmentation() < 1.0
