"""Property-based tests for span-tree invariants (repro.obs tracing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import (
    GrpcDataplane,
    KnativeDataplane,
    RequestClass,
    SSprightDataplane,
)
from repro.faults import ResiliencePolicy, load_plan
from repro.runtime import FunctionSpec, WorkerNode
from repro.stats import LatencyRecorder
from repro.workloads import ClosedLoopGenerator, WeightedMix

EPS = 1e-12

PLANES = {
    "knative": KnativeDataplane,
    "grpc": GrpcDataplane,
    "s-spright": SSprightDataplane,
}


def run_small_traced(
    plane_name: str,
    seed: int,
    duration: float = 1.0,
    fault_plan=None,
    resilience=None,
):
    """A tiny closed-loop run with tracing on; returns the node's tracer."""
    from repro.kernel import NodeConfig

    config = NodeConfig(root_seed=seed)
    config.cores = 8
    node = WorkerNode(config)
    tracer = node.obs.enable_tracing()
    functions = [
        FunctionSpec(name="fn-1", service_time=0.5e-3, service_time_cv=0.2),
        FunctionSpec(name="fn-2", service_time=1e-3, service_time_cv=0.2),
    ]
    plane = PLANES[plane_name](node, functions)
    plane.deploy()
    if fault_plan is not None:
        node.faults.arm(fault_plan)
    if resilience is not None:
        plane.use_resilience(resilience)
    mix = WeightedMix(
        [RequestClass(name="t", sequence=["fn-1", "fn-2"], payload_size=64)]
    )
    generator = ClosedLoopGenerator(
        node, plane, mix, LatencyRecorder(), concurrency=4, duration=duration
    )
    generator.start()
    node.run(until=duration)
    return tracer


def assert_tree_invariants(tracer):
    spans = tracer.finished_spans()
    by_sid = {span.sid: span for span in tracer.spans}
    for span in spans:
        if span.parent is None:
            continue
        # No orphans: every parent sid resolves to a created span.
        assert span.parent in by_sid, f"orphan span {span!r}"
        parent = by_sid[span.parent]
        # Child-within-parent bounds (closed parents only: a span whose
        # request was cut off at the horizon never closed).
        assert span.start >= parent.start - EPS
        if parent.end is not None and span.end is not None:
            assert span.end <= parent.end + EPS, (
                f"{span.name} [{span.start}, {span.end}] escapes "
                f"{parent.name} [{parent.start}, {parent.end}]"
            )
    # Phases of one root never overlap and are monotone.
    for root in tracer.roots():
        phases = sorted(
            (s for s in spans if s.parent == root.sid and s.category == "phase"),
            key=lambda s: s.start,
        )
        for before, after in zip(phases, phases[1:]):
            assert after.start >= before.end - EPS


def span_signature(tracer):
    return [
        (span.name, span.category, span.start, span.end, span.parent)
        for span in tracer.finished_spans()
    ]


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
@pytest.mark.parametrize("plane_name", sorted(PLANES))
def test_span_tree_invariants(plane_name, seed):
    tracer = run_small_traced(plane_name, seed)
    assert tracer.requests_started > 0
    assert_tree_invariants(tracer)


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_span_tree_deterministic_per_seed(seed):
    first = run_small_traced("s-spright", seed)
    second = run_small_traced("s-spright", seed)
    assert span_signature(first) == span_signature(second)


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_span_tree_invariants_with_faults_and_hedging(seed):
    """Interleaved retries/hedges must not break the tree shape."""
    policy = ResiliencePolicy(
        timeout=1.0, retries=2, hedge_delay=0.02, breaker_threshold=8
    )
    tracer = run_small_traced(
        "s-spright",
        seed,
        duration=1.5,
        fault_plan=load_plan("loss-crash"),
        resilience=policy,
    )
    assert tracer.requests_started > 0
    assert_tree_invariants(tracer)


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_span_counts_deterministic_with_fault_plan(seed):
    policy = ResiliencePolicy(timeout=1.0, retries=1, breaker_threshold=8)
    runs = [
        run_small_traced(
            "knative",
            seed,
            duration=1.0,
            fault_plan=load_plan("lossy"),
            resilience=policy,
        )
        for _ in range(2)
    ]
    assert span_signature(runs[0]) == span_signature(runs[1])
