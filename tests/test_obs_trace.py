"""End-to-end observability tests: export schema, coverage, reconciliation.

The trace-event JSON is validated against the checked-in schema at
``tests/schemas/trace_event.schema.json`` with a small hand-rolled
validator (no external jsonschema dependency) covering the subset of JSON
Schema the file uses: type, required, properties, items, enum, minimum,
if/then.
"""

import json
from pathlib import Path

import pytest

from repro import cli, obs
from repro.experiments import trace_exp

SCHEMA_PATH = Path(__file__).parent / "schemas" / "trace_event.schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(instance, schema, path="$"):
    """Minimal JSON Schema validator for the subset the trace schema uses."""
    errors = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        ok = isinstance(instance, python_type)
        if expected == "integer" and isinstance(instance, bool):
            ok = False
        if expected == "number" and isinstance(instance, bool):
            ok = False
        if not ok:
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate(instance[key], subschema, f"{path}.{key}"))
        if "if" in schema:
            matches = not validate(instance, schema["if"], path)
            if matches and "then" in schema:
                errors.extend(validate(instance, schema["then"], path))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{index}]"))
    return errors


def test_validator_rejects_bad_payloads():
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate({}, schema)  # missing required keys
    bad_event = {
        "traceEvents": [{"name": "x", "ph": "X", "pid": 1}],  # X without ts/dur
        "displayTimeUnit": "ms",
        "otherData": {"producer": "p", "spanCount": 0, "requestCount": 0},
    }
    assert validate(bad_event, schema)


@pytest.fixture(scope="module")
def traced_run():
    obs.reset_sessions()
    run = trace_exp.run_traced(
        plane="s-spright", workload="boutique", scale=0.05, duration=3.0
    )
    yield run
    obs.reset_sessions()


def test_trace_payload_matches_schema(traced_run):
    schema = json.loads(SCHEMA_PATH.read_text())
    payload = obs.export.trace_event_payload(traced_run.obs.tracer)
    errors = validate(payload, schema)
    assert not errors, errors[:10]
    assert payload["otherData"]["requestCount"] > 0


def test_span_coverage_at_least_95_percent(traced_run):
    coverages = traced_run.coverages()
    assert coverages
    assert min(coverages) >= 0.95


def test_openmetrics_reconciles_with_audit_exactly(traced_run):
    rows = traced_run.reconciliation()
    assert rows
    for kind, registry_count, audited, match in rows:
        assert match, f"{kind}: registry {registry_count} != audit {audited}"
    assert traced_run.reconciled()


def test_profiler_total_matches_accounting(traced_run):
    profiler = traced_run.obs.profiler
    accounting = traced_run.node.cpu.accounting
    assert profiler.total == pytest.approx(
        sum(accounting.total_busy.values()), rel=1e-9
    )
    folded = profiler.folded()
    assert folded.endswith("\n")
    for line in folded.splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert stack


def test_trace_report_renders(traced_run):
    report = trace_exp.format_trace_report(traced_run)
    assert "coverage >= 0.95   True" in report
    assert "exact" in report
    assert "NO" not in report.split("reconciliation")[1].split("Hottest")[0]


def test_observe_defaults_restored_after_run_traced(traced_run):
    assert obs.default_observe() == (False, False)


def test_traced_run_tables_byte_identical():
    """Tracing+profiling must not change a single byte of the tables."""
    from repro.audit import OverheadKind
    from repro.experiments.common import run_closed_loop
    from repro.workloads import boutique

    def one_run():
        result = run_closed_loop(
            "s-spright",
            boutique.spright_functions(),
            boutique.request_classes(),
            concurrency=8,
            duration=2.0,
            scale=0.05,
            audit=True,
        )
        return (
            result.auditor.table().render(),
            result.recorder.summary("").as_dict(),
            result.node.counters.as_dict(),
        )

    untraced = one_run()
    obs.set_default_observe(trace=True, profile=True)
    try:
        traced = one_run()
    finally:
        obs.set_default_observe(trace=False, profile=False)
    # The ops/* registry mirror only exists on the traced run; the legacy
    # counters (what reports read) must match exactly.
    assert untraced[0] == traced[0]
    assert untraced[1] == traced[1]
    assert untraced[2] == {
        name: count
        for name, count in traced[2].items()
        if not name.startswith("ops/")
    }


def test_cli_trace_command_writes_valid_artifacts(tmp_path, capsys):
    obs.reset_sessions()
    code = cli.main(
        [
            "trace",
            "--plane",
            "s-spright",
            "--workload",
            "boutique",
            "--duration",
            "2",
            "--scale",
            "0.05",
            "--out",
            str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Traced run" in out
    assert "reconciliation" in out
    trace_path = tmp_path / "sspright-boutique.trace.json"
    metrics_path = tmp_path / "sspright-boutique.metrics.txt"
    folded_path = tmp_path / "sspright-boutique.folded.txt"
    assert trace_path.exists() and metrics_path.exists() and folded_path.exists()
    schema = json.loads(SCHEMA_PATH.read_text())
    payload = json.loads(trace_path.read_text())
    assert not validate(payload, schema)
    metrics_text = metrics_path.read_text()
    assert metrics_text.endswith("# EOF\n")
    assert "spright_ops_sspright_copy_total" in metrics_text
    # Defaults restored: the trace command must not leak tracing.
    assert obs.default_observe() == (False, False)
    obs.reset_sessions()


def test_cli_global_trace_flags_export_artifacts(tmp_path, capsys):
    obs.reset_sessions()
    try:
        code = cli.main(
            [
                "fig5",
                "--max-concurrency",
                "2",
                "--duration",
                "0.5",
                "--trace",
                "--profile",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        traces = list(tmp_path.glob("fig5-node*.trace.json"))
        assert traces, list(tmp_path.iterdir())
        schema = json.loads(SCHEMA_PATH.read_text())
        for path in traces:
            assert not validate(json.loads(path.read_text()), schema)
    finally:
        obs.set_default_observe(trace=False, profile=False)
        obs.reset_sessions()
