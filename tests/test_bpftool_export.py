"""Tests for eBPF introspection (bpftool) and result export."""

import pytest

from repro.kernel.ebpf import (
    ArrayMap,
    HashMap,
    HookPoint,
    MapRegistry,
    ProgramType,
    SockMap,
    Vm,
    disassemble,
    disassemble_insn,
    map_dump,
    prog_list,
    programs,
    registry_summary,
    render_prog_list,
)
from repro.kernel.ebpf.isa import Insn, Op
from repro.stats import read_json, write_csv, write_json


# -- disassembler --------------------------------------------------------------

def test_disassemble_all_stock_programs():
    for program in (
        programs.sproxy_redirect(3),
        programs.sproxy_filtered_redirect(3, 4),
        programs.sproxy_l7_metrics(5),
        programs.eproxy_l3_metrics(5),
        programs.xdp_fib_forward(),
        programs.tc_fib_forward(),
    ):
        listing = disassemble(program)
        assert program.prog_type.value in listing
        assert listing.count("\n") == len(program)  # one line per insn + header
        assert "exit" in listing


def test_disassemble_insn_formats():
    assert "r0 = 7" in disassemble_insn(Insn(Op.MOV_IMM, dst=0, imm=7), 0)
    assert "call 60" in disassemble_insn(Insn(Op.CALL, imm=60), 1)
    assert "goto +3" in disassemble_insn(Insn(Op.JA, off=3), 2)
    assert "if r2 == 5 goto +1" in disassemble_insn(
        Insn(Op.JEQ_IMM, dst=2, imm=5, off=1), 3
    )
    assert "*(u32 *)(r6 +0)" in disassemble_insn(Insn(Op.LD32, dst=1, src=6, off=0), 4)
    assert "r1 <<= 16" in disassemble_insn(Insn(Op.LSH_IMM, dst=1, imm=16), 5)


# -- prog list -----------------------------------------------------------------

def test_prog_list_counts_fires():
    vm = Vm()
    hook = HookPoint("xdp@eth0", ProgramType.XDP, vm)
    hook.attach(programs.xdp_fib_forward())
    for _ in range(3):
        hook.fire(data=programs.encode_packet_ctx(100, 1))
    stats = prog_list([hook])
    assert len(stats) == 1
    assert stats[0].fire_count == 3
    assert stats[0].avg_insns_per_fire > 0
    rendered = render_prog_list([hook])
    assert "xdp@eth0" in rendered
    assert "xdp_forward" in rendered


def test_prog_stat_zero_fires():
    vm = Vm()
    hook = HookPoint("tc@veth", ProgramType.TC, vm)
    hook.attach(programs.tc_fib_forward())
    assert prog_list([hook])[0].avg_insns_per_fire == 0.0


# -- map dump ----------------------------------------------------------------------

def test_map_dump_array():
    array = ArrayMap(max_entries=3, name="metrics")
    array.update(0, 42)
    dump = map_dump(array)
    assert "[0] = 42" in dump
    assert "array" in dump


def test_map_dump_hash():
    table = HashMap(max_entries=8, name="filter")
    table.update(0x10002, 1)
    dump = map_dump(table)
    assert "0x10002" in dump


def test_map_dump_sockmap():
    class Sock:
        owner_tag = "fn-1"

        def deliver_descriptor(self, item):
            pass

    sockmap = SockMap(max_entries=4, name="sm")
    sockmap.update(7, Sock())
    dump = map_dump(sockmap)
    assert "[7] = socket:fn-1" in dump


def test_registry_summary_lists_all_maps():
    registry = MapRegistry()
    registry.create(HashMap(max_entries=4, name="a"))
    registry.create(ArrayMap(max_entries=2, name="b"))
    summary = registry_summary(registry)
    assert "a" in summary and "b" in summary
    assert "hash" in summary and "array" in summary


def test_node_wide_introspection_after_deployment():
    """A deployed SPRIGHT chain is fully visible through bpftool views."""
    from repro.dataplane import SSprightDataplane
    from repro.runtime import FunctionSpec, WorkerNode

    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="f", service_time=0.0)])
    plane.deploy()
    node.run(until=0.01)
    summary = registry_summary(node.map_registry)
    assert "sockmap-chain" in summary
    assert "filter-chain" in summary
    assert "l7metrics-chain" in summary


# -- export ------------------------------------------------------------------------------

def test_write_and_read_json_roundtrip(tmp_path):
    payload = {"rps": 1234.5, "series": [(0, 1), (1, 2)], "name": "fig9"}
    path = write_json(tmp_path / "out" / "fig9.json", payload)
    loaded = read_json(path)
    assert loaded["rps"] == 1234.5
    assert loaded["series"] == [[0, 1], [1, 2]]


def test_write_json_handles_dataclasses_and_bytes(tmp_path):
    from dataclasses import dataclass

    @dataclass
    class Point:
        x: int
        payload: bytes

    path = write_json(tmp_path / "point.json", Point(x=3, payload=b"\x01\x02"))
    loaded = read_json(path)
    assert loaded == {"x": 3, "payload": "0102"}


def test_write_csv(tmp_path):
    path = write_csv(
        tmp_path / "series.csv", ["t", "rps"], [[0, 100], [1, 200]]
    )
    content = path.read_text().strip().splitlines()
    assert content[0] == "t,rps"
    assert content[2] == "1,200"
