"""Registry-backed MetricsServer: equivalence with the legacy dict mode."""

from repro.obs import MetricsRegistry
from repro.runtime import MetricsServer, PodMetrics

SAMPLES = [
    PodMetrics(function="fn-a", timestamp=2.0, request_rate=10.0, concurrency=4),
    PodMetrics(function="fn-b", timestamp=4.0, request_rate=3.5, concurrency=1,
               response_time=0.02),
    PodMetrics(function="fn-a", timestamp=6.0, request_rate=12.0, concurrency=6),
]


def both_servers():
    legacy = MetricsServer()
    registry_backed = MetricsServer(registry=MetricsRegistry())
    for server in (legacy, registry_backed):
        for sample in SAMPLES:
            server.report(sample)
    return legacy, registry_backed


def test_latest_equivalent_in_both_modes():
    legacy, backed = both_servers()
    for function in ("fn-a", "fn-b"):
        assert legacy.latest(function) == backed.latest(function)
    assert backed.latest("fn-a").request_rate == 12.0
    assert backed.latest("fn-a").concurrency == 6
    assert isinstance(backed.latest("fn-a").concurrency, int)
    assert backed.latest("unknown") is None
    assert legacy.latest("unknown") is None


def test_query_helpers_equivalent():
    legacy, backed = both_servers()
    for function in ("fn-a", "fn-b", "unknown"):
        assert legacy.request_rate(function) == backed.request_rate(function)
        assert legacy.concurrency(function) == backed.concurrency(function)
    assert legacy.functions() == backed.functions() == ["fn-a", "fn-b"]
    assert legacy.reports_received == backed.reports_received == len(SAMPLES)


def test_staleness_limit_applies_in_both_modes():
    legacy, backed = both_servers()
    late = 6.0 + 31.0  # past the default 30 s staleness limit
    for server in (legacy, backed):
        assert server.latest("fn-a", now=late) is None
        assert server.request_rate("fn-a", now=late) == 0.0
        assert server.concurrency("fn-a", now=late) == 0
        assert server.latest("fn-a", now=10.0) is not None


def test_history_kept_in_both_modes():
    legacy, backed = both_servers()
    assert legacy.history("fn-a") == backed.history("fn-a")
    assert len(backed.history("fn-a")) == 2


def test_registry_mode_exposes_autoscale_gauges():
    registry = MetricsRegistry()
    server = MetricsServer(registry=registry)
    server.report(SAMPLES[0])
    assert registry.gauge("autoscale/fn-a/request_rate").value == 10.0
    assert registry.gauge("autoscale/fn-a/concurrency").value == 4
    text = registry.render_openmetrics()
    assert "spright_autoscale_fn_a_request_rate 10" in text


def test_autoscaler_reads_registry_backed_signals():
    """Regression: the autoscaler scales up from registry-backed metrics."""
    from repro.runtime import Autoscaler, AutoscalerPolicy, FunctionSpec, Kubelet
    from repro.runtime.node import WorkerNode

    node = WorkerNode()
    metrics = MetricsServer(registry=node.obs.registry)
    kubelet = Kubelet(node)
    spec = FunctionSpec(name="fn-a", service_time=1e-3, min_scale=1, max_scale=8)
    deployment = kubelet.deployment(spec, "test/fn/fn-a")
    deployment.ensure_scale(1)
    autoscaler = Autoscaler(node, metrics)
    autoscaler.register(deployment, AutoscalerPolicy(target_concurrency=2))
    autoscaler.start()

    def reporter(env):
        while True:
            yield env.timeout(1.0)
            metrics.report(
                PodMetrics(
                    function="fn-a",
                    timestamp=env.now,
                    request_rate=100.0,
                    concurrency=10,
                )
            )

    node.env.process(reporter(node.env))
    node.run(until=10.0)
    assert deployment.scale > 1  # scaled up from the reported concurrency


def test_snapshot_lists_stale_functions_in_both_modes():
    legacy, backed = both_servers()
    for server in (legacy, backed):
        snapshot = server.snapshot(now=6.0 + 31.0)  # fn-a stale, fn-b staler
        assert snapshot["schema"] == "spright.autoscale/1"
        assert snapshot["reports_received"] == len(SAMPLES)
        rows = {row["function"]: row for row in snapshot["functions"]}
        assert set(rows) == {"fn-a", "fn-b"}
        # latest() hides stale functions; snapshot() shows them flagged.
        assert rows["fn-a"]["stale"] and rows["fn-b"]["stale"]
        assert rows["fn-a"]["request_rate"] == 12.0
        fresh = server.snapshot(now=10.0)
        assert not any(row["stale"] for row in fresh["functions"])
        # Without a clock, staleness is unjudged (never flagged).
        assert not any(row["stale"] for row in server.snapshot()["functions"])
    assert legacy.snapshot(now=10.0) == backed.snapshot(now=10.0)
