"""Property-based tests (hypothesis) on codec roundtrips and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import PacketDescriptor
from repro.protocols import (
    CloudEvent,
    CoapCode,
    CoapMessage,
    HttpRequest,
    HttpResponse,
    ProtoMessage,
    PublishPacket,
    decode_frame,
    decode_request,
    decode_response,
    decode_varint,
    encode_frame,
    encode_request,
    encode_response,
    encode_varint,
)

header_token = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-"),
    min_size=1,
    max_size=24,
)


@given(body=st.binary(max_size=2048), path_suffix=header_token)
def test_http_request_roundtrip_property(body, path_suffix):
    request = HttpRequest(method="POST", path=f"/{path_suffix}", body=body)
    decoded = decode_request(encode_request(request))
    assert decoded.body == body
    assert decoded.path == f"/{path_suffix}"


@given(status=st.sampled_from([200, 201, 204, 400, 404, 500, 503]), body=st.binary(max_size=1024))
def test_http_response_roundtrip_property(status, body):
    decoded = decode_response(encode_response(HttpResponse(status=status, body=body)))
    assert decoded.status == status
    assert decoded.body == body


@given(value=st.integers(min_value=0, max_value=2**64 - 1))
def test_varint_roundtrip_property(value):
    decoded, offset = decode_varint(encode_varint(value))
    assert decoded == value
    assert offset == len(encode_varint(value))


@given(
    fields=st.dictionaries(
        keys=st.integers(min_value=1, max_value=100),
        values=st.one_of(
            st.integers(min_value=0, max_value=2**63),
            st.binary(max_size=128),
        ),
        max_size=12,
    )
)
def test_proto_message_roundtrip_property(fields):
    message = ProtoMessage()
    for number, value in fields.items():
        message.set(number, value)
    decoded = ProtoMessage.decode(message.encode())
    for number, value in fields.items():
        if isinstance(value, int):
            assert decoded.get_int(number) == value
        else:
            assert decoded.get_bytes(number) == value


@given(payload=st.binary(max_size=4096))
def test_grpc_frame_roundtrip_property(payload):
    message, compressed = decode_frame(encode_frame(payload))
    assert message == payload
    assert not compressed


@given(
    topic=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="/_-"),
        min_size=1,
        max_size=64,
    ),
    payload=st.binary(max_size=512),
    qos=st.integers(min_value=0, max_value=2),
    packet_id=st.integers(min_value=1, max_value=0xFFFF),
)
def test_mqtt_publish_roundtrip_property(topic, payload, qos, packet_id):
    packet = PublishPacket(topic=topic, payload=payload, qos=qos, packet_id=packet_id)
    decoded = PublishPacket.decode(packet.encode())
    assert decoded.topic == topic
    assert decoded.payload == payload
    assert decoded.qos == qos
    if qos > 0:
        assert decoded.packet_id == packet_id


@given(
    message_id=st.integers(min_value=0, max_value=0xFFFF),
    token=st.binary(max_size=8),
    segments=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1,
            max_size=30,
        ),
        max_size=4,
    ),
    payload=st.binary(max_size=256),
)
def test_coap_roundtrip_property(message_id, token, segments, payload):
    message = CoapMessage(
        code=CoapCode.POST,
        message_id=message_id,
        token=token,
        uri_path=segments,
        payload=payload,
    )
    decoded = CoapMessage.decode(message.encode())
    assert decoded.message_id == message_id
    assert decoded.token == token
    assert decoded.uri_path == segments
    assert decoded.payload == payload


@given(data=st.binary(max_size=1024), subject=st.one_of(st.none(), header_token))
def test_cloudevent_structured_roundtrip_property(data, subject):
    event = CloudEvent(id="i", source="/s", type="t", data=data, subject=subject)
    decoded = CloudEvent.from_structured(event.to_structured())
    assert decoded.data == data
    assert decoded.subject == subject


@given(
    next_fn=st.integers(min_value=0, max_value=2**32 - 1),
    shm_offset=st.integers(min_value=0, max_value=2**64 - 1),
    length=st.integers(min_value=0, max_value=2**32 - 1),
    generation=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_descriptor_roundtrip_property(next_fn, shm_offset, length, generation):
    descriptor = PacketDescriptor(
        next_fn=next_fn, shm_offset=shm_offset, length=length, generation=generation
    )
    assert PacketDescriptor.unpack(descriptor.pack()) == descriptor
    assert len(descriptor.pack()) == 24
