"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import ResiliencePolicy
from repro.kernel.ebpf import ArrayMap, HashMap
from repro.mem import PoolError, RteRing, SharedMemoryPool
from repro.simcore import CpuSet, Environment, RandomStreams, Store
from repro.stats import percentile, summarize


# -- DES engine ----------------------------------------------------------------

@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=24))
def test_event_ordering_matches_delays(delays):
    """Completions occur in nondecreasing time order regardless of input order."""
    env = Environment()
    order = []

    def waiter(env, delay):
        yield env.timeout(delay)
        order.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert order == sorted(order)
    assert len(order) == len(delays)
    assert env.now == max(delays)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_store_preserves_fifo_under_any_capacity(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    durations=st.lists(
        st.floats(min_value=1e-6, max_value=0.5), min_size=1, max_size=20
    ),
    cores=st.integers(min_value=1, max_value=8),
)
def test_cpu_busy_time_conserved(durations, cores):
    """Total recorded busy time equals total submitted work, exactly."""
    env = Environment()
    cpu = CpuSet(env, cores=cores)

    def work(env, duration):
        yield cpu.execute(duration, "w")

    for duration in durations:
        env.process(work(env, duration))
    env.run()
    assert abs(cpu.accounting.total_busy["w"] - sum(durations)) < 1e-9
    # Work conservation: makespan >= total work / cores (no magic speedup).
    assert env.now >= sum(durations) / cores - 1e-9


# -- shared memory pool ------------------------------------------------------------

@given(
    payloads=st.lists(st.binary(min_size=0, max_size=128), min_size=1, max_size=40)
)
def test_pool_alloc_free_conservation(payloads):
    """Free+in-use always equals capacity; reads return exact writes."""
    pool = SharedMemoryPool("p", "pfx", buffer_size=128, capacity=16)
    handles = []
    for payload in payloads:
        if pool.free_count == 0:
            handle = handles.pop(0)
            pool.free(handle)
        handle = pool.alloc()
        pool.write(handle, payload)
        assert pool.read(handle) == payload
        handles.append(handle)
        assert pool.free_count + pool.in_use_count == 16
    for handle in handles:
        pool.free(handle)
    assert pool.in_use_count == 0
    assert pool.stats.allocs == pool.stats.frees


@given(data=st.data())
def test_pool_buffers_never_overlap(data):
    """Two live buffers occupy disjoint byte ranges."""
    pool = SharedMemoryPool("p", "pfx", buffer_size=64, capacity=8)
    count = data.draw(st.integers(min_value=2, max_value=8))
    handles = [pool.alloc() for _ in range(count)]
    ranges = sorted((handle.offset, handle.offset + 64) for handle in handles)
    for (start_a, end_a), (start_b, _end_b) in zip(ranges, ranges[1:]):
        assert end_a <= start_b


# -- rings ------------------------------------------------------------------------------

@given(
    operations=st.lists(
        st.one_of(st.integers(min_value=0, max_value=1000), st.none()),
        min_size=1,
        max_size=200,
    )
)
def test_ring_conservation(operations):
    """enqueued == dequeued + still-in-ring + drops never lose an item."""
    ring = RteRing("r", size=16)
    accepted = 0
    dequeued = 0
    for operation in operations:
        if operation is None:
            ok, _ = ring.dequeue()
            if ok:
                dequeued += 1
        else:
            if ring.enqueue(operation):
                accepted += 1
    assert accepted == dequeued + ring.count
    assert ring.enqueued == accepted
    assert ring.dequeued == dequeued


@given(items=st.lists(st.integers(), min_size=1, max_size=64))
def test_ring_fifo_property(items):
    ring = RteRing("r", size=64)
    for item in items:
        assert ring.enqueue(item)
    out = ring.dequeue_burst(len(items))
    assert out == items


# -- maps -----------------------------------------------------------------------------------

@given(
    entries=st.dictionaries(
        keys=st.integers(min_value=0, max_value=2**32 - 1),
        values=st.integers(min_value=0, max_value=2**63),
        min_size=0,
        max_size=32,
    )
)
def test_hashmap_model_equivalence(entries):
    """The BPF hash map behaves exactly like a dict within capacity."""
    table = HashMap(max_entries=64)
    for key, value in entries.items():
        table.update(key, value)
    for key, value in entries.items():
        assert table.lookup(key) == value
    assert len(table) == len(entries)
    for key in list(entries):
        table.delete(key)
    assert len(table) == 0


@given(
    adds=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-1000, max_value=1000),
        ),
        max_size=50,
    )
)
def test_array_map_add_is_sum(adds):
    array = ArrayMap(max_entries=4)
    expected = [0, 0, 0, 0]
    for index, delta in adds:
        array.add(index, delta)
        expected[index] += delta
    for index in range(4):
        assert array.lookup(index) == expected[index]


# -- statistics ----------------------------------------------------------------------------

@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_percentiles_are_monotone_and_bounded(samples):
    ordered = sorted(samples)
    p50 = percentile(ordered, 0.5)
    p95 = percentile(ordered, 0.95)
    p99 = percentile(ordered, 0.99)
    # One-ulp slack throughout: interpolating between equal floats (and
    # averaging identical values) can exceed the endpoints by rounding.
    tolerance = 1e-9 * max(1.0, abs(ordered[-1]))
    assert ordered[0] - tolerance <= p50 <= p95 + tolerance
    assert p95 <= p99 + tolerance
    assert p99 <= ordered[-1] + tolerance
    summary = summarize(samples)
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=500,
    ),
    points=st.integers(min_value=1, max_value=300),
)
def test_cdf_is_monotone_nondecreasing_and_covers_one(samples, points):
    """cdf() is monotonically non-decreasing in both coordinates, ends at
    (max, 1.0) exactly once, and never emits duplicate points."""
    from repro.stats import LatencyRecorder

    recorder = LatencyRecorder()
    for sample in samples:
        recorder.record(0.0, sample)
    cdf = recorder.cdf(points=points)
    latencies = [point[0] for point in cdf]
    fractions = [point[1] for point in cdf]
    assert latencies == sorted(latencies)
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    assert latencies[-1] == max(samples)
    assert all(0.0 < fraction <= 1.0 for fraction in fractions)
    assert len(cdf) == len(set(cdf))


# -- resilience jitter determinism --------------------------------------------------

@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    attempts=st.integers(min_value=1, max_value=10),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)
def test_backoff_and_hedge_jitter_deterministic_per_seed(seed, attempts, jitter):
    """Same seed -> byte-identical delay sequences across fresh Environments.

    The resilience policy's only nondeterminism is its named RNG streams, so
    two independent simulations with the same root seed must schedule every
    retry backoff and hedge trigger at exactly the same instants.
    """
    policy = ResiliencePolicy(
        timeout=1.0, retries=9, hedge_delay=0.01, backoff_jitter=jitter
    )
    # Fresh Environment per replica: the streams live on the node/rng, not
    # the clock, and must not entangle with simulation state.
    runs = []
    for _ in range(2):
        Environment()  # fresh sim world, unused by the policy on purpose
        rng = RandomStreams(seed)
        backoffs = [policy.backoff_delay(rng, n) for n in range(1, attempts + 1)]
        hedges = [policy.hedge_jitter(rng) for _ in range(attempts)]
        runs.append((backoffs, hedges))
    assert runs[0] == runs[1]

    backoffs, hedges = runs[0]
    for n, delay in enumerate(backoffs, start=1):
        ceiling = min(policy.backoff_base * 2.0 ** (n - 1), policy.backoff_cap)
        assert ceiling * (1.0 - jitter) - 1e-12 <= delay
        assert delay <= ceiling * (1.0 + jitter) + 1e-12
    for delay in hedges:
        assert policy.hedge_delay * (1.0 - jitter) - 1e-12 <= delay
        assert delay <= policy.hedge_delay * (1.0 + jitter) + 1e-12


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_distinct_streams_do_not_entangle(seed):
    """Interleaving hedge draws must not perturb the backoff sequence."""
    policy = ResiliencePolicy(timeout=1.0, retries=4, hedge_delay=0.02)
    plain = RandomStreams(seed)
    interleaved = RandomStreams(seed)
    expected = [policy.backoff_delay(plain, n) for n in range(1, 5)]
    got = []
    for n in range(1, 5):
        policy.hedge_jitter(interleaved)  # extra draws on the *other* stream
        got.append(policy.backoff_delay(interleaved, n))
    assert got == expected
