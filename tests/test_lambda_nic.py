"""λ-NIC single-node plane: eligibility, fallback, and determinism."""

from repro.dataplane import RequestClass
from repro.experiments.common import run_closed_loop
from repro.dataplane.spright.xdp_accel import NicComputeEngine, NicComputeModel
from repro.kernel import NodeConfig
from repro.runtime import FunctionSpec, WorkerNode


def _engine(model=None):
    return NicComputeEngine(WorkerNode(NodeConfig()), model)


SHORT = [
    FunctionSpec("kv-get", 4e-6, nic_offloadable=True, nic_insns=64),
    FunctionSpec("kv-check", 3e-6, nic_offloadable=True, nic_insns=48),
]
MIXED = SHORT + [FunctionSpec("render", 200e-6)]  # over the NIC ceiling


def _run(functions, concurrency=8, duration=0.5, seed=2022, **kwargs):
    return run_closed_loop(
        "lambda-nic",
        functions,
        [RequestClass("seq", sequence=[f.name for f in functions])],
        concurrency=concurrency,
        duration=duration,
        seed=seed,
        **kwargs,
    )


# --- offload decision -------------------------------------------------------


def test_eligibility_requires_both_flag_and_ceiling():
    engine = _engine()
    assert engine.eligible(FunctionSpec("short", 10e-6, nic_offloadable=True))
    assert not engine.eligible(FunctionSpec("short-host", 10e-6))
    assert not engine.eligible(
        FunctionSpec("heavy", 200e-6, nic_offloadable=True)
    )
    # Exactly at the ceiling is still NIC-admissible.
    ceiling = engine.model.offload_ceiling
    assert engine.eligible(
        FunctionSpec("edge", ceiling, nic_offloadable=True)
    )


def test_nic_model_defaults_come_from_the_cost_model():
    node = WorkerNode(NodeConfig())
    engine = NicComputeEngine(node)
    costs = node.config.costs
    assert engine.model.cores == costs.nic_compute_cores
    assert engine.model.slowdown == costs.nic_compute_slowdown
    assert engine.model.offload_ceiling == costs.nic_offload_ceiling
    assert node.nic.offload_engine is engine


def test_reserve_release_respects_the_core_budget():
    engine = _engine(NicComputeModel(cores=2.0))
    assert engine.try_reserve()
    assert engine.try_reserve()
    assert not engine.try_reserve()  # third concurrent claim over budget
    assert engine.budget_fallbacks == 1
    engine.release()
    assert engine.try_reserve()
    counters = engine.node.counters.as_dict()
    assert counters["nic/budget_fallbacks"] == 1


# --- end-to-end plane behavior ----------------------------------------------


def test_all_short_chain_offloads_with_near_zero_host_cpu():
    result = _run(SHORT)
    counters = result.node.counters.as_dict()
    assert counters["lambdanic/offloaded"] > 0
    assert result.recorder.count("") > 0
    # fn/ pods never ran: the host served only budget-fallback residue.
    host_fn_cpu = result.cpu_percent("fn/")
    fallbacks = counters.get("lambdanic/host_fallbacks", 0)
    if fallbacks == 0:
        assert host_fn_cpu == 0.0
    engine = result.node.nic.offload_engine
    assert engine.nic_cpu_cores(result.duration) > 0.0


def test_heavy_function_forces_whole_sequence_to_the_host():
    result = _run(MIXED, duration=0.3)
    counters = result.node.counters.as_dict()
    completed = result.recorder.count("")
    assert completed > 0
    # Whole-sequence rule: one heavy function disqualifies the request.
    assert counters.get("lambdanic/offloaded", 0) == 0
    assert counters["lambdanic/host_fallbacks"] >= completed


def test_budget_exhaustion_falls_back_deterministically():
    def burst():
        return _run(SHORT, concurrency=48, duration=0.2, client_overhead=0.0)

    first = burst()
    second = burst()
    for result in (first, second):
        counters = result.node.counters.as_dict()
        assert counters["nic/budget_fallbacks"] > 0
        assert (
            counters["lambdanic/host_fallbacks"]
            == counters["nic/budget_fallbacks"]
        )
        assert counters["lambdanic/offloaded"] > 0
    # Same seed => same offload set: counters and latencies replay exactly.
    assert (
        first.node.counters.as_dict() == second.node.counters.as_dict()
    )
    assert first.recorder.count("") == second.recorder.count("")
    assert first.recorder.summary("").p99 == second.recorder.summary("").p99


def test_different_seeds_change_the_interleaving_not_the_contract():
    result = _run(SHORT, concurrency=48, duration=0.2, seed=7, client_overhead=0.0)
    counters = result.node.counters.as_dict()
    assert counters["lambdanic/offloaded"] > 0
    assert (
        counters.get("lambdanic/host_fallbacks", 0)
        == counters.get("nic/budget_fallbacks", 0)
    )
