"""Tests for the kernel substrate: costs, iptables, FIB, devices, packets."""

import pytest

from repro.kernel import (
    CostModel,
    DeviceRegistry,
    FibTable,
    FiveTuple,
    Message,
    NodeConfig,
    Packet,
    PhysicalNic,
    Rule,
    RuleChain,
    Verdict,
    VethPair,
    kubernetes_like_chain,
    usec,
)
from repro.kernel.ebpf import Vm
from repro.runtime import WorkerNode
from repro.simcore import Environment


# -- cost model -----------------------------------------------------------------

def test_usec_conversion():
    assert usec(1.0) == pytest.approx(1e-6)


def test_copy_cost_scales_with_size():
    costs = CostModel()
    assert costs.copy(10_000) > costs.copy(100) > costs.copy_fixed


def test_protocol_processing_includes_iptables_walk():
    costs = CostModel()
    base = costs.protocol_stack + 100 * costs.checksum_per_byte
    assert costs.protocol_processing(100) == pytest.approx(base + costs.iptables_walk())


def test_iptables_walk_grows_with_rule_count():
    few = CostModel(iptables_rules=10)
    many = CostModel(iptables_rules=1000)
    assert many.iptables_walk() > 10 * few.iptables_walk() / 2


def test_cycles_roundtrip():
    costs = CostModel()
    assert costs.seconds_from_cycles(costs.cycles(0.5)) == pytest.approx(0.5)


def test_serialize_vs_deserialize_asymmetry():
    costs = CostModel()
    assert costs.deserialize(1000) > costs.serialize(1000) * 0.9


# -- packets / messages -------------------------------------------------------------

def test_five_tuple_reversal():
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 1234, 80)
    back = flow.reversed()
    assert back.src_ip == "10.0.0.2"
    assert back.dst_port == 1234
    assert back.reversed().key() == flow.key()


def test_packet_size_includes_headers():
    packet = Packet(flow=FiveTuple("a", "b", 1, 2), payload=b"x" * 100)
    assert packet.size == 100 + packet.headers_len


def test_message_child_keeps_context():
    parent = Message(payload=b"req", topic="orders", caller_id="fn-1", created_at=5.0)
    child = parent.child(b"resp")
    assert child.topic == "orders"
    assert child.caller_id == "fn-1"
    assert child.created_at == 5.0
    assert child.message_id != parent.message_id


# -- iptables -----------------------------------------------------------------------

def pkt(dst_ip="10.1.1.1", dst_port=80):
    return Packet(flow=FiveTuple("10.0.0.1", dst_ip, 999, dst_port))


def test_chain_first_match_wins():
    chain = RuleChain("test")
    chain.append(Rule(verdict=Verdict.DROP, dst_port=80))
    chain.append(Rule(verdict=Verdict.ACCEPT, dst_port=80))
    result = chain.evaluate(pkt())
    assert result.verdict == Verdict.DROP
    assert result.rules_walked == 1


def test_chain_default_verdict_walks_all_rules():
    chain = RuleChain("test")
    for port in (1, 2, 3):
        chain.append(Rule(verdict=Verdict.DROP, dst_port=port))
    result = chain.evaluate(pkt(dst_port=999))
    assert result.verdict == Verdict.ACCEPT
    assert result.rules_walked == 3


def test_dnat_translation_carried_in_traversal():
    chain = RuleChain("nat")
    chain.append(
        Rule(
            verdict=Verdict.DNAT,
            dst_ip="10.96.0.1",
            dst_port=443,
            nat_to=("10.244.1.5", 8443),
        )
    )
    result = chain.evaluate(pkt(dst_ip="10.96.0.1", dst_port=443))
    assert result.verdict == Verdict.DNAT
    assert result.nat_to == ("10.244.1.5", 8443)


def test_kubernetes_like_chain_has_filler_then_services():
    chain = kubernetes_like_chain(
        [("10.96.0.10", 80, "10.244.0.7", 8080)], filler_rules=50
    )
    assert len(chain) == 51
    result = chain.evaluate(pkt(dst_ip="10.96.0.10", dst_port=80))
    assert result.verdict == Verdict.DNAT
    assert result.rules_walked == 51  # walked all the filler first


def test_rule_protocol_matcher():
    rule = Rule(verdict=Verdict.ACCEPT, protocol="udp")
    assert not rule.matches(pkt())  # default protocol is tcp


# -- FIB --------------------------------------------------------------------------------

def test_fib_exact_route_beats_default():
    fib = FibTable()
    fib.add_route("10.0.0.9", ifindex=3)
    fib.set_default(ifindex=1)
    assert fib.lookup(FiveTuple("a", "10.0.0.9", 1, 2)) == 3
    assert fib.lookup(FiveTuple("a", "203.0.113.1", 1, 2)) == 1


def test_fib_miss_without_default():
    fib = FibTable()
    assert fib.lookup(FiveTuple("a", "b", 1, 2)) is None
    assert fib.lookup_count == 1


def test_fib_route_removal():
    fib = FibTable()
    fib.add_route("10.0.0.9", ifindex=3)
    fib.remove_route("10.0.0.9")
    with pytest.raises(KeyError):
        fib.remove_route("10.0.0.9")
    assert len(fib) == 0


# -- devices ----------------------------------------------------------------------------

def test_device_registry_assigns_unique_ifindexes():
    env = Environment()
    registry = DeviceRegistry()
    vm = Vm()
    nic = PhysicalNic(env, registry, vm)
    pair = VethPair(env, registry, vm, pod_name="fn-1")
    indexes = {nic.ifindex, pair.host_side.ifindex, pair.pod_side.ifindex}
    assert len(indexes) == 3
    assert registry.get(nic.ifindex) is nic


def test_veth_send_appears_on_peer():
    env = Environment()
    registry = DeviceRegistry()
    vm = Vm()
    pair = VethPair(env, registry, vm, pod_name="fn-1")
    packet = Packet(flow=FiveTuple("a", "b", 1, 2), payload=b"data")
    pair.pod_side.send_frame(packet)
    assert pair.host_side.frames_received == 1
    assert packet.ingress_ifindex == pair.host_side.ifindex


def test_host_side_veth_has_tc_hook_pod_side_does_not():
    env = Environment()
    registry = DeviceRegistry()
    vm = Vm()
    pair = VethPair(env, registry, vm, pod_name="x")
    assert pair.host_side.tc_hook is not None
    assert pair.pod_side.tc_hook is None


def test_nic_has_xdp_hook_and_10g_link():
    env = Environment()
    registry = DeviceRegistry()
    nic = PhysicalNic(env, registry, Vm())
    assert nic.xdp_hook.prog_type.value == "xdp"
    assert nic.link_speed_bps == 10e9


# -- node wiring ---------------------------------------------------------------------------

def test_worker_node_defaults_match_testbed():
    node = WorkerNode()
    assert node.cpu.total_cores == 40
    assert node.config.costs.cpu_freq_hz == pytest.approx(2.2e9)
    assert node.nic.ifindex >= 1


def test_node_cpu_prefix_aggregation():
    node = WorkerNode()

    def work(env):
        yield node.cpu.execute(1.0, "plane/fn/a")
        yield node.cpu.execute(1.0, "plane/fn/b")
        yield node.cpu.execute(1.0, "plane/gw")

    node.env.process(work(node.env))
    node.run(until=4.0)
    assert node.cpu_percent_prefix("plane/fn", 4.0) == pytest.approx(50.0)
    assert node.cpu_percent_prefix("plane/", 4.0) == pytest.approx(75.0)


def test_node_config_custom_cores():
    config = NodeConfig()
    config.cores = 8
    node = WorkerNode(config)
    assert node.cpu.total_cores == 8
