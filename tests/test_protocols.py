"""Unit tests for the protocol codecs."""

import pytest

from repro.protocols import (
    CloudEvent,
    CloudEventError,
    CoapCode,
    CoapError,
    CoapMessage,
    CoapType,
    ConnackPacket,
    ConnectPacket,
    GrpcCall,
    GrpcError,
    HttpError,
    HttpRequest,
    HttpResponse,
    MqttError,
    PacketType,
    ProtoMessage,
    PubackPacket,
    PublishPacket,
    decode_frame,
    decode_request,
    decode_response,
    decode_varint,
    encode_frame,
    encode_request,
    encode_response,
    encode_varint,
    packet_type,
)


# -- HTTP/1.1 -----------------------------------------------------------------

def test_http_request_roundtrip():
    request = HttpRequest(
        method="POST",
        path="/cart/checkout",
        headers={"content-type": "application/json"},
        body=b'{"user": 7}',
    )
    decoded = decode_request(encode_request(request))
    assert decoded.method == "POST"
    assert decoded.path == "/cart/checkout"
    assert decoded.body == b'{"user": 7}'
    assert decoded.header("Content-Type") == "application/json"


def test_http_get_has_no_content_length_requirement():
    raw = encode_request(HttpRequest(method="GET", path="/"))
    decoded = decode_request(raw)
    assert decoded.body == b""


def test_http_response_roundtrip():
    response = HttpResponse(status=404, body=b"nope")
    decoded = decode_response(encode_response(response))
    assert decoded.status == 404
    assert decoded.reason == "Not Found"
    assert decoded.body == b"nope"


def test_http_rejects_unknown_method():
    with pytest.raises(HttpError):
        encode_request(HttpRequest(method="BREW"))
    with pytest.raises(HttpError):
        decode_request(b"BREW / HTTP/1.1\r\n\r\n")


def test_http_rejects_missing_terminator():
    with pytest.raises(HttpError, match="incomplete"):
        decode_request(b"GET / HTTP/1.1\r\nhost: x\r\n")


def test_http_rejects_truncated_body():
    raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"
    with pytest.raises(HttpError, match="truncated"):
        decode_request(raw)


def test_http_malformed_header_line():
    with pytest.raises(HttpError, match="malformed header"):
        decode_request(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")


def test_http_binary_body_preserved():
    body = bytes(range(256))
    raw = encode_request(HttpRequest(method="POST", path="/img", body=body))
    assert decode_request(raw).body == body


# -- gRPC / protobuf --------------------------------------------------------------

def test_varint_roundtrip_small_and_large():
    for value in (0, 1, 127, 128, 300, 2**32, 2**63 - 1):
        raw = encode_varint(value)
        decoded, offset = decode_varint(raw)
        assert decoded == value
        assert offset == len(raw)


def test_varint_truncated():
    with pytest.raises(GrpcError, match="truncated"):
        decode_varint(b"\x80")


def test_proto_message_roundtrip():
    message = ProtoMessage().set(1, 42).set(2, "currency").set(3, b"\x01\x02")
    decoded = ProtoMessage.decode(message.encode())
    assert decoded.get_int(1) == 42
    assert decoded.get_str(2) == "currency"
    assert decoded.get_bytes(3) == b"\x01\x02"


def test_proto_field_number_validation():
    with pytest.raises(GrpcError):
        ProtoMessage().set(0, 1)


def test_grpc_frame_roundtrip():
    message, compressed = decode_frame(encode_frame(b"payload"))
    assert message == b"payload"
    assert not compressed


def test_grpc_frame_truncation_detected():
    raw = encode_frame(b"payload")[:-2]
    with pytest.raises(GrpcError, match="truncated"):
        decode_frame(raw)


def test_grpc_call_roundtrip():
    call = GrpcCall(
        service="hipstershop.CurrencyService",
        method="Convert",
        message=ProtoMessage().set(1, "USD").set(2, 1999),
    )
    decoded = GrpcCall.decode(call.path, call.encode())
    assert decoded.service == "hipstershop.CurrencyService"
    assert decoded.method == "Convert"
    assert decoded.message.get_int(2) == 1999


def test_grpc_bad_path():
    with pytest.raises(GrpcError, match="malformed gRPC path"):
        GrpcCall.decode("noslash", encode_frame(b""))


# -- MQTT -----------------------------------------------------------------------

def test_mqtt_varlen_roundtrip():
    from repro.protocols.mqtt import decode_varlen, encode_varlen

    for value in (0, 127, 128, 16383, 16384, 268_435_455):
        raw = encode_varlen(value)
        decoded, offset = decode_varlen(raw)
        assert decoded == value
        assert offset == len(raw)


def test_mqtt_connect_roundtrip():
    packet = ConnectPacket(client_id="motion-sensor-7", keep_alive=30)
    decoded = ConnectPacket.decode(packet.encode())
    assert decoded.client_id == "motion-sensor-7"
    assert decoded.keep_alive == 30
    assert decoded.clean_start


def test_mqtt_connack_roundtrip():
    decoded = ConnackPacket.decode(ConnackPacket(reason_code=0).encode())
    assert decoded.reason_code == 0


def test_mqtt_publish_qos1_roundtrip():
    packet = PublishPacket(topic="sensors/motion/42", payload=b"ON", qos=1, packet_id=77)
    decoded = PublishPacket.decode(packet.encode())
    assert decoded.topic == "sensors/motion/42"
    assert decoded.payload == b"ON"
    assert decoded.packet_id == 77


def test_mqtt_publish_qos0_has_no_packet_id():
    packet = PublishPacket(topic="t", payload=b"x", qos=0)
    decoded = PublishPacket.decode(packet.encode())
    assert decoded.qos == 0
    assert decoded.packet_id == 0


def test_mqtt_puback_roundtrip():
    decoded = PubackPacket.decode(PubackPacket(packet_id=77).encode())
    assert decoded.packet_id == 77


def test_mqtt_packet_type_dispatch():
    assert packet_type(PublishPacket(topic="t", payload=b"").encode()) == PacketType.PUBLISH
    assert packet_type(ConnectPacket(client_id="c").encode()) == PacketType.CONNECT


def test_mqtt_wrong_type_rejected():
    with pytest.raises(MqttError, match="expected CONNECT"):
        ConnectPacket.decode(PublishPacket(topic="t", payload=b"").encode())


# -- CoAP ---------------------------------------------------------------------------

def test_coap_roundtrip_with_options_and_payload():
    message = CoapMessage(
        code=CoapCode.POST,
        message_id=4242,
        token=b"\xde\xad",
        uri_path=["sensors", "motion"],
        content_format=42,
        payload=b'{"state": "on"}',
    )
    decoded = CoapMessage.decode(message.encode())
    assert decoded.code == CoapCode.POST
    assert decoded.message_id == 4242
    assert decoded.token == b"\xde\xad"
    assert decoded.uri_path == ["sensors", "motion"]
    assert decoded.content_format == 42
    assert decoded.payload == b'{"state": "on"}'
    assert decoded.path == "/sensors/motion"


def test_coap_empty_payload_roundtrip():
    message = CoapMessage(code=CoapCode.GET, message_id=1)
    decoded = CoapMessage.decode(message.encode())
    assert decoded.payload == b""
    assert decoded.msg_type == CoapType.CON


def test_coap_token_too_long():
    with pytest.raises(CoapError, match="token"):
        CoapMessage(code=CoapCode.GET, message_id=1, token=b"123456789").encode()


def test_coap_truncated_rejected():
    with pytest.raises(CoapError):
        CoapMessage.decode(b"\x40\x01")


def test_coap_long_uri_segment_uses_extended_option_length():
    segment = "x" * 300
    message = CoapMessage(code=CoapCode.GET, message_id=2, uri_path=[segment])
    assert CoapMessage.decode(message.encode()).uri_path == [segment]


# -- CloudEvents -----------------------------------------------------------------------

def test_cloudevent_structured_roundtrip():
    event = CloudEvent(
        id="evt-1",
        source="/sensors/7",
        type="com.example.motion",
        data=b"\x00\x01binary",
        subject="motion",
        extensions={"chain": "iot"},
    )
    decoded = CloudEvent.from_structured(event.to_structured())
    assert decoded.id == "evt-1"
    assert decoded.data == b"\x00\x01binary"
    assert decoded.extensions == {"chain": "iot"}


def test_cloudevent_binary_mode_roundtrip():
    event = CloudEvent(id="1", source="/s", type="t", data=b"body")
    headers, body = event.to_binary_headers()
    decoded = CloudEvent.from_binary_headers(headers, body)
    assert decoded.id == "1"
    assert decoded.data == b"body"


def test_cloudevent_missing_required_attribute():
    with pytest.raises(CloudEventError, match="required"):
        CloudEvent(id="", source="/s", type="t")
    with pytest.raises(CloudEventError, match="missing required"):
        CloudEvent.from_structured(b'{"specversion": "1.0", "id": "1", "source": "/s"}')


def test_cloudevent_bad_json():
    with pytest.raises(CloudEventError, match="not a JSON envelope"):
        CloudEvent.from_structured(b"\xff\xfe")
