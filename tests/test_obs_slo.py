"""SLO burn-rate monitor tests: quantiles, paired windows, board feeding."""

import math

import pytest

from repro.obs.metrics import HistogramMetric, MetricsRegistry
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnRateMonitor,
    SloBoard,
    SloTarget,
    histogram_quantile,
    targets_from_registry,
)
from repro.stats import LatencyRecorder


# -- histogram quantiles ------------------------------------------------------

def test_histogram_quantile_empty_is_nan():
    hist = HistogramMetric("h", bounds=(1.0, 2.0))
    assert math.isnan(histogram_quantile(hist, 0.5))


def test_histogram_quantile_rejects_bad_quantile():
    hist = HistogramMetric("h", bounds=(1.0,))
    with pytest.raises(ValueError):
        histogram_quantile(hist, 1.5)


def test_histogram_quantile_linear_interpolation():
    hist = HistogramMetric("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5,) * 10 + (1.5,) * 10:
        hist.observe(value)
    # 20 samples: rank of p50 = 10, exactly fills the first bucket.
    assert histogram_quantile(hist, 0.5) == pytest.approx(1.0)
    # p75 -> rank 15, halfway through the (1, 2] bucket.
    assert histogram_quantile(hist, 0.75) == pytest.approx(1.5)


def test_histogram_quantile_overflow_reports_highest_bound():
    hist = HistogramMetric("h", bounds=(1.0, 2.0))
    hist.observe(50.0)  # lands in the +Inf bucket
    assert histogram_quantile(hist, 0.99) == 2.0


# -- targets ------------------------------------------------------------------

def test_target_validation():
    with pytest.raises(ValueError):
        SloTarget("bad", objective=1.0)
    with pytest.raises(ValueError):
        SloTarget("bad", latency_threshold_s=0.0)
    with pytest.raises(ValueError):
        SloTarget("bad", windows=((60.0, 5.0, 14.4),))  # short > long
    target = SloTarget("ok", objective=0.99)
    assert target.error_budget == pytest.approx(0.01)
    assert target.windows == DEFAULT_WINDOWS


# -- burn-rate monitor --------------------------------------------------------

def _monitor(objective=0.9, windows=((5.0, 60.0, 2.0),)):
    return BurnRateMonitor(
        SloTarget("t", objective=objective, windows=windows)
    )


def test_all_good_never_fires():
    monitor = _monitor()
    for second in range(100):
        monitor.record(float(second), good=10, bad=0)
    assert monitor.burn_rate(99.0, 5.0) == 0.0
    assert not monitor.firing(99.0)
    assert monitor.attainment() == 1.0


def test_sustained_errors_fire_both_windows():
    monitor = _monitor(objective=0.9)  # budget 0.1
    for second in range(100):
        monitor.record(float(second), good=5, bad=5)  # error rate 0.5
    # burn = 0.5 / 0.1 = 5x in every window >= factor 2.0
    assert monitor.burn_rate(99.0, 5.0) == pytest.approx(5.0)
    assert monitor.burn_rate(99.0, 60.0) == pytest.approx(5.0)
    alerts = monitor.alerts(99.0)
    assert len(alerts) == 1 and alerts[0].firing
    assert monitor.firing(99.0)


def test_short_spike_alone_does_not_fire():
    """The paired long window filters blips: a 3s error burst after a long
    clean stretch exceeds the short-window factor but not the long one."""
    monitor = _monitor(objective=0.9, windows=((5.0, 60.0, 2.0),))
    for second in range(60):
        monitor.record(float(second), good=10, bad=0)
    for second in range(60, 63):
        monitor.record(float(second), good=0, bad=10)
    assert monitor.burn_rate(62.0, 5.0) >= 2.0
    assert monitor.burn_rate(62.0, 60.0) < 2.0
    assert not monitor.firing(62.0)


def test_window_counts_only_cover_trailing_window():
    monitor = _monitor()
    monitor.record(0.0, good=0, bad=100)   # ancient errors
    monitor.record(50.0, good=10, bad=0)   # recent clean traffic
    # The 5s window at t=52 sees only the clean batch.
    assert monitor.burn_rate(52.0, 5.0) == 0.0
    # The 60s window still sees the errors.
    assert monitor.burn_rate(52.0, 60.0) > 0.0


def test_record_validates_and_skips_empty():
    monitor = _monitor()
    with pytest.raises(ValueError):
        monitor.record(1.0, good=-1, bad=0)
    monitor.record(1.0, good=0, bad=0)  # no-op, no sample stored
    assert monitor.total == 0
    assert math.isnan(monitor.attainment())


def test_record_latency_applies_threshold():
    monitor = BurnRateMonitor(
        SloTarget("t", objective=0.9, latency_threshold_s=0.2)
    )
    monitor.record_latency(1.0, 0.1)   # good
    monitor.record_latency(1.0, 0.3)   # bad
    assert monitor.total == 2
    assert monitor.good == 1


def test_samples_pruned_to_longest_window():
    monitor = _monitor(windows=((1.0, 10.0, 2.0),))
    for second in range(200):
        monitor.record(float(second), good=1, bad=0)
    # Only ~10s of history is retained; cumulative totals are unaffected.
    assert len(monitor._samples) <= 12
    assert monitor.total == 200


# -- the board ----------------------------------------------------------------

def test_board_drains_recorder_incrementally():
    board = SloBoard()
    recorder = LatencyRecorder()
    target = SloTarget("frontend", objective=0.9, latency_threshold_s=0.2)
    board.watch_recorder(target, recorder)
    recorder.record(1.0, 0.1)
    recorder.record(1.5, 0.5)
    board.tick(2.0)
    monitor = board.monitors["frontend"]
    assert (monitor.good, monitor.total) == (1, 2)
    # A second tick with no new samples must not double-count.
    board.tick(3.0)
    assert (monitor.good, monitor.total) == (1, 2)
    recorder.record(3.5, 0.15)
    board.tick(4.0)
    assert (monitor.good, monitor.total) == (2, 3)


def test_board_status_rows_and_p99():
    board = SloBoard()
    board.add_target(SloTarget("api", objective=0.99, latency_threshold_s=0.3))
    board.record("api", 1.0, good=99, bad=1)
    hist = HistogramMetric("latency/api", bounds=(0.1, 0.2, 0.4))
    for _ in range(100):
        hist.observe(0.15)
    rows = board.status(2.0, {"api": hist})
    assert len(rows) == 1
    row = rows[0].as_dict()
    assert row["name"] == "api"
    assert row["attainment"] == pytest.approx(0.99)
    assert 0.1 <= row["p99_s"] <= 0.2
    assert row["alerts"] and not row["firing"]


def test_board_status_handles_empty_monitor():
    board = SloBoard()
    board.add_target(SloTarget("idle"))
    row = board.status(1.0)[0].as_dict()
    assert row["attainment"] is None
    assert row["p99_s"] is None
    assert board.firing(1.0) == []


def test_targets_from_registry_one_per_function():
    registry = MetricsRegistry()
    registry.counter("traffic/fn-a/requests")
    registry.counter("traffic/fn-b/requests")
    registry.counter("traffic/total/requests")     # aggregate: excluded
    registry.counter("traffic/fn-a/cold_starts")   # wrong leaf: excluded
    registry.counter("ops/s-spright/copy")         # wrong prefix: excluded
    targets = targets_from_registry(
        registry, objective=0.95, threshold_s=0.5
    )
    assert [target.name for target in targets] == ["fn-a", "fn-b"]
    assert all(target.objective == 0.95 for target in targets)
    assert all(target.latency_threshold_s == 0.5 for target in targets)
