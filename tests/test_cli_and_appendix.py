"""CLI tests + the Appendix-A packet data flow walkthrough."""

import pytest

from repro.cli import COMMANDS, build_parser, main
from repro.dataplane import DSprightDataplane, Request, RequestClass, SSprightDataplane
from repro.runtime import FunctionSpec, WorkerNode


# -- CLI -----------------------------------------------------------------------

def test_parser_accepts_all_commands():
    parser = build_parser()
    for command in COMMANDS:
        args = parser.parse_args([command])
        assert args.command == command


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["figure99"])


def test_cli_tables_command_prints_audit(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Tables 1 & 2" in out
    assert "# of copies" in out


def test_cli_xdp_command(capsys):
    assert main(["xdp", "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "acceleration" in out


# -- Appendix A: packet data flow in S-SPRIGHT (Fig 13) ----------------------------

def three_fn_chain(plane_cls):
    node = WorkerNode()
    functions = [
        FunctionSpec(name="fn-1", service_time=5e-6),
        FunctionSpec(name="fn-2", service_time=5e-6),
        FunctionSpec(name="fn-3", service_time=5e-6),
    ]
    plane = plane_cls(node, functions)
    plane.deploy()
    return node, plane


def run_one(node, plane, sequence):
    request_class = RequestClass(name="appendix", sequence=list(sequence), payload_size=64)
    request = Request(request_class=request_class, payload=b"p" * 64, created_at=0.0)

    def driver(env):
        yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=5.0)
    return request


def test_appendix_a_sproxy_flow_three_functions():
    """Fig 13: gw -> fn1 -> fn2 -> fn3 -> gw, one descriptor per hop."""
    node, plane = three_fn_chain(SSprightDataplane)
    request = run_one(node, plane, ["fn-1", "fn-2", "fn-3"])
    assert request.response == b"p" * 64
    # 4 descriptor redirects: ②, ④, ⑥, ⑧ in the appendix's numbering.
    metrics = plane.runtime.transport.metrics_map
    assert metrics.lookup(0) == 4
    # Every redirect went through the in-kernel sockmap path.
    sockmap = plane.runtime.transport.sockmap
    assert len(sockmap) == 4  # gateway + 3 functions
    # The payload was written once by the gateway (①) and updated in place
    # by each function (③⑤⑦) — never copied between functions.
    assert plane.runtime.pool.stats.writes == 1 + 3
    assert plane.runtime.pool.stats.allocs == 1


def test_appendix_a_ring_flow_three_functions():
    """Fig 14: the same flow over rte_ring enqueue/dequeue (D-SPRIGHT)."""
    node, plane = three_fn_chain(DSprightDataplane)
    request = run_one(node, plane, ["fn-1", "fn-2", "fn-3"])
    assert request.response == b"p" * 64
    rings = plane.runtime.manager.memory.rings
    assert len(rings) == 4  # gateway + 3 functions
    # 4 hops = 4 enqueues and 4 dequeues across the rings, in MP/MC mode.
    assert sum(ring.enqueued for ring in rings.values()) == 4
    assert sum(ring.dequeued for ring in rings.values()) == 4
    assert all(not ring.single_producer for ring in rings.values())
    assert all(not ring.single_consumer for ring in rings.values())


def test_appendix_a_hop_count_scales_with_chain_length():
    """n functions -> n+1 descriptor transfers (linear, unlike Knative)."""
    for length, expected_hops in ((1, 2), (2, 3), (3, 4)):
        node, plane = three_fn_chain(SSprightDataplane)
        sequence = [f"fn-{index + 1}" for index in range(length)]
        run_one(node, plane, sequence)
        metrics = plane.runtime.transport.metrics_map
        assert metrics.lookup(0) == expected_hops, length
