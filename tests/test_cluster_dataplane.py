"""End-to-end cluster dataplane runs: hops, identity guards, and λ-NIC."""

from pathlib import Path

from repro import obs
from repro.experiments import audits, cluster_exp
from repro.experiments.cluster_exp import run_cluster_case


def _small(plane, policy, nodes, **kwargs):
    kwargs.setdefault("duration", 0.4)
    kwargs.setdefault("concurrency", 8)
    return run_cluster_case(plane, policy, nodes, **kwargs)


def test_every_plane_completes_with_engineered_hops_and_no_leaks():
    for plane in cluster_exp.ALL_PLANES:
        run = _small(plane, "chain_locality", 3)
        assert run.recorder.count("") > 0, plane
        assert run.hops_per_request == 3.0, plane
        assert run.leaked_slots == 0, plane


def test_policy_hop_counts_match_placement_geometry():
    hops = {
        policy: _small("s-spright", policy, 3).hops_per_request
        for policy in ("chain_locality", "bin_pack", "spread")
    }
    assert hops == {"chain_locality": 3.0, "bin_pack": 4.0, "spread": 6.0}


def test_chain_locality_beats_spread_on_p99_for_s_spright():
    locality = _small("s-spright", "chain_locality", 3, duration=0.6)
    spread = _small("s-spright", "spread", 3, duration=0.6)
    assert locality.p99_ms < spread.p99_ms
    assert locality.rps > spread.rps


def test_cross_node_counters_land_on_the_sending_node():
    run = _small("grpc", "spread", 3)
    fabric = run.dataplane.fabric
    per_node_hops = sum(
        node.counters.as_dict().get("cluster/xnode_hops", 0)
        for node in fabric.nodes.values()
    )
    assert per_node_hops == fabric.xnode_hops > 0
    link_bytes = {
        name: value
        for node in fabric.nodes.values()
        for name, value in node.counters.as_dict().items()
        if name.startswith("cluster/") and name.endswith("/bytes")
    }
    assert link_bytes  # per-link byte counters exist
    assert sum(link_bytes.values()) == fabric.bytes_moved


# --- satellite (a): single-node byte-identity guard -------------------------


def test_single_node_cluster_keeps_goldens_byte_identical():
    """A 1-node chain_locality cluster is the degenerate case: zero
    cross-node hops, and — because node 0 keeps the exact root seed and the
    cluster stack shares no state with the single-node pipeline — running
    it must leave the audited tables byte-identical to the golden."""
    run = _small("s-spright", "chain_locality", 1)
    assert run.hops_per_request == 0.0
    assert run.dataplane.fabric.xnode_hops == 0
    assert run.leaked_slots == 0
    golden = Path(__file__).parent / "goldens" / "tables.txt"
    assert audits.format_report() + "\n" == golden.read_text()


# --- satellite (c): tracing is an observer, not a participant ---------------


def test_traced_multinode_run_is_byte_identical_to_untraced():
    kwargs = dict(duration=0.4, concurrency=8)
    untraced = run_cluster_case("s-spright", "bin_pack", 3, **kwargs)
    obs.set_default_observe(trace=True)
    try:
        traced = run_cluster_case("s-spright", "bin_pack", 3, **kwargs)
    finally:
        obs.set_default_observe(trace=False)
        obs.reset_sessions()

    assert traced.recorder.count("") == untraced.recorder.count("")
    assert traced.recorder.summary("").p99 == untraced.recorder.summary("").p99
    for name, node in untraced.dataplane.fabric.nodes.items():
        twin = traced.dataplane.fabric.nodes[name]
        assert twin.counters.as_dict() == node.counters.as_dict(), name

    tracer = traced.dataplane.ingress_node.obs.tracer
    assert tracer is not None
    legs = [s for s in tracer.spans if s.name == "leg:xnode"]
    assert legs, "cross-node legs should open spans when traced"
    assert all(s.end is not None for s in legs)
    assert {s.attrs["protocol"] for s in legs} == {"grpc"}


# --- λ-NIC offload plane ----------------------------------------------------


def test_lambda_nic_entry_path_skips_the_host():
    host = _small(
        "s-spright",
        "chain_locality",
        1,
        chain_factory=cluster_exp.short_chain,
        duration=0.5,
    )
    nic = _small(
        "lambda-nic",
        "chain_locality",
        1,
        chain_factory=cluster_exp.short_chain,
        duration=0.5,
    )
    assert nic.dataplane.offloaded > 0
    assert nic.nic_cores > 0.0
    assert nic.host_cpu_percent < max(10.0, 0.1 * host.host_cpu_percent)
    assert nic.p99_ms < host.p99_ms


def test_lambda_nic_heavy_function_falls_back_to_host_pods():
    run = _small("lambda-nic", "chain_locality", 3)
    # The 200 µs f4 is over the NIC ceiling: every request touches a host
    # pod for it, while the short functions ride the NIC.
    assert run.dataplane.offloaded > 0
    assert run.dataplane.host_serves >= run.recorder.count("")
    assert run.leaked_slots == 0
