"""Cluster placement policies: shapes, diagnostics, and determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    POLICIES,
    ClusterScheduler,
    function_core_request,
    function_memory_request,
)
from repro.experiments import cluster_exp
from repro.runtime import ChainSpec, FunctionSpec
from repro.runtime.scheduler import (
    NodeDescriptor,
    PlacementEngine,
    PlacementError,
)


def _nodes(count, cores=2.0, memory_mb=1024.0):
    return [
        NodeDescriptor(name=f"worker-{i + 1}", cores=cores, memory_mb=memory_mb)
        for i in range(count)
    ]


def _place(chain, policy, count=3, cores=2.0):
    return ClusterScheduler(_nodes(count, cores=cores)).place(chain, policy)


# --- core/memory requests ----------------------------------------------------


def test_core_requests_are_asymmetric_and_capped():
    light = FunctionSpec("light", 30e-6)
    heavy = FunctionSpec("heavy", 200e-6)
    huge = FunctionSpec("huge", 5e-3)
    assert function_core_request(light) == 0.5
    assert function_core_request(heavy) == 1.5
    assert function_core_request(huge) == 2.0  # capped
    assert function_memory_request(light) > light.memory_mb


# --- the engineered experiment chain ----------------------------------------


def test_mixed_chain_policies_produce_3_4_6_transitions():
    """The experiment's acceptance geometry: locality < bin_pack < spread."""
    chain = cluster_exp.mixed_chain()
    sequence = chain.function_names
    hops = {
        policy: _place(chain, policy).transitions(sequence)
        for policy in POLICIES
    }
    assert hops == {"chain_locality": 3, "bin_pack": 4, "spread": 6}


def test_chain_locality_yields_contiguous_segments():
    chain = cluster_exp.mixed_chain()
    placement = _place(chain, "chain_locality")
    # Walking the chain, each node appears as one contiguous segment.
    walked = [placement.node_of(name) for name in chain.function_names]
    seen = []
    for node in walked:
        if not seen or seen[-1] != node:
            assert node not in seen, f"{node} re-entered: {walked}"
            seen.append(node)


def test_single_node_placement_has_zero_transitions():
    chain = cluster_exp.mixed_chain()
    for policy in POLICIES:
        placement = _place(chain, policy, count=1, cores=8.0)
        assert placement.nodes_used() == ["worker-1"]
        assert placement.transitions(chain.function_names) == 0


def test_response_leg_counts_when_chain_ends_off_ingress():
    chain = ChainSpec(
        "tail", [FunctionSpec("a", 30e-6), FunctionSpec("b", 30e-6)]
    )
    placement = _place(chain, "spread", count=2, cores=0.5)
    assert len(placement.nodes_used()) == 2
    # a->b boundary plus the response leg back to a's node.
    assert placement.transitions(chain.function_names) == 2


def test_unknown_policy_rejected():
    with pytest.raises(PlacementError):
        _place(cluster_exp.mixed_chain(), "random")


# --- failure diagnostics (satellite: PlacementError payload) ----------------


def test_cluster_placement_error_carries_shortfalls():
    chain = ChainSpec("big", [FunctionSpec("whale", 1e-3)])  # wants 2.0 cores
    with pytest.raises(PlacementError) as excinfo:
        _place(chain, "bin_pack", count=2, cores=1.0)
    diag = excinfo.value.diagnostics
    assert diag["subject"] == "big/whale"
    assert diag["cores_requested"] == 2.0
    assert [c["node"] for c in diag["candidates"]] == ["worker-1", "worker-2"]
    for candidate in diag["candidates"]:
        assert candidate["core_shortfall"] == 1.0
        assert candidate["memory_shortfall_mb"] == 0.0


def test_placement_engine_error_carries_shortfalls():
    engine = PlacementEngine()
    engine.add_node(NodeDescriptor(name="tiny", cores=1, memory_mb=1.0))
    chain = ChainSpec("c", [FunctionSpec("f", 100e-6)])
    with pytest.raises(PlacementError) as excinfo:
        engine.place_chain(chain)
    diag = excinfo.value.diagnostics
    assert diag["subject"] == "c"
    assert diag["candidates"][0]["node"] == "tiny"
    assert diag["candidates"][0]["memory_shortfall_mb"] > 0.0


def test_fragmentation_survives_zero_capacity_nodes():
    engine = PlacementEngine()
    drained = NodeDescriptor(name="drained", cores=0, memory_mb=0.0)
    drained.chains.append("ghost")
    engine.add_node(drained)
    assert engine.fragmentation() == 0.0
    assert PlacementEngine().fragmentation() == 0.0


# --- determinism (satellite: policies are functions of the topology) --------

_SERVICE_TIMES = (4e-6, 20e-6, 35e-6, 80e-6, 200e-6, 400e-6)


@st.composite
def _topology_and_chain(draw):
    node_count = draw(st.integers(min_value=1, max_value=5))
    cores = draw(st.sampled_from((2.0, 3.0, 4.0, 8.0)))
    length = draw(st.integers(min_value=1, max_value=8))
    times = draw(
        st.lists(
            st.sampled_from(_SERVICE_TIMES),
            min_size=length,
            max_size=length,
        )
    )
    chain = ChainSpec(
        "prop",
        [FunctionSpec(f"fn{i}", t) for i, t in enumerate(times)],
    )
    return node_count, cores, chain


@settings(max_examples=60, deadline=None, derandomize=True)
@given(case=_topology_and_chain(), policy=st.sampled_from(POLICIES))
def test_policies_are_deterministic_functions_of_topology(case, policy):
    node_count, cores, chain = case
    try:
        first = _place(chain, policy, count=node_count, cores=cores)
    except PlacementError:
        # Doesn't fit (or fragments); the failure itself must be stable.
        with pytest.raises(PlacementError):
            _place(chain, policy, count=node_count, cores=cores)
        return
    second = _place(chain, policy, count=node_count, cores=cores)
    assert first.assignments == second.assignments
    assert first.digest() == second.digest()
    # Commitments respected: no node over its capacity.
    committed = {}
    for name, node in first.assignments.items():
        committed[node] = committed.get(node, 0.0) + function_core_request(
            chain.function(name)
        )
    assert all(total <= cores + 1e-9 for total in committed.values())


@settings(max_examples=30, deadline=None, derandomize=True)
@given(case=_topology_and_chain())
def test_chain_locality_minimizes_walk_boundaries(case):
    """Locality's same-node segment count is minimal among the policies.

    Compared on walk boundaries (node changes along the call sequence),
    which is what the greedy stay-while-fits walk provably minimizes; the
    response leg back to the ingress is a separate term.
    """
    node_count, cores, chain = case

    def boundaries(policy):
        try:
            placement = _place(chain, policy, count=node_count, cores=cores)
        except PlacementError:
            return None
        walked = [placement.node_of(name) for name in chain.function_names]
        return sum(1 for a, b in zip(walked, walked[1:]) if a != b)

    locality = boundaries("chain_locality")
    if locality is None:
        return
    for rival in ("bin_pack", "spread"):
        rival_boundaries = boundaries(rival)
        if rival_boundaries is not None:
            assert locality <= rival_boundaries
