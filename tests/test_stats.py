"""Tests for the measurement layer: percentiles, CDFs, series, counters."""

import pytest

from repro.stats import (
    Counter,
    LatencyRecorder,
    SlidingWindowRate,
    confidence_interval_99,
    format_table,
    ms,
    pct,
    percentile,
    summarize,
)


def test_percentile_basic():
    samples = sorted([1.0, 2.0, 3.0, 4.0, 5.0])
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 1.0) == 5.0
    assert percentile(samples, 0.5) == 3.0


def test_percentile_interpolates():
    samples = [1.0, 2.0]
    assert percentile(samples, 0.5) == pytest.approx(1.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_summarize_fields():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.p99 >= summary.p95 >= summary.p50
    assert summary.as_dict()["count"] == 4


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_confidence_interval_contains_mean():
    samples = [10.0 + (i % 5) for i in range(100)]
    low, high = confidence_interval_99(samples)
    mean = sum(samples) / len(samples)
    assert low < mean < high


def test_recorder_groups_and_overall():
    recorder = LatencyRecorder()
    recorder.record(1.0, 0.010, group="a")
    recorder.record(2.0, 0.020, group="b")
    recorder.record(3.0, 0.030, group="a")
    assert recorder.count("a") == 2
    assert recorder.count("b") == 1
    assert sorted(recorder.groups()) == ["a", "b"]
    assert len(recorder.all_latencies()) == 3
    assert recorder.overall_summary().count == 3


def test_recorder_negative_latency_rejected():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(1.0, -0.1)


def test_recorder_cdf_monotone():
    recorder = LatencyRecorder()
    for value in (5, 1, 3, 2, 4):
        recorder.record(0.0, value / 1000)
    cdf = recorder.cdf()
    latencies = [point[0] for point in cdf]
    fractions = [point[1] for point in cdf]
    assert latencies == sorted(latencies)
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_recorder_throughput_series():
    recorder = LatencyRecorder()
    for t in (0.1, 0.2, 1.5, 2.9):
        recorder.record(t, 0.001)
    series = recorder.throughput_series(bucket=1.0, until=3.0)
    rates = dict(series)
    assert rates[0.0] == pytest.approx(2.0)
    assert rates[1.0] == pytest.approx(1.0)
    assert rates[2.0] == pytest.approx(1.0)


def test_recorder_latency_series_means():
    recorder = LatencyRecorder()
    recorder.record(0.5, 0.010)
    recorder.record(0.6, 0.030)
    recorder.record(1.5, 0.050)
    series = dict(recorder.latency_series(bucket=1.0))
    assert series[0.0] == pytest.approx(0.020)
    assert series[1.0] == pytest.approx(0.050)


def test_counter():
    counter = Counter()
    counter.incr("drops")
    counter.incr("drops", 4)
    assert counter.get("drops") == 5
    assert counter.get("unknown") == 0
    assert counter.as_dict() == {"drops": 5}


def test_sliding_window_rate():
    window = SlidingWindowRate(window=10.0)
    for t in range(5):
        window.observe(float(t))
    assert window.rate(5.0) == pytest.approx(0.5)
    # Old events age out.
    assert window.rate(100.0) == 0.0


def test_sliding_window_validation():
    with pytest.raises(ValueError):
        SlidingWindowRate(window=0)


def test_sliding_window_boundary_event_included():
    """An event at exactly now - window is inside the closed-left window."""
    window = SlidingWindowRate(window=10.0)
    window.observe(0.0)
    assert window.rate(10.0) == pytest.approx(0.1)
    # One tick past the boundary it ages out.
    window.observe(0.0)  # re-add: the prior rate() call kept it, but be explicit
    assert window.rate(10.0 + 1e-9) == 0.0


def test_sliding_window_rate_idempotent_at_same_now():
    """Back-to-back rate() calls at the same now agree, even when events sit
    exactly on the window boundary (eviction must not drop countable events)."""
    window = SlidingWindowRate(window=5.0)
    for t in (0.0, 2.0, 4.0):
        window.observe(t)
    first = window.rate(5.0)  # 0.0 is exactly on the boundary
    second = window.rate(5.0)
    assert first == second == pytest.approx(3 / 5.0)


def test_sliding_window_eviction_keeps_boundary_event():
    window = SlidingWindowRate(window=10.0)
    window.observe(0.0)
    window.observe(3.0)
    window.rate(10.0)  # prunes: must keep both (0.0 is on the boundary)
    assert window.rate(10.0) == pytest.approx(0.2)


def test_recorder_cdf_no_duplicate_final_point():
    """When the sampling stride lands exactly on the last sample, the (max,
    1.0) coverage point must not be emitted twice."""
    recorder = LatencyRecorder()
    for value in range(400):  # len is a multiple of the stride (400 // 200 = 2)
        recorder.record(0.0, value / 1000)
    cdf = recorder.cdf(points=200)
    assert cdf[-1] == (0.399, 1.0)
    assert cdf[-1] != cdf[-2]
    assert len(cdf) == len(set(cdf))


def test_recorder_cdf_small_sample_reaches_full_coverage():
    recorder = LatencyRecorder()
    for value in (1, 2, 3):
        recorder.record(0.0, value / 1000)
    cdf = recorder.cdf(points=2)
    assert cdf[-1][1] == 1.0


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["long-name", 22222.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0]
    assert "22,222" in lines[3]


def test_unit_helpers():
    assert ms(0.5) == 500.0
    assert pct(0.25) == 25.0
