"""Tests for the fault-injection + resilience subsystem (repro.faults)."""

import json

import pytest

from repro.dataplane.base import Request, RequestClass
from repro.faults import (
    CircuitBreaker,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    NAMED_PLANS,
    ResiliencePolicy,
    load_plan,
)
from repro.kernel.ebpf import HashMap
from repro.mem import RteRing
from repro.runtime import FunctionSpec, Kubelet, WorkerNode
from repro.simcore import DeliveryError


def make_request(timeline: bool = True) -> Request:
    request = Request(
        request_class=RequestClass(name="t", sequence=["f"], payload_size=8),
        payload=b"x" * 8,
        created_at=0.0,
    )
    return request.enable_timeline() if timeline else request


# -- plan validation ---------------------------------------------------------------

def test_fault_spec_validation():
    with pytest.raises(FaultPlanError):
        FaultSpec(kind=FaultKind.PACKET_DROP, probability=1.5)
    with pytest.raises(FaultPlanError):
        FaultSpec(kind=FaultKind.POD_CRASH, at=-1.0)
    with pytest.raises(FaultPlanError):
        FaultSpec(kind=FaultKind.POD_SLOW, magnitude=0.5)
    spec = FaultSpec(kind="packet_drop", probability=0.1, at=1.0, duration=2.0)
    assert spec.kind is FaultKind.PACKET_DROP
    assert not spec.window_contains(0.5)
    assert spec.window_contains(1.0)
    assert spec.window_contains(2.9)
    assert not spec.window_contains(3.0)


def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        name="p",
        faults=[FaultSpec(kind=FaultKind.POD_CRASH, at=2.0, duration=1.0)],
    )
    again = FaultPlan.from_dict(plan.as_dict())
    assert again.name == "p"
    assert again.faults[0].kind is FaultKind.POD_CRASH
    assert again.faults[0].at == 2.0


def test_plan_rejects_unknown_fields():
    with pytest.raises(FaultPlanError, match="unknown"):
        FaultPlan.from_dict({"faults": [{"kind": "packet_drop", "chaos": 9}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"nope": []})


def test_load_plan_names_and_json(tmp_path):
    assert not load_plan("none")
    assert not load_plan("")
    for name in NAMED_PLANS:
        plan = load_plan(name)
        assert plan.faults, name
    path = tmp_path / "plan.json"
    path.write_text(
        json.dumps({"name": "file", "faults": [{"kind": "ring_stall", "magnitude": 0.001}]})
    )
    plan = load_plan(str(path))
    assert plan.name == "file"
    assert plan.faults[0].kind is FaultKind.RING_STALL


# -- injector: inert == free -------------------------------------------------------

def test_inert_injector_makes_no_rng_draws():
    node = WorkerNode()
    assert not node.faults.active
    assert node.faults.drop_packet("rx", "eth0") is False
    assert node.faults.ring_overflow("rx-ring") is False
    assert node.faults.ring_stall("rx-ring") == 0.0
    node.faults.arm(None)
    node.faults.arm(FaultPlan.empty())
    assert not node.faults.active
    # The zero-cost contract: no fault stream was ever created or drawn.
    assert "faults/stochastic" not in node.rng._streams
    assert not any(
        name.startswith("faults/") for name in node.counters.as_dict()
    )


def test_stochastic_drop_and_target_matching():
    node = WorkerNode()
    node.faults.arm(
        FaultPlan(
            name="t",
            faults=[
                FaultSpec(kind=FaultKind.PACKET_DROP, probability=1.0, target="veth-*")
            ],
        )
    )
    assert node.faults.drop_packet("rx", "veth-gw") is True
    assert node.faults.drop_packet("rx", "eth0") is False
    assert node.counters.get("faults/injected/packet_drop") == 1
    assert node.counters.get("faults/injected/packet_drop/rx") == 1


def test_scheduled_pod_crash_and_recovery():
    node = WorkerNode()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=1), "t/fn/f")
    deployment.scale_to(1)
    node.run(until=0.01)
    node.faults.register_deployment("f", deployment)
    node.faults.arm(
        FaultPlan(
            name="crash",
            faults=[FaultSpec(kind=FaultKind.POD_CRASH, at=0.1, duration=0.2, target="f")],
        )
    )
    node.run(until=0.2)
    assert not deployment.servable_pods()
    assert node.counters.get("faults/injected/pod_crash") == 1
    node.run(until=0.5)
    assert deployment.servable_pods()
    assert node.counters.get("faults/injected/pod_recover") == 1


def test_pod_slow_multiplies_service_time():
    node = WorkerNode()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    deployment = kubelet.deployment(FunctionSpec(name="f", min_scale=1), "t/fn/f")
    deployment.scale_to(1)
    node.run(until=0.01)
    node.faults.register_deployment("f", deployment)
    node.faults.arm(
        FaultPlan(
            name="slow",
            faults=[FaultSpec(kind=FaultKind.POD_SLOW, at=0.1, duration=0.2, magnitude=10.0)],
        )
    )
    pod = deployment.servable_pods()[0]
    node.run(until=0.15)
    assert pod.slowdown == 10.0
    node.run(until=0.5)
    assert pod.slowdown == 1.0


def test_ring_overflow_hook_and_stall():
    ring = RteRing("rx", size=8)
    ring.fault_hook = lambda name: name == "rx"
    assert ring.enqueue("d") is False
    assert ring.forced_drops == 1 and ring.drops == 1
    ring.fault_hook = None
    assert ring.enqueue("d") is True

    node = WorkerNode()
    node.faults.arm(
        FaultPlan(
            name="stall",
            faults=[FaultSpec(kind=FaultKind.RING_STALL, at=0.0, magnitude=0.002)],
        )
    )
    assert node.faults.ring_stall("any-ring") == pytest.approx(0.002)


def test_map_evict_spares_gateway_key():
    node = WorkerNode()
    table = HashMap(max_entries=16, name="sockmap")
    node.map_registry.create(table)
    for key in range(4):
        table.update(key, f"sock-{key}")
    node.faults.arm(
        FaultPlan(
            name="evict",
            faults=[FaultSpec(kind=FaultKind.MAP_EVICT, at=0.0, magnitude=2, target="sockmap")],
        )
    )
    node.run(until=0.01)
    assert node.counters.get("faults/injected/map_evict") == 2
    assert table.lookup(0) == "sock-0"  # the pinned gateway slot survives
    assert len(table) == 2


# -- resilience policy + controller ------------------------------------------------

def test_policy_inert_by_default():
    policy = ResiliencePolicy()
    assert not policy.enabled()
    assert ResiliencePolicy(retries=1).enabled()
    assert ResiliencePolicy(timeout=0.5).enabled()
    with pytest.raises(ValueError):
        ResiliencePolicy(retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(timeout=0.0)


def test_circuit_breaker_trips_and_half_opens():
    node = WorkerNode()
    breaker = CircuitBreaker(node.env, threshold=2, reset_after=1.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.allow()
    breaker.record_failure()  # trips
    assert breaker.trips == 1
    assert not breaker.allow()
    node.env._now = 2.0  # past the cooldown
    assert breaker.allow()  # the single half-open probe
    assert not breaker.allow()  # second caller fenced out
    breaker.record_success()
    assert breaker.allow()


def test_half_open_admits_exactly_one_probe_under_concurrency():
    """Regression: concurrent arrivals at the instant the cooldown expires
    must admit exactly one probe, not one each."""
    node = WorkerNode()
    breaker = CircuitBreaker(node.env, threshold=1, reset_after=1.0)
    breaker.on_failure(breaker.acquire())  # trips
    assert breaker.state() == "open"
    node.env._now = 1.0  # exactly at reset_after expiry
    assert breaker.state() == "half_open"
    permits = [breaker.acquire() for _ in range(5)]
    admitted = [permit for permit in permits if permit is not None]
    assert len(admitted) == 1 and admitted[0].probe
    assert breaker.probes_admitted == 1
    # the probe closing the breaker re-opens admission for everyone
    breaker.on_success(admitted[0])
    assert breaker.state() == "closed"
    assert breaker.acquire() is not None


def test_stale_results_cannot_corrupt_half_open_state():
    """Regression: results from attempts admitted before the trip carry an
    older generation — a stale failure used to clear the probe-in-flight
    flag (admitting a second probe) and a stale success used to close the
    breaker without any probe succeeding."""
    node = WorkerNode()
    breaker = CircuitBreaker(node.env, threshold=2, reset_after=1.0)
    stale = breaker.acquire()  # in flight before the trip (generation 0)
    breaker.on_failure(breaker.acquire())
    breaker.on_failure(breaker.acquire())  # trips -> generation 1
    assert breaker.trips == 1 and breaker.generation == 1
    node.env._now = 2.0
    probe = breaker.acquire()
    assert probe is not None and probe.probe
    # stale failure: probe slot stays occupied, no second probe
    breaker.on_failure(stale)
    assert breaker.acquire() is None
    assert breaker.probes_admitted == 1
    # stale success: the breaker must NOT close on it
    breaker.on_success(stale)
    assert breaker.state() == "half_open"
    assert breaker.acquire() is None
    # only the probe's own report resolves the half-open state
    breaker.on_success(probe)
    assert breaker.state() == "closed"


def test_failed_probe_reopens_for_a_fresh_cooldown():
    node = WorkerNode()
    breaker = CircuitBreaker(node.env, threshold=1, reset_after=1.0)
    breaker.on_failure(breaker.acquire())  # trips at t=0
    node.env._now = 1.5
    probe = breaker.acquire()
    assert probe is not None and probe.probe
    breaker.on_failure(probe)
    # re-opened with a fresh window anchored at the probe's failure
    assert breaker.state() == "open"
    node.env._now = 2.4  # 1.0 s from the ORIGINAL trip would be long past
    assert breaker.acquire() is None
    node.env._now = 2.5
    next_probe = breaker.acquire()
    assert next_probe is not None and next_probe.probe


class FlakyPlane:
    """Stub dataplane: fails the first N deliveries, then succeeds."""

    def __init__(self, node, fail_times=0, kind="drop", delay=0.001):
        self.node = node
        self.resilience = None
        self.calls = 0
        self.fail_times = fail_times
        self.kind = kind
        self.delay = delay

    def deliver_once(self, request):
        self.calls += 1
        call = self.calls
        yield self.node.env.timeout(self.delay)
        if call <= self.fail_times:
            raise DeliveryError(self.kind, "injected failure")
        request.response = b"ok"
        request.completed_at = self.node.env.now


def run_execute(node, plane, policy, request):
    from repro.faults import ResilienceController

    controller = ResilienceController(plane, policy)
    node.env.process(controller.execute(request))
    node.run(until=10.0)
    return controller


def test_retries_recover_from_transient_faults():
    node = WorkerNode()
    plane = FlakyPlane(node, fail_times=2)
    request = make_request()
    run_execute(node, plane, ResiliencePolicy(retries=3), request)
    assert not request.failed
    assert request.response == b"ok"
    assert plane.calls == 3
    assert node.counters.get("faults/resilience/retry") == 2
    milestones = [name for name, _ in request.timeline]
    assert "retry:1" in milestones and "retry:2" in milestones


def test_retry_budget_exhaustion_fails_request():
    node = WorkerNode()
    plane = FlakyPlane(node, fail_times=99)
    request = make_request()
    run_execute(node, plane, ResiliencePolicy(retries=2), request)
    assert request.failed
    assert request.error is not None and request.error.kind == "drop"
    assert plane.calls == 3
    assert node.counters.get("faults/resilience/exhausted") == 1


def test_timeout_cancels_slow_attempt():
    node = WorkerNode()
    plane = FlakyPlane(node, delay=5.0)
    request = make_request()
    run_execute(node, plane, ResiliencePolicy(timeout=0.01), request)
    assert request.failed
    assert request.error.kind == "timeout"
    assert node.counters.get("faults/resilience/timeout") == 1


def test_hedge_wins_when_primary_is_slow():
    node = WorkerNode()

    class SlowThenFast(FlakyPlane):
        def deliver_once(self, request):
            self.calls += 1
            delay = 1.0 if self.calls == 1 else 0.001
            yield self.node.env.timeout(delay)
            request.response = b"ok"
            request.completed_at = self.node.env.now

    plane = SlowThenFast(node)
    request = make_request()
    run_execute(node, plane, ResiliencePolicy(hedge_delay=0.01), request)
    assert not request.failed
    assert request.response == b"ok"
    assert request.completed_at < 0.5  # the hedge, not the 1 s primary
    assert node.counters.get("faults/resilience/hedge") == 1
    assert node.counters.get("faults/resilience/hedge_win") == 1
    milestones = [name for name, _ in request.timeline]
    assert "hedge:launch" in milestones and "hedge:win" in milestones


def test_breaker_fails_fast_after_consecutive_failures():
    node = WorkerNode()
    plane = FlakyPlane(node, fail_times=99)
    policy = ResiliencePolicy(retries=0, breaker_threshold=2, breaker_reset=60.0)
    from repro.faults import ResilienceController

    controller = ResilienceController(plane, policy)
    requests = [make_request() for _ in range(3)]

    def driver(env):
        for request in requests:
            yield env.process(controller.execute(request))

    node.env.process(driver(node.env))
    node.run(until=10.0)
    assert controller.breaker_trips() == 1
    assert plane.calls == 2  # the third request never reached the plane
    assert requests[2].error.kind == "breaker_open"
    assert node.counters.get("faults/resilience/breaker_fastfail") == 1


# -- end-to-end: empty plan is bit-identical ---------------------------------------

def boutique_latencies(fault_plan=None, resilience=None):
    from repro.experiments.common import run_closed_loop
    from repro.workloads import boutique

    result = run_closed_loop(
        "grpc",
        boutique.go_grpc_functions(),
        boutique.request_classes(),
        concurrency=16,
        duration=3.0,
        scale=0.05,
        fault_plan=fault_plan,
        resilience=resilience,
    )
    return result.recorder.latencies("")


def test_empty_plan_and_inert_policy_bit_identical():
    baseline = boutique_latencies()
    armed = boutique_latencies(
        fault_plan=FaultPlan.empty(), resilience=ResiliencePolicy()
    )
    assert baseline == armed


def test_armed_plan_actually_perturbs_the_run():
    baseline = boutique_latencies()
    lossy = boutique_latencies(
        fault_plan=FaultPlan(
            name="lossy",
            faults=[FaultSpec(kind=FaultKind.PACKET_DROP, probability=0.05)],
        ),
        resilience=ResiliencePolicy(timeout=0.5, retries=2),
    )
    assert baseline != lossy
