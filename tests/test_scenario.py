"""Scenario engine: parser subset, resolution, overrides, byte-identity."""

import contextlib
import io
import json
import sys

import pytest

from repro import cli
from repro.scenario import (
    LEGACY_SEED,
    ResolvedScenario,
    ScenarioError,
    ScenarioOverrideError,
    ScenarioParseError,
    apply_overrides,
    check_scenario,
    derive_seed,
    execute,
    find_scenario,
    iter_library,
    load_scenario,
    parse_scenario_text,
    parse_yaml,
    resolve,
    run_scenario,
)


# -- YAML-subset parser --------------------------------------------------------
def test_yaml_scalars_and_nesting():
    doc = parse_yaml(
        "\n".join(
            [
                "name: demo",
                "count: 3",
                "rate: 0.5",
                "big: 1e3",
                "on: true",
                "off: false",
                "nothing: null",
                "tilde: ~",
                "quoted: 'hello world'",
                "double: \"a # not a comment\"",
                "nested:",
                "  inner:",
                "    deep: yes-a-bare-string",
            ]
        )
    )
    assert doc["name"] == "demo"
    assert doc["count"] == 3 and isinstance(doc["count"], int)
    assert doc["rate"] == 0.5
    assert doc["big"] == 1000.0
    assert doc["on"] is True and doc["off"] is False
    assert doc["nothing"] is None and doc["tilde"] is None
    assert doc["quoted"] == "hello world"
    assert doc["double"] == "a # not a comment"
    assert doc["nested"]["inner"]["deep"] == "yes-a-bare-string"


def test_yaml_lists_and_flow_collections():
    doc = parse_yaml(
        "\n".join(
            [
                "planes: [knative, s-spright]",
                "mixed: {a: 1, b: [2, 3]}",
                "block:",
                "  - first",
                "  - 2",
                "faults:",
                "  - kind: pod_crash",
                "    at: 5.0",
                "  - kind: packet_drop",
            ]
        )
    )
    assert doc["planes"] == ["knative", "s-spright"]
    assert doc["mixed"] == {"a": 1, "b": [2, 3]}
    assert doc["block"] == ["first", 2]
    assert doc["faults"] == [
        {"kind": "pod_crash", "at": 5.0},
        {"kind": "packet_drop"},
    ]


def test_yaml_comments_and_blank_lines():
    doc = parse_yaml("# header\n\nkey: value  # trailing\nother: 1\n")
    assert doc == {"key": "value", "other": 1}


@pytest.mark.parametrize(
    "text,needle",
    [
        ("key: value\nkey: again\n", "duplicate key"),
        ("\tkey: value\n", "tabs"),
        ("---\nkey: value\n", "multi-document"),
        ("key: [1, 2\n", "']'"),
        ("key: {a: 1,, }\n", "flow"),
        ("- just\n- a\n- list\n", "mapping"),
        ("", "empty"),
    ],
)
def test_yaml_rejections(text, needle):
    with pytest.raises(ScenarioParseError) as excinfo:
        parse_yaml(text)
    assert needle in str(excinfo.value)


def test_parse_dispatch_by_extension_and_sniff():
    assert parse_scenario_text('{"a": 1}', source="x.json") == {"a": 1}
    assert parse_scenario_text("a: 1", source="x.yaml") == {"a": 1}
    # unknown extension sniffs the first character
    assert parse_scenario_text('{"a": 1}', source="stdin") == {"a": 1}
    assert parse_scenario_text("a: 1", source="stdin") == {"a": 1}
    with pytest.raises(ScenarioParseError) as excinfo:
        parse_scenario_text("{bad json", source="x.json")
    assert "x.json" in str(excinfo.value)


# -- seeds ---------------------------------------------------------------------
def test_seed_defaults_to_legacy_and_auto_derives_from_name():
    base = {"name": "n", "experiment": "boutique"}
    assert resolve(dict(base)).seed == LEGACY_SEED
    auto = resolve(dict(base, seed="auto"))
    assert auto.seed == derive_seed("n")
    assert derive_seed("n") == derive_seed("n")
    assert derive_seed("n") != derive_seed("m")
    assert 0 <= derive_seed("n") < 2**31


def test_fixed_seed_experiments_reject_custom_seeds():
    ok = resolve({"name": "t", "experiment": "tables", "seed": LEGACY_SEED})
    assert "seed" not in ok.config
    with pytest.raises(ScenarioError) as excinfo:
        resolve({"name": "t", "experiment": "tables", "seed": 7})
    assert getattr(excinfo.value, "path", "") == "/seed"


def test_seedable_experiment_receives_seed_in_config():
    resolved = resolve({"name": "b", "experiment": "boutique", "seed": 5})
    assert resolved.config["seed"] == 5


# -- overrides -----------------------------------------------------------------
def test_overrides_win_over_file_values():
    doc = {
        "name": "b",
        "experiment": "boutique",
        "workload": {"scale": 0.05, "duration": 8},
    }
    merged = apply_overrides(doc, ["workload.duration=2", "seed=auto"])
    assert merged["workload"]["duration"] == 2
    assert merged["workload"]["scale"] == 0.05  # untouched sibling
    assert merged["seed"] == "auto"
    assert doc["workload"]["duration"] == 8  # original untouched


def test_override_parses_flow_values():
    doc = {"name": "f", "experiment": "faults"}
    merged = apply_overrides(doc, ["planes=[s-spright, knative]"])
    assert merged["planes"] == ["s-spright", "knative"]


def test_override_creates_missing_sections():
    merged = apply_overrides(
        {"name": "c", "experiment": "cluster"}, ["cluster.nodes=5"]
    )
    assert merged["cluster"] == {"nodes": 5}


def test_resolved_override_round_trip():
    resolved = load_scenario(
        "scenarios/boutique-baseline.json", overrides=["workload.duration=2"]
    )
    assert isinstance(resolved, ResolvedScenario)
    assert resolved.config["duration"] == 2


# -- execution + byte-identity -------------------------------------------------
def _capture_main(argv):
    out, err = io.StringIO(), io.StringIO()
    saved = sys.stderr
    sys.stderr = err
    try:
        with contextlib.redirect_stdout(out):
            code = cli.main(argv)
    finally:
        sys.stderr = saved
    return code, out.getvalue(), err.getvalue()


def test_scenario_stdout_byte_identical_to_flags(tmp_path):
    scenario = tmp_path / "fig2-ident.json"
    scenario.write_text(
        json.dumps(
            {
                "schema": "spright.scenario/1",
                "name": "fig2-ident",
                "experiment": "fig2",
                "workload": {"duration": 0.5},
            }
        )
    )
    code, run_out, run_err = _capture_main(["run", str(scenario)])
    assert code == 0
    flag_code, flag_out, _ = _capture_main(["fig2", "--duration", "0.5"])
    assert flag_code == 0
    assert run_out == flag_out
    # scenario metadata goes to stderr only
    assert "scenario fig2-ident" in run_err
    assert "fig2-ident" not in run_out


def test_execute_restores_process_wide_toggles(tmp_path):
    from repro import obs
    from repro.mem import default_sanitize

    scenario = tmp_path / "toggles.yaml"
    scenario.write_text(
        "\n".join(
            [
                "schema: spright.scenario/1",
                "name: toggles",
                "experiment: fig2",
                "workload:",
                "  duration: 0.2",
                "observability:",
                "  sanitize: true",
                "  trace: true",
            ]
        )
    )
    before_observe = obs.default_observe()
    before_sanitize = default_sanitize()
    resolved = load_scenario(str(scenario))
    report = execute(resolved)
    assert "Fig 2" in report or report
    assert obs.default_observe() == before_observe
    assert default_sanitize() == before_sanitize


def test_run_scenario_writes_reports(tmp_path):
    out_dir = tmp_path / "out"
    scenario = tmp_path / "report.json"
    scenario.write_text(
        json.dumps(
            {
                "name": "report",
                "experiment": "fig2",
                "workload": {"duration": 0.2},
                "observability": {"out": str(out_dir)},
            }
        )
    )
    _resolved, report = run_scenario(str(scenario))
    assert (out_dir / "report.txt").read_text() == report + "\n"
    payload = json.loads((out_dir / "report.json").read_text())
    assert payload["experiment"] == "fig2"
    assert payload["seed"] == LEGACY_SEED
    assert payload["report"] == report


def test_live_sink_snapshot_carries_scenario_name():
    from repro.obs.live import LiveSink

    sink = LiveSink()
    assert sink.snapshot()["scenario"] is None
    sink.set_scenario("boutique-baseline")
    assert sink.snapshot()["scenario"] == "boutique-baseline"


# -- file resolution + the checked-in library ----------------------------------
def test_find_scenario_resolves_bare_names_and_paths():
    assert find_scenario("scenarios/clone-sweep.yaml").name == "clone-sweep.yaml"
    assert find_scenario("clone-sweep").name == "clone-sweep.yaml"
    with pytest.raises(ScenarioError):
        find_scenario("no-such-scenario")


def test_checked_in_library_is_valid_and_covers_both_formats():
    library = iter_library()
    assert len(library) >= 6
    suffixes = {path.suffix for path in library}
    assert ".json" in suffixes and ".yaml" in suffixes
    for path in library:
        assert check_scenario(str(path)) == [], path
        resolved = load_scenario(str(path))
        # library scenarios stay flag-equivalent: legacy seed everywhere
        assert resolved.seed == LEGACY_SEED, path
        assert resolved.name == path.stem, path


def test_library_covers_required_experiment_families():
    families = {load_scenario(str(p)).experiment for p in iter_library()}
    assert {"boutique", "faults", "recovery", "traffic", "cluster", "cloning"} <= families


# -- CLI plumbing --------------------------------------------------------------
def test_cli_validate_only_reports_ok_and_failures(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"name": "g", "experiment": "tables"}))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "b", "experiment": "tables", "x": 1}))
    code, out, _ = _capture_main(["run", "--validate-only", str(good), str(bad)])
    assert code == 1
    assert f"{good}: ok" in out
    assert "/x" in out and "unknown key" in out


def test_cli_run_surfaces_scenario_errors(tmp_path):
    bad = tmp_path / "bad.yaml"
    bad.write_text("name: b\nexperiment: nope\n")
    code, out, err = _capture_main(["run", str(bad)])
    assert code == 2
    assert out == ""
    assert "/experiment" in err


def test_cli_run_rejects_conflicting_overrides(tmp_path):
    scenario = tmp_path / "s.json"
    scenario.write_text(json.dumps({"name": "s", "experiment": "fig2"}))
    code, _out, err = _capture_main(
        ["run", str(scenario), "--set", "workload.duration=1", "--set", "workload=2"]
    )
    assert code == 2
    assert "--set workload" in err


def test_override_error_is_a_scenario_error():
    with pytest.raises(ScenarioOverrideError):
        apply_overrides({"name": "x", "experiment": "fig2"}, ["oops"])
    assert issubclass(ScenarioOverrideError, ScenarioError)
