"""Cluster fabric: topology, routing, codecs, and cross-node leg costs."""

import pytest

from repro.cluster import (
    ClusterFabric,
    LinkSpec,
    build_cluster,
    decode_wire,
    encode_wire,
)
from repro.kernel import FiveTuple, NodeConfig
from repro.runtime import WorkerNode
from repro.simcore import DeliveryError, Environment


def _drive(env, generator):
    """Run a generator to completion on the env, capturing its return."""
    result = {}

    def wrapper():
        result["value"] = yield from generator
    env.process(wrapper())
    env.run(until=1.0)
    return result.get("value")


def _transfer(fabric, src, dst, payload=b"hello cluster", **kwargs):
    return _drive(
        fabric.env,
        fabric.transfer(
            src,
            dst,
            payload,
            ops_tx=src.ops("t/net"),
            ops_rx=dst.ops("t/net"),
            **kwargs,
        ),
    )


# --- codecs ------------------------------------------------------------------


@pytest.mark.parametrize("protocol", ["grpc", "http"])
def test_wire_codec_round_trips(protocol):
    payload = b"\x00\x01binary payload\xff" * 7
    wire = encode_wire(payload, protocol)
    assert wire != payload  # real framing, not a pass-through
    assert decode_wire(wire, protocol) == payload


def test_wire_codec_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        encode_wire(b"x", "carrier-pigeon")
    with pytest.raises(ValueError):
        decode_wire(b"x", "carrier-pigeon")


# --- topology ----------------------------------------------------------------


def test_build_cluster_assigns_ips_and_bidirectional_routes():
    fabric = build_cluster(3)
    assert sorted(fabric.nodes) == ["worker-1", "worker-2", "worker-3"]
    assert fabric.ips["worker-1"] == "10.10.1.1"
    assert fabric.ips["worker-3"] == "10.10.3.1"
    for src in fabric.nodes.values():
        for dst_name, dst_ip in fabric.ips.items():
            if dst_name == src.name:
                continue
            flow = FiveTuple(
                src_ip=fabric.ips[src.name],
                dst_ip=dst_ip,
                src_port=40000,
                dst_port=8080,
            )
            assert src.fib.lookup(flow) is not None


def test_per_node_seeds_are_decorrelated_and_node0_matches_single():
    fabric = build_cluster(2, seed=2022)
    roots = [n.config.root_seed for n in fabric.nodes.values()]
    assert roots[0] == 2022  # byte-identity anchor for 1-node clusters
    assert len(set(roots)) == 2


def test_add_node_rejects_foreign_clock_and_duplicates():
    fabric = build_cluster(1)
    stranger = WorkerNode(NodeConfig(), name="stranger")  # its own env
    with pytest.raises(ValueError):
        fabric.add_node(stranger)
    with pytest.raises(ValueError):
        fabric.add_node(
            WorkerNode(NodeConfig(), env=fabric.env, name="worker-1")
        )


# --- transfers ---------------------------------------------------------------


def test_transfer_round_trips_payload_and_counts():
    fabric = build_cluster(2)
    src = fabric.nodes["worker-1"]
    dst = fabric.nodes["worker-2"]
    payload = b"x" * 256
    out = _transfer(fabric, src, dst, payload)
    assert out == payload
    assert fabric.xnode_hops == 1
    counters = src.counters.as_dict()
    assert counters["cluster/xnode_hops"] == 1
    wire_bytes = counters["cluster/worker-1->worker-2/bytes"]
    assert wire_bytes > len(payload)  # framing overhead is real
    assert fabric.bytes_moved == wire_bytes


def test_transfer_without_route_raises_typed_error():
    fabric = build_cluster(2)
    src = fabric.nodes["worker-1"]
    from repro.kernel import FibTable

    src.fib = FibTable()  # routes vanished (misconfiguration)
    with pytest.raises(DeliveryError) as excinfo:
        _transfer(fabric, src, fabric.nodes["worker-2"])
    assert excinfo.value.kind == "no_route"


def test_link_spec_overrides_change_wire_time():
    slow = LinkSpec(latency=10e-3, bandwidth_bps=1e6)
    assert slow.wire_time(1000) == pytest.approx(10e-3 + 8e-3)
    fabric = build_cluster(2)
    fabric.set_link("worker-1", "worker-2", slow)
    assert fabric.link_between("worker-1", "worker-2") is slow
    # The reverse direction keeps the default.
    assert fabric.link_between("worker-2", "worker-1") is fabric.default_link
    before = fabric.env.now
    _transfer(fabric, fabric.nodes["worker-1"], fabric.nodes["worker-2"])
    assert fabric.env.now - before > 10e-3


def test_nic_sourced_transfer_charges_no_sender_host_cpu():
    duration = 0.5

    def host_cpu_after(nic_sourced):
        fabric = build_cluster(2)
        src, dst = fabric.nodes["worker-1"], fabric.nodes["worker-2"]
        _drive(
            fabric.env,
            fabric.transfer(
                src,
                dst,
                b"p" * 64,
                ops_tx=src.ops("t/net"),
                ops_rx=dst.ops("t/net"),
                nic_sourced=nic_sourced,
                nic_terminated=True,
            ),
        )
        return src.cpu_percent_prefix("t/", duration)

    assert host_cpu_after(nic_sourced=False) > 0.0
    assert host_cpu_after(nic_sourced=True) == 0.0


def test_default_link_comes_from_cost_model():
    fabric = build_cluster(1)
    costs = fabric.nodes["worker-1"].config.costs
    assert fabric.default_link.latency == costs.xnode_link_latency
    assert fabric.default_link.bandwidth_bps == costs.xnode_bandwidth_bps


def test_fabric_rejects_node_off_clock_env_check():
    env = Environment()
    fabric = ClusterFabric(env)
    node = WorkerNode(NodeConfig(), env=env, name="n1")
    fabric.add_node(node)
    assert fabric.ips["n1"] == "10.10.1.1"
