"""Tests for per-request timelines and the waterfall analysis."""

import pytest

from repro.dataplane import (
    GrpcDataplane,
    KnativeDataplane,
    Request,
    RequestClass,
    SSprightDataplane,
)
from repro.runtime import FunctionSpec, WorkerNode
from repro.stats.tracing import overhead_time, segments, service_time, waterfall


def run_traced(plane_cls):
    node = WorkerNode()
    functions = [
        FunctionSpec(name="fn-1", service_time=1e-3, service_time_cv=0.0),
        FunctionSpec(name="fn-2", service_time=2e-3, service_time_cv=0.0),
    ]
    plane = plane_cls(node, functions)
    plane.deploy()
    request = Request(
        request_class=RequestClass(name="t", sequence=["fn-1", "fn-2"], payload_size=64),
        payload=b"x" * 64,
        created_at=0.0,
    ).enable_timeline()

    def driver(env):
        yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=5.0)
    return request


@pytest.mark.parametrize(
    "plane_cls", [KnativeDataplane, GrpcDataplane, SSprightDataplane]
)
def test_timeline_has_expected_milestones(plane_cls):
    request = run_traced(plane_cls)
    names = [name for name, _ in request.timeline]
    assert "deliver:fn-1" in names
    assert "served:fn-2" in names
    assert names[-1] == "response"
    stamps = [stamp for _, stamp in request.timeline]
    assert stamps == sorted(stamps)


def test_timeline_disabled_by_default():
    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="f", service_time=0.0)])
    plane.deploy()
    request = Request(
        request_class=RequestClass(name="t", sequence=["f"], payload_size=8),
        payload=b"x" * 8,
        created_at=0.0,
    )

    def driver(env):
        yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=1.0)
    assert request.timeline is None  # zero overhead when not requested


def test_service_time_extraction():
    request = run_traced(SSprightDataplane)
    served = service_time(request.timeline)
    # fn-1 = 1 ms, fn-2 = 2 ms, CV 0.
    assert served == pytest.approx(3e-3, rel=0.05)
    overhead = overhead_time(request.timeline, request.created_at, request.completed_at)
    assert 0 < overhead < served  # SPRIGHT overhead well under service time


def test_knative_overhead_dominates_spright():
    knative = run_traced(KnativeDataplane)
    spright = run_traced(SSprightDataplane)
    kn_overhead = overhead_time(knative.timeline, knative.created_at, knative.completed_at)
    sp_overhead = overhead_time(spright.timeline, spright.created_at, spright.completed_at)
    assert kn_overhead > 2 * sp_overhead


def test_segments_partition_the_timeline():
    request = run_traced(SSprightDataplane)
    parts = segments(request.timeline, request.created_at)
    total = sum(segment.duration for segment in parts)
    last_stamp = request.timeline[-1][1]
    assert total == pytest.approx(last_stamp - request.created_at)


def test_waterfall_renders():
    request = run_traced(SSprightDataplane)
    art = waterfall(request.timeline, request.created_at)
    assert "deliver:fn-1" in art
    assert "total" in art
    assert "#" in art


def test_waterfall_empty():
    assert "empty" in waterfall([], 0.0)


# -- out-of-order milestones (clamp + flag, never a fake bar) -----------------

def test_segments_clamp_out_of_order_stamps():
    timeline = [("a", 1.0), ("b", 0.5), ("c", 2.0)]
    parts = segments(timeline, 0.0)
    assert [s.out_of_order for s in parts] == [False, True, False]
    assert parts[1].duration == 0.0
    assert parts[1].start == 1.0  # cursor held at the latest time seen
    assert parts[2].start == 1.0 and parts[2].duration == pytest.approx(1.0)
    assert all(s.duration >= 0 for s in parts)


def test_waterfall_marks_out_of_order_segments():
    timeline = [("a", 1.0), ("b", 0.5), ("c", 2.0)]
    art = waterfall(timeline, 0.0)
    assert "(out-of-order)" in art
    assert "!" in art
    b_line = next(line for line in art.splitlines() if line.startswith("b"))
    assert "#" not in b_line  # flagged milestones never render as bars


def test_waterfall_in_order_rendering_unchanged():
    """Clamping must not alter how well-formed timelines render."""
    request = run_traced(SSprightDataplane)
    art = waterfall(request.timeline, request.created_at)
    assert "(out-of-order)" not in art
    assert "!" not in art


# -- span-tree interop (repro.obs) --------------------------------------------

def run_span_traced(plane_cls):
    node = WorkerNode()
    node.obs.enable_tracing()
    functions = [
        FunctionSpec(name="fn-1", service_time=1e-3, service_time_cv=0.0),
        FunctionSpec(name="fn-2", service_time=2e-3, service_time_cv=0.0),
    ]
    plane = plane_cls(node, functions)
    plane.deploy()
    request = Request(
        request_class=RequestClass(name="t", sequence=["fn-1", "fn-2"], payload_size=64),
        payload=b"x" * 64,
        created_at=0.0,
    ).enable_timeline()

    def driver(env):
        yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=5.0)
    return request, node.obs.tracer


def test_spans_to_timeline_matches_flat_timeline():
    from repro.stats import spans_to_timeline

    request, tracer = run_span_traced(SSprightDataplane)
    children = tracer.children_index()
    phase_timeline = spans_to_timeline(children[request.span.sid])
    assert phase_timeline == request.timeline


def test_span_waterfall_matches_timeline_waterfall():
    from repro.stats import span_waterfall

    request, tracer = run_span_traced(SSprightDataplane)
    children = tracer.children_index()
    art = span_waterfall(request.span, children[request.span.sid])
    assert art == waterfall(request.timeline, request.created_at)
