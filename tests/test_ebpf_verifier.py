"""Unit tests for the eBPF static verifier."""

import pytest

from repro.kernel.ebpf import Assembler, ProgramType, R0, R1, R2, R10, verify
from repro.kernel.ebpf.isa import Insn, Op, Program
from repro.kernel.ebpf.verifier import MAX_INSNS, VerifierError


def build(*insns, prog_type=ProgramType.XDP, name="t"):
    return Program(insns=tuple(insns), prog_type=prog_type, name=name)


def test_minimal_valid_program_passes():
    program = build(Insn(Op.MOV_IMM, dst=R0, imm=0), Insn(Op.EXIT))
    verify(program)  # must not raise


def test_empty_program_rejected():
    with pytest.raises(VerifierError, match="empty"):
        verify(build())


def test_oversized_program_rejected():
    insns = [Insn(Op.MOV_IMM, dst=R0, imm=0)] * (MAX_INSNS + 1)
    with pytest.raises(VerifierError, match="too large"):
        verify(Program(insns=tuple(insns), prog_type=ProgramType.XDP))


def test_backward_jump_rejected():
    program = build(
        Insn(Op.MOV_IMM, dst=R0, imm=0),
        Insn(Op.JA, off=-1),
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="backward jump"):
        verify(program)


def test_jump_out_of_range_rejected():
    program = build(
        Insn(Op.MOV_IMM, dst=R0, imm=0),
        Insn(Op.JA, off=10),
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="out of range"):
        verify(program)


def test_read_of_uninitialized_register_rejected():
    program = build(
        Insn(Op.MOV_REG, dst=R0, src=R2),  # R2 never written
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="uninitialized register r2"):
        verify(program)


def test_exit_requires_r0_initialized():
    program = build(Insn(Op.EXIT))
    with pytest.raises(VerifierError, match="uninitialized register r0"):
        verify(program)


def test_r1_is_initialized_at_entry():
    program = build(Insn(Op.MOV_REG, dst=R0, src=R1), Insn(Op.EXIT))
    verify(program)


def test_call_clobbers_caller_saved_registers():
    # R1 is live before the call, dead after it.
    program = build(
        Insn(Op.MOV_IMM, dst=R1, imm=3),
        Insn(Op.CALL, imm=5),            # ktime
        Insn(Op.MOV_REG, dst=R0, src=R1),  # R1 was clobbered by the call
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="uninitialized register r1"):
        verify(program)


def test_call_initializes_r0():
    program = build(Insn(Op.CALL, imm=5), Insn(Op.EXIT))
    verify(program)


def test_write_to_frame_pointer_rejected():
    program = build(Insn(Op.MOV_IMM, dst=R10, imm=0), Insn(Op.EXIT))
    with pytest.raises(VerifierError, match="frame pointer"):
        verify(program)


def test_stack_access_out_of_bounds_rejected():
    program = build(
        Insn(Op.LD64, dst=R0, src=R10, off=-1024),
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="stack read"):
        verify(program)


def test_stack_access_above_fp_rejected():
    program = build(
        Insn(Op.LD64, dst=R0, src=R10, off=8),
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="stack read"):
        verify(program)


def test_valid_stack_spill_passes():
    program = build(
        Insn(Op.MOV_IMM, dst=R2, imm=9),
        Insn(Op.ST64, dst=R10, src=R2, off=-8),
        Insn(Op.LD64, dst=R0, src=R10, off=-8),
        Insn(Op.EXIT),
    )
    verify(program)


def test_division_by_zero_immediate_rejected():
    program = build(
        Insn(Op.MOV_IMM, dst=R0, imm=8),
        Insn(Op.DIV_IMM, dst=R0, imm=0),
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="division by zero"):
        verify(program)


def test_shift_amount_out_of_range_rejected():
    program = build(
        Insn(Op.MOV_IMM, dst=R0, imm=8),
        Insn(Op.LSH_IMM, dst=R0, imm=64),
        Insn(Op.EXIT),
    )
    with pytest.raises(VerifierError, match="shift amount"):
        verify(program)


def test_fallthrough_off_end_rejected():
    program = build(Insn(Op.MOV_IMM, dst=R0, imm=1))
    with pytest.raises(VerifierError, match="falls off the end"):
        verify(program)


def test_no_reachable_exit_rejected():
    # JA jumps over the only EXIT to... nothing: structurally impossible to
    # build without also falling off the end, so craft dead-exit layout.
    program = build(
        Insn(Op.MOV_IMM, dst=R0, imm=1),
        Insn(Op.JA, off=1),
        Insn(Op.EXIT),          # unreachable
        Insn(Op.MOV_IMM, dst=R0, imm=2),
    )
    with pytest.raises(VerifierError, match="falls off the end"):
        verify(program)


def test_branch_merge_takes_intersection_of_initialized_regs():
    # R2 initialized on only one path; reading it after the merge must fail.
    asm = Assembler("merge")
    asm.mov_imm(R0, 0)
    asm.jeq_imm(R0, 0, "skip")
    asm.mov_imm(R2, 1)
    asm.label("skip")
    asm.mov_reg(R0, R2)
    asm.exit_()
    with pytest.raises(VerifierError, match="uninitialized register r2"):
        verify(asm.build(ProgramType.XDP))


def test_spright_programs_all_verify():
    from repro.kernel.ebpf import programs

    for program in [
        programs.sproxy_redirect(sockmap_fd=3),
        programs.sproxy_filtered_redirect(filter_map_fd=3, sockmap_fd=4),
        programs.sproxy_l7_metrics(metrics_fd=5),
        programs.eproxy_l3_metrics(metrics_fd=5),
        programs.xdp_fib_forward(),
        programs.tc_fib_forward(),
    ]:
        verify(program)
