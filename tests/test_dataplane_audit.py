"""End-to-end audit tests: executed pipelines must reproduce Tables 1 and 2.

These are the paper's headline accounting claims. The counts are not
hard-coded anywhere in the dataplane implementations — they emerge from the
operations the components actually perform — so these tests pin the
implementations to the paper.
"""

import pytest

from repro.audit import Auditor, OverheadKind, Stage
from repro.dataplane import (
    KnativeDataplane,
    Request,
    RequestClass,
    SSprightDataplane,
    nginx_function,
)
from repro.runtime import FunctionSpec, WorkerNode


def run_chain(plane_cls, node=None, repetitions=3, **plane_kwargs):
    """Drive a '1 broker/front-end + 2 functions' chain and audit it."""
    node = node or WorkerNode()
    functions = [
        FunctionSpec(name="fn-1", service_time=0.0),
        FunctionSpec(name="fn-2", service_time=0.0),
    ]
    plane = plane_cls(node, functions, **plane_kwargs)
    plane.deploy()
    auditor = Auditor(name=plane.plane)
    request_class = RequestClass(
        name="audit", sequence=["fn-1", "fn-2"], payload_size=100
    )

    def driver(env):
        for _ in range(repetitions):
            request = Request(
                request_class=request_class,
                payload=b"x" * request_class.payload_size,
                created_at=env.now,
                trace=auditor.new_trace(),
            )
            yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=10.0)
    return auditor.table(), plane, node


# The paper's Table 1, '1 broker/front-end + 2 functions', per request.
TABLE_1 = {
    OverheadKind.COPY: ((1, 2, 3), (4, 4, 4, 12), 15),
    OverheadKind.CONTEXT_SWITCH: ((1, 2, 3), (4, 4, 4, 12), 15),
    OverheadKind.INTERRUPT: ((3, 4, 7), (6, 6, 6, 18), 25),
    OverheadKind.PROTOCOL_PROCESSING: ((1, 2, 3), (3, 3, 3, 9), 12),
    OverheadKind.SERIALIZATION: ((1, 1, 2), (2, 2, 2, 6), 8),
    OverheadKind.DESERIALIZATION: ((0, 1, 1), (2, 2, 2, 6), 7),
}

# The paper's Table 2: SPRIGHT on the same chain (DFR: ③ gw->fn1, ④ fn1->fn2).
TABLE_2 = {
    OverheadKind.COPY: ((1, 2, 3), (0, 0, 0), 3),
    OverheadKind.CONTEXT_SWITCH: ((1, 2, 3), (2, 2, 4), 7),
    OverheadKind.INTERRUPT: ((3, 4, 7), (2, 2, 4), 11),
    OverheadKind.PROTOCOL_PROCESSING: ((1, 2, 3), (0, 0, 0), 3),
    OverheadKind.SERIALIZATION: ((1, 1, 2), (0, 0, 0), 2),
    OverheadKind.DESERIALIZATION: ((0, 1, 1), (0, 0, 0), 1),
}


@pytest.fixture(scope="module")
def knative_table():
    table, _, _ = run_chain(KnativeDataplane)
    return table


@pytest.fixture(scope="module")
def spright_table():
    table, _, _ = run_chain(SSprightDataplane)
    return table


@pytest.mark.parametrize("kind", list(OverheadKind))
def test_table1_external_columns(knative_table, kind):
    step1, step2, external = TABLE_1[kind][0]
    assert knative_table.stage(Stage.STEP_1, kind) == step1, kind
    assert knative_table.stage(Stage.STEP_2, kind) == step2, kind
    assert knative_table.external_total(kind) == external, kind


@pytest.mark.parametrize("kind", list(OverheadKind))
def test_table1_chain_columns(knative_table, kind):
    step3, step4, step5, chain_total = TABLE_1[kind][1]
    assert knative_table.stage(Stage.STEP_3, kind) == step3, kind
    assert knative_table.stage(Stage.STEP_4, kind) == step4, kind
    assert knative_table.stage(Stage.STEP_5, kind) == step5, kind
    assert knative_table.chain_total(kind) == chain_total, kind


@pytest.mark.parametrize("kind", list(OverheadKind))
def test_table1_totals(knative_table, kind):
    assert knative_table.total(kind) == TABLE_1[kind][2], kind


@pytest.mark.parametrize("kind", list(OverheadKind))
def test_table2_external_columns(spright_table, kind):
    step1, step2, external = TABLE_2[kind][0]
    assert spright_table.stage(Stage.STEP_1, kind) == step1, kind
    assert spright_table.stage(Stage.STEP_2, kind) == step2, kind
    assert spright_table.external_total(kind) == external, kind


@pytest.mark.parametrize("kind", list(OverheadKind))
def test_table2_chain_columns(spright_table, kind):
    step3, step4, chain_total = TABLE_2[kind][1]
    assert spright_table.stage(Stage.STEP_3, kind) == step3, kind
    assert spright_table.stage(Stage.STEP_4, kind) == step4, kind
    assert spright_table.chain_total(kind) == chain_total, kind


@pytest.mark.parametrize("kind", list(OverheadKind))
def test_table2_totals(spright_table, kind):
    assert spright_table.total(kind) == TABLE_2[kind][2], kind


def test_spright_zero_copy_within_chain(spright_table):
    """The headline claim: zero copies, zero protocol processing, zero
    serialization within the chain."""
    for kind in (
        OverheadKind.COPY,
        OverheadKind.PROTOCOL_PROCESSING,
        OverheadKind.SERIALIZATION,
        OverheadKind.DESERIALIZATION,
    ):
        assert spright_table.chain_total(kind) == 0


def test_knative_chain_dominates_overheads(knative_table):
    """Takeaway #1: ~80% of the overhead comes from within the chain."""
    for kind in (OverheadKind.COPY, OverheadKind.CONTEXT_SWITCH):
        chain = knative_table.chain_total(kind)
        total = knative_table.total(kind)
        assert chain / total == pytest.approx(0.8)


def test_audit_table_renders():
    table, _, _ = run_chain(KnativeDataplane)
    text = table.render()
    assert "# of copies" in text
    assert "15" in text
