"""Smoke tests: every experiment runner executes and reports sane shapes.

Full-scale regeneration lives in benchmarks/; these short runs guard the
runner plumbing (construction, reporting, determinism) in the unit suite.
"""

import pytest

from repro.experiments import (
    ablations,
    audits,
    boutique_exp,
    fig2,
    fig5,
    motion_exp,
    parking_exp,
    xdp_exp,
)


def test_audit_report_renders_both_tables():
    report = audits.format_report()
    assert "Kn total" in report
    assert "SP total" in report
    assert "15" in report and "25" in report  # Table 1 totals
    assert "11" in report                      # Table 2 interrupt total


def test_fig2_runner_short():
    results = fig2.run_fig2(duration=1.0)
    assert [result.name for result in results] == ["Null", "QP", "Envoy", "OFW"]
    report = fig2.format_report(results)
    assert "cyc/req" in report


def test_fig5_point_determinism():
    first = fig5.run_point("s-spright", 8, duration=0.5)
    second = fig5.run_point("s-spright", 8, duration=0.5)
    assert first.rps == second.rps
    assert first.mean_latency_ms == second.mean_latency_ms


def test_fig5_result_accessors():
    result = fig5.run_fig5(planes=("s-spright",), levels=(1, 4), duration=0.3)
    assert len(result.points) == 2
    assert result.at("s-spright", 4).concurrency == 4
    assert len(result.series("s-spright")) == 2
    with pytest.raises(KeyError):
        result.at("s-spright", 99)
    assert "Fig 5" in fig5.format_report(result)


def test_boutique_run_short():
    run = boutique_exp.run_boutique("s-spright", scale=0.05, duration=10.0)
    assert run.rps > 0
    assert run.recorder.count("") > 10
    assert run.latency_ms("mean") > 0


def test_boutique_comparison_tables():
    comparison = boutique_exp.BoutiqueComparison()
    comparison.runs["s-spright"] = boutique_exp.run_boutique(
        "s-spright", scale=0.05, duration=10.0
    )
    assert len(comparison.table5()) == 1
    assert "Table 5" in boutique_exp.format_table5(comparison)
    assert "Fig 9" in boutique_exp.format_fig9(comparison)
    assert "Fig 10" in boutique_exp.format_fig10(comparison)


def test_motion_runner_short():
    run = motion_exp.run_motion("s-spright", duration=600.0)
    assert run.cold_starts == 0
    assert run.recorder.count("") > 0
    assert run.latency_ms("p99") < 50.0


def test_motion_knative_sees_cold_starts():
    run = motion_exp.run_motion("knative", duration=900.0)
    assert run.cold_starts > 0
    assert run.max_latency_s() > 1.0


def test_parking_runner_short():
    run = parking_exp.run_parking("s-spright", duration=250.0)
    # Two bursts (t=0 and t=240) at 250 s; only the first completes fully.
    assert run.recorder.count("") >= 164
    assert run.latency_ms("mean") > 400.0  # VGG-16 stage dominates


def test_xdp_runner_short():
    comparison = xdp_exp.run_xdp_comparison(concurrency=16, duration=0.5)
    assert comparison["throughput_gain"] > 1.0
    assert "acceleration" in xdp_exp.format_report(comparison)


def test_hugepage_ablation_values():
    result = ablations.run_hugepage_ablation(payloads=(1024,))
    assert result[1024]["saving"] == pytest.approx(0.15, abs=0.01)


def test_experiment_results_deterministic_across_runs():
    first = parking_exp.run_parking("s-spright", duration=100.0)
    second = parking_exp.run_parking("s-spright", duration=100.0)
    assert first.recorder.summary("").mean == second.recorder.summary("").mean
