"""Tests for the observability metrics registry and OpenMetrics rendering."""

import pytest

from repro.obs import (
    LegacyCounters,
    MetricsRegistry,
    log_bucket_bounds,
    sanitize_metric_name,
)
from repro.stats import Counter as LegacyStatsCounter


# -- naming -------------------------------------------------------------------

def test_sanitize_metric_name():
    assert sanitize_metric_name("ops/kn/copy") == "spright_ops_kn_copy"
    assert sanitize_metric_name("faults/failed/crash") == "spright_faults_failed_crash"
    assert sanitize_metric_name("a b-c", prefix="") == "a_b_c"


def test_log_bucket_bounds_deterministic_and_sorted():
    bounds = log_bucket_bounds()
    assert bounds == log_bucket_bounds()
    assert list(bounds) == sorted(bounds)
    assert bounds[0] == pytest.approx(1e-6)
    assert len(bounds) == 26


# -- counters / gauges --------------------------------------------------------

def test_counter_incr_and_negative_rejected():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    counter.incr()
    counter.incr(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.incr(-1)


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("inflight")
    gauge.set(3.0)
    gauge.add(-1.0)
    assert gauge.value == 2.0


def test_type_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_same_name_returns_same_metric():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")


# -- histograms ---------------------------------------------------------------

def test_histogram_cumulative_counts():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", bounds=[1.0, 10.0, 100.0])
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value)
    cumulative = histogram.cumulative()
    assert cumulative[0] == (1.0, 1)
    assert cumulative[1] == (10.0, 2)
    assert cumulative[2] == (100.0, 3)
    assert cumulative[-1] == (float("inf"), 4)
    assert histogram.count == 4
    assert histogram.total == pytest.approx(555.5)


# -- OpenMetrics rendering ----------------------------------------------------

def test_render_openmetrics_format():
    registry = MetricsRegistry()
    registry.counter("ops/kn/copy").incr(7)
    registry.gauge("autoscale/fn/concurrency").set(3)
    histogram = registry.histogram("lat", bounds=[0.001, 0.01])
    histogram.observe(0.005)
    text = registry.render_openmetrics()
    assert "# TYPE spright_ops_kn_copy counter" in text
    assert "spright_ops_kn_copy_total 7" in text
    assert "# TYPE spright_autoscale_fn_concurrency gauge" in text
    assert "spright_autoscale_fn_concurrency 3" in text
    assert 'spright_lat_bucket{le="0.001"} 0' in text
    assert 'spright_lat_bucket{le="+Inf"} 1' in text
    assert "spright_lat_count 1" in text
    assert text.endswith("# EOF\n")


def test_render_openmetrics_sorted_and_deterministic():
    registry = MetricsRegistry()
    registry.counter("zeta").incr()
    registry.counter("alpha").incr()
    text = registry.render_openmetrics()
    assert text.index("spright_alpha") < text.index("spright_zeta")
    assert text == registry.render_openmetrics()


def test_escape_label_value_per_spec():
    """The OpenMetrics exposition format admits exactly three escapes in a
    quoted label value — backslash, newline, quote — backslash first."""
    from repro.obs.export import escape_label_value

    assert escape_label_value("plain") == "plain"
    assert escape_label_value('a"b') == 'a\\"b'
    assert escape_label_value("a\nb") == "a\\nb"
    assert escape_label_value("a\\b") == "a\\\\b"
    # Backslash escapes first: a literal \n stays a literal \n, not a
    # doubly-mangled newline escape.
    assert escape_label_value("a\\nb") == "a\\\\nb"
    assert escape_label_value('\\"\n') == '\\\\\\"\\n'


def test_render_openmetrics_with_labels_is_spec_shaped():
    from repro.obs.export import render_openmetrics

    registry = MetricsRegistry()
    registry.counter("ops/kn/copy").incr(7)
    registry.gauge("autoscale/fn/concurrency").set(3)
    histogram = registry.histogram("lat", bounds=[0.001, 0.01])
    histogram.observe(0.005)
    text = render_openmetrics(
        registry, labels={"node": 'work"er\\1', "zone": "a"}
    )
    # Label keys sorted, values escaped; le stays last on bucket lines.
    assert 'spright_ops_kn_copy_total{node="work\\"er\\\\1",zone="a"} 7' in text
    assert (
        'spright_lat_bucket{node="work\\"er\\\\1",zone="a",le="0.01"} 1' in text
    )
    assert 'spright_lat_sum{node="work\\"er\\\\1",zone="a"}' in text
    assert 'spright_lat_count{node="work\\"er\\\\1",zone="a"} 1' in text
    assert text.endswith("# EOF\n")


def test_render_openmetrics_unlabeled_matches_registry_method():
    from repro.obs.export import render_openmetrics

    registry = MetricsRegistry()
    registry.counter("ops/kn/copy").incr(2)
    registry.histogram("lat", bounds=[0.5]).observe(0.1)
    assert render_openmetrics(registry) == registry.render_openmetrics()


# -- legacy facade ------------------------------------------------------------

def test_legacy_counters_match_stats_counter():
    """The registry facade behaves exactly like the old stats.Counter."""
    old = LegacyStatsCounter()
    new = LegacyCounters(MetricsRegistry())
    operations = [
        ("kn/cold_starts", 1),
        ("faults/failed/crash", 2),
        ("kn/cold_starts", 3),
        ("spright/descriptors_dropped", 1),
    ]
    for name, amount in operations:
        old.incr(name, amount)
        new.incr(name, amount)
    assert new.as_dict() == old.as_dict()
    assert list(new.as_dict()) == list(old.as_dict())  # insertion order too
    assert new.get("kn/cold_starts") == old.get("kn/cold_starts") == 4
    # get() never creates (exactly like a dict .get default).
    assert new.get("never/seen") == 0
    assert "never/seen" not in new.as_dict()
