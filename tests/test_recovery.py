"""Tests for the self-healing control plane (repro.recovery).

Covers the supervisor's detect/restart/backoff loop, shared-memory orphan
reclamation through the scavenger, admission-control queue bounds and
priority-ordered CoDel shedding, post-restart sockmap re-registration, and
the byte-identity contract (disarmed recovery perturbs nothing).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane import (
    Request,
    RequestClass,
    ShedError,
    SprightParams,
    SSprightDataplane,
)
from repro.dataplane.spright.chain import SprightMessage
from repro.faults import FaultKind, FaultPlan, FaultSpec, load_plan
from repro.mem import ShmScavenger, SharedMemoryPool, PoolSanitizer
from repro.recovery import (
    AdmissionController,
    AdmissionPolicy,
    BACKOFF_STREAM,
    PodSupervisor,
    SupervisorPolicy,
)
from repro.runtime import FunctionSpec, Kubelet, WorkerNode
from repro.simcore import Event


def make_deployment(node, name="f", min_scale=1):
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    deployment = kubelet.deployment(
        FunctionSpec(name=name, service_time=10e-6), f"t/fn/{name}"
    )
    deployment.scale_to(min_scale)
    node.run(until=0.01)
    return deployment


def crash_plan(at=0.1, target="*"):
    return FaultPlan(
        name="crash",
        faults=[FaultSpec(kind=FaultKind.POD_CRASH, at=at, duration=None, target=target)],
    )


# -- policy validation -------------------------------------------------------------

def test_supervisor_policy_validation():
    with pytest.raises(ValueError):
        SupervisorPolicy(check_interval=0.0)
    with pytest.raises(ValueError):
        SupervisorPolicy(hang_grace=-1.0)
    with pytest.raises(ValueError):
        SupervisorPolicy(backoff_base=1.0, backoff_cap=0.5)
    with pytest.raises(ValueError):
        SupervisorPolicy(backoff_jitter=1.5)


def test_admission_policy_validation_and_inertness():
    assert not AdmissionPolicy().enabled()
    assert AdmissionPolicy(queue_limit=4).enabled()
    assert AdmissionPolicy(rate_limit=10.0).enabled()
    assert AdmissionPolicy(target_delay=0.01).enabled()
    with pytest.raises(ValueError):
        AdmissionPolicy(queue_limit=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(rate_limit=-1.0)
    with pytest.raises(ValueError):
        AdmissionPolicy(target_delay=0.0)
    with pytest.raises(ValueError):
        AdmissionPolicy(burst=0.5)


def test_inert_admission_policy_attaches_nothing():
    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="fn-1")])
    plane.deploy()
    plane.use_admission(AdmissionPolicy())
    assert plane.admission is None


# -- backoff determinism (hypothesis, per seed) ------------------------------------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       attempt=st.integers(min_value=1, max_value=12))
def test_restart_backoff_deterministic_and_bounded(seed, attempt):
    from repro.kernel import NodeConfig

    policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=5.0, backoff_jitter=0.1)
    first = policy.restart_backoff(WorkerNode(NodeConfig(root_seed=seed)).rng, attempt)
    second = policy.restart_backoff(WorkerNode(NodeConfig(root_seed=seed)).rng, attempt)
    assert first == second  # same seed, same stream, same delay
    nominal = min(0.1 * 2 ** (attempt - 1), 5.0)
    assert nominal * 0.9 <= first <= nominal * 1.1


def test_restart_backoff_escalates_then_caps():
    policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=2.0, backoff_jitter=0.0)
    node = WorkerNode()
    delays = [policy.restart_backoff(node.rng, attempt) for attempt in range(1, 8)]
    assert delays == sorted(delays)
    assert delays[-1] == 2.0  # capped
    assert BACKOFF_STREAM not in node.rng._streams  # jitter=0 draws nothing


# -- supervisor: detect -> restart -> restore --------------------------------------

def test_supervisor_restarts_crashed_pod():
    node = WorkerNode()
    deployment = make_deployment(node)
    dead = deployment.pods[0]
    node.faults.register_deployment("f", deployment)
    supervisor = PodSupervisor(
        node, policy=SupervisorPolicy(backoff_base=0.05, restart_cost_mean=0.2)
    )
    supervisor.watch("f", deployment)
    supervisor.start()
    node.faults.arm(crash_plan(at=0.1))
    node.run(until=5.0)
    assert node.counters.get("recovery/crashes_detected") == 1
    assert node.counters.get("recovery/restarts") == 1
    assert node.counters.get("recovery/restored") == 1
    replacements = deployment.servable_pods()
    assert len(replacements) == 1
    assert replacements[0].instance_id != dead.instance_id
    assert len(supervisor.mttr_samples) == 1
    # MTTR includes the backoff plus the modeled cold-start cost.
    assert supervisor.mttr_mean() > 0.05
    assert supervisor.restored_at and supervisor.restored_at[0] > 0.1


def test_supervisor_detects_hang_after_grace():
    node = WorkerNode()
    deployment = make_deployment(node)
    node.faults.register_deployment("f", deployment)
    supervisor = PodSupervisor(
        node, policy=SupervisorPolicy(check_interval=0.1, hang_grace=0.3)
    )
    supervisor.watch("f", deployment)
    supervisor.start()
    node.faults.arm(
        FaultPlan(
            name="hang",
            faults=[FaultSpec(kind=FaultKind.POD_HANG, at=0.1, duration=None)],
        )
    )
    node.run(until=0.35)
    # Inside the grace window a hang is not yet a death.
    assert node.counters.get("recovery/crashes_detected") == 0
    node.run(until=5.0)
    assert node.counters.get("recovery/crashes_detected") == 1
    assert node.counters.get("recovery/restored") == 1


def test_short_hang_recovers_without_restart():
    node = WorkerNode()
    deployment = make_deployment(node)
    node.faults.register_deployment("f", deployment)
    supervisor = PodSupervisor(
        node, policy=SupervisorPolicy(check_interval=0.1, hang_grace=1.0)
    )
    supervisor.watch("f", deployment)
    supervisor.start()
    node.faults.arm(
        FaultPlan(
            name="blip",
            faults=[FaultSpec(kind=FaultKind.POD_HANG, at=0.1, duration=0.2)],
        )
    )
    node.run(until=5.0)
    assert node.counters.get("recovery/crashes_detected") == 0
    assert supervisor.restarts == 0


def test_supervisor_gives_up_past_max_restarts():
    node = WorkerNode()
    deployment = make_deployment(node)
    node.faults.register_deployment("f", deployment)
    supervisor = PodSupervisor(node, policy=SupervisorPolicy(max_restarts=0))
    supervisor.watch("f", deployment)
    supervisor.start()
    node.faults.arm(crash_plan(at=0.1))
    node.run(until=5.0)
    assert node.counters.get("recovery/gave_up") == 1
    assert supervisor.gave_up == 1
    assert node.counters.get("recovery/restarts") == 0
    assert not deployment.servable_pods()


def test_supervisor_runs_are_deterministic():
    def one_run():
        node = WorkerNode()
        deployment = make_deployment(node)
        node.faults.register_deployment("f", deployment)
        supervisor = PodSupervisor(node, policy=SupervisorPolicy())
        supervisor.watch("f", deployment)
        supervisor.start()
        node.faults.arm(crash_plan(at=0.1))
        node.run(until=10.0)
        return supervisor.mttr_samples

    assert one_run() == one_run()


# -- scavenger: orphan reclamation --------------------------------------------------

def test_scavenger_reclaims_only_dead_owner_and_is_idempotent():
    node = WorkerNode()
    pool = SharedMemoryPool("p", "prefix", buffer_size=64, capacity=8)
    sanitizer = PoolSanitizer(counter=node.counters)
    pool.attach_sanitizer(sanitizer)
    scavenger = ShmScavenger(pool, counter=node.counters)

    mine = pool.alloc(site="test/mine")
    also_mine = pool.alloc(site="test/also")
    theirs = pool.alloc(site="test/theirs")
    scavenger.assign(7, mine, token="a")
    scavenger.assign(7, also_mine, token="b")
    scavenger.assign(8, theirs)
    assert scavenger.owned_count(7) == 2 and scavenger.tracked_count == 3

    # One buffer is freed through the normal path before the crash.
    scavenger.release(also_mine)
    pool.free(also_mine)

    generation_before = mine.generation
    reclaimed = scavenger.reclaim(7, site="test/crash")
    assert [token for _handle, token in reclaimed] == ["a"]
    assert node.counters.get("recovery/orphans_reclaimed") == 1
    assert sanitizer.orphan_reclaims == 1
    assert scavenger.reclaim(7) == []  # idempotent
    # The slot generation was bumped: a stale handle faults instead of
    # aliasing the next occupant.
    fresh = pool.alloc(site="test/next")
    if fresh.offset == mine.offset:
        assert fresh.generation > generation_before

    # Only the live owner's buffer remains; no leaks after it goes too.
    scavenger.release(theirs)
    pool.free(theirs)
    pool.free(fresh)
    assert not sanitizer.check_teardown(pool)
    assert pool.in_use_count == 0


def test_scavenger_reassignment_moves_ownership():
    pool = SharedMemoryPool("p", "prefix", buffer_size=64, capacity=4)
    scavenger = ShmScavenger(pool)
    handle = pool.alloc()
    scavenger.assign(1, handle)
    scavenger.assign(2, handle)  # descriptor hopped to the next function
    assert scavenger.owned_count(1) == 0
    assert scavenger.reclaim(1) == []
    assert [h for h, _ in scavenger.reclaim(2)] == [handle]
    assert pool.in_use_count == 0


def test_chain_reclaim_wakes_requester_and_leaves_no_leak():
    node = WorkerNode()
    plane = SSprightDataplane(
        node,
        [FunctionSpec(name="fn-1", service_time=0.05)],
        params=SprightParams(sanitize=True),
    )
    plane.deploy()
    runtime = plane.runtime
    pod = plane.deployments["fn-1"].pods[0]

    request_class = RequestClass(name="t", sequence=["fn-1"], payload_size=4)
    request = Request(request_class=request_class, payload=b"data", created_at=0.0)

    reclaimed_counts = []

    def crash(env):
        # Crash mid-service: the descriptor is parked with (or being burned
        # by) the pod, so its buffer is an orphan the supervisor must pull.
        yield env.timeout(0.01)
        pod.fail()
        yield pod.terminate()
        reclaimed_counts.append(runtime.reclaim_orphans(pod))

    node.env.process(plane.submit(request))
    node.env.process(crash(node.env))
    node.run(until=5.0)
    assert reclaimed_counts == [1]

    assert request.failed and request.error is not None
    assert request.error.kind == "crash"
    assert node.counters.get("recovery/orphans_reclaimed") == 1
    assert runtime.pool.in_use_count == 0
    assert not runtime.sanitizer.check_teardown(runtime.pool)
    assert runtime.sanitizer.orphan_reclaims == 1


def test_chain_reclaim_is_noop_for_buffers_freed_normally():
    node = WorkerNode()
    plane = SSprightDataplane(
        node, [FunctionSpec(name="fn-1")], params=SprightParams(sanitize=True)
    )
    plane.deploy()
    pod = plane.deployments["fn-1"].pods[0]
    request_class = RequestClass(name="t", sequence=["fn-1"], payload_size=4)
    request = Request(request_class=request_class, payload=b"data", created_at=0.0)
    node.env.process(plane.submit(request))
    node.run(until=1.0)
    assert not request.failed
    assert plane.runtime.reclaim_orphans(pod) == 0
    assert node.counters.get("recovery/orphans_reclaimed") == 0


def test_reclaimed_message_descriptor_cannot_reenter_chain():
    node = WorkerNode()
    plane = SSprightDataplane(
        node, [FunctionSpec(name="fn-1")], params=SprightParams(sanitize=True)
    )
    plane.deploy()
    runtime = plane.runtime
    pod = plane.deployments["fn-1"].pods[0]
    handle = runtime.pool.alloc(site="test/manual")
    runtime.pool.write(handle, b"x")
    message = SprightMessage(
        handle=handle, trace=None, request=None, done=Event(node.env)
    )
    runtime.scavenger.assign(pod.instance_id, handle, message)
    assert runtime.reclaim_orphans(pod) == 1
    assert message.freed and message.done.triggered
    assert message.failed_error is not None
    # The freed guard stops the next hop from resurrecting the descriptor.
    sent = list(runtime._send_to_function(None, None, message, "fn-1", None))
    assert not message.in_chain
    assert runtime.pool.in_use_count == 0
    del sent


# -- sockmap re-registration after restart ----------------------------------------

def test_verify_registration_repairs_evicted_sockmap_entry():
    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="fn-1")])
    plane.deploy()
    node.run(until=0.01)
    runtime = plane.runtime
    pod = plane.deployments["fn-1"].pods[0]
    assert runtime.verify_registration(pod)  # wired: nothing to repair
    assert node.counters.get("spright/sockmap_repairs") == 0

    runtime.transport.sockmap.delete(pod.instance_id)
    assert runtime.verify_registration(pod)
    assert pod.instance_id in runtime.transport.sockmap
    assert node.counters.get("spright/sockmap_repairs") == 1


def test_verify_registration_rejects_unknown_pod():
    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="fn-1")])
    plane.deploy()
    pod = plane.deployments["fn-1"].pods[0]
    pod.fail()

    def driver(env):
        yield pod.terminate()

    node.env.process(driver(node.env))
    node.run(until=1.0)
    assert not plane.runtime.verify_registration(pod)


def test_supervised_restart_rewires_transport_end_to_end():
    node = WorkerNode()
    plane = SSprightDataplane(
        node,
        [FunctionSpec(name="fn-1", service_time=10e-6)],
        params=SprightParams(sanitize=True),
    )
    plane.deploy()
    deployment = plane.deployments["fn-1"]
    node.faults.register_deployment("fn-1", deployment)
    supervisor = PodSupervisor(
        node, policy=SupervisorPolicy(backoff_base=0.05, restart_cost_mean=0.1)
    )
    supervisor.watch(
        "fn-1",
        deployment,
        reclaimer=plane.runtime.reclaim_orphans,
        verifier=plane.runtime.verify_registration,
    )
    supervisor.start()
    node.faults.arm(crash_plan(at=0.05, target="fn-1"))
    node.run(until=5.0)
    assert node.counters.get("recovery/restored") == 1
    replacement = deployment.servable_pods()[0]
    assert replacement.instance_id in plane.runtime.transport.sockmap
    # The replacement serves traffic through the repaired plumbing.
    request_class = RequestClass(name="t", sequence=["fn-1"], payload_size=4)
    request = Request(
        request_class=request_class, payload=b"ping", created_at=node.env.now
    )
    node.env.process(plane.submit(request))
    node.run(until=6.0)
    assert request.response == b"ping"
    assert plane.runtime.pool.in_use_count == 0


# -- admission control --------------------------------------------------------------

def classed_request(name="c", priority=1, entry="frontend"):
    return Request(
        request_class=RequestClass(
            name=name, sequence=[entry], payload_size=8, priority=priority
        ),
        payload=b"x" * 8,
        created_at=0.0,
    )


def test_queue_limit_bounds_in_flight_per_entry():
    node = WorkerNode()
    controller = AdmissionController(
        node.env, AdmissionPolicy(queue_limit=2), counter=node.counters, scope="gw"
    )
    first, second, third = (classed_request() for _ in range(3))
    assert controller.try_admit(first) is None
    assert controller.try_admit(second) is None
    shed = controller.try_admit(third)
    assert isinstance(shed, ShedError)
    assert shed.kind == "shed" and not shed.retryable
    assert controller.in_flight("frontend") == 2
    assert node.counters.get("recovery/shed") == 1
    assert node.counters.get("recovery/shed/c") == 1
    controller.on_done(first)
    assert controller.try_admit(classed_request()) is None
    # Other entry functions have their own bound.
    assert controller.try_admit(classed_request(entry="checkout")) is None


def test_on_done_for_shed_request_holds_no_slot():
    node = WorkerNode()
    controller = AdmissionController(node.env, AdmissionPolicy(queue_limit=1))
    admitted = classed_request()
    rejected = classed_request()
    assert controller.try_admit(admitted) is None
    assert controller.try_admit(rejected) is not None
    controller.on_done(rejected)  # must not decrement the admitted slot
    assert controller.in_flight("frontend") == 1


def test_token_bucket_rate_limits_deterministically():
    node = WorkerNode()
    controller = AdmissionController(
        node.env, AdmissionPolicy(rate_limit=10.0, burst=2.0)
    )
    assert controller.try_admit(classed_request()) is None
    assert controller.try_admit(classed_request()) is None
    assert isinstance(controller.try_admit(classed_request()), ShedError)
    node.env._now = 0.1  # one token refilled at 10/s
    assert controller.try_admit(classed_request()) is None
    assert isinstance(controller.try_admit(classed_request()), ShedError)


def test_codel_degrades_and_sheds_lowest_priority_first():
    node = WorkerNode()
    policy = AdmissionPolicy(
        target_delay=0.01, delay_window=0.5, max_degrade_level=2
    )
    controller = AdmissionController(
        node.env, policy, counter=node.counters, scope="gw"
    )
    # A bad window: even the minimum sojourn exceeds the target.
    slow = classed_request()
    assert controller.try_admit(slow) is None
    node.env._now = 0.6
    controller.on_done(slow)
    assert controller.degrade_level == 1
    assert node.counters.get("recovery/degrade_ups") == 1

    # Priority 0 is shed first; higher tiers still flow.
    bulk = classed_request(name="bulk", priority=0)
    shed = controller.try_admit(bulk)
    assert isinstance(shed, ShedError) and "degradation" in str(shed)
    assert controller.try_admit(classed_request(name="mid", priority=1)) is None
    assert node.counters.get("recovery/shed/bulk") == 1

    # A good window de-escalates one level at a time.
    quick = classed_request()
    controller.try_admit(quick)
    node.env._now = 0.605
    controller.on_done(quick)  # window still open: no decision yet
    assert controller.degrade_level == 1
    late = classed_request()
    controller.try_admit(late)
    node.env._now = 1.2
    controller._observe_sojourn(0.001)
    assert controller.degrade_level == 0
    assert node.counters.get("recovery/degrade_downs") == 1


def test_codel_escalation_respects_max_degrade_level():
    node = WorkerNode()
    controller = AdmissionController(
        node.env, AdmissionPolicy(target_delay=0.001, max_degrade_level=1)
    )
    for round_index in range(1, 4):
        request = classed_request()
        controller.try_admit(request)
        node.env._now = round_index * 0.6
        controller.on_done(request)
    assert controller.degrade_level == 1  # capped


def test_plane_submit_sheds_with_typed_error_and_counter():
    node = WorkerNode()
    plane = SSprightDataplane(
        node,
        [FunctionSpec(name="fn-1", service_time=0.01)],
        params=SprightParams(sanitize=True),
    )
    plane.deploy()
    plane.use_admission(AdmissionPolicy(queue_limit=1))
    request_class = RequestClass(name="t", sequence=["fn-1"], payload_size=4)
    requests = [
        Request(request_class=request_class, payload=b"data", created_at=0.0)
        for _ in range(3)
    ]
    for request in requests:
        node.env.process(plane.submit(request))
    node.run(until=5.0)
    outcomes = [request.error.kind if request.failed else "ok" for request in requests]
    assert outcomes.count("shed") == 2 and outcomes.count("ok") == 1
    shed_requests = [r for r in requests if r.failed]
    assert all(r.completed_at is not None for r in shed_requests)
    assert node.counters.get("sspright/shed") == 2
    assert node.counters.get("recovery/shed") == 2
    assert plane.admission.in_flight("fn-1") == 0  # every admit was paired
    assert plane.runtime.pool.in_use_count == 0    # sheds never touched the pool


# -- byte-identity: disarmed recovery is free --------------------------------------

def boutique_latencies(**kwargs):
    from repro.experiments.common import run_closed_loop
    from repro.workloads import boutique

    result = run_closed_loop(
        "s-spright",
        boutique.spright_functions(),
        boutique.request_classes(),
        concurrency=16,
        duration=2.0,
        scale=0.05,
        **kwargs,
    )
    return result.recorder.latencies("")


def test_disarmed_recovery_is_byte_identical():
    baseline = boutique_latencies()
    inert = boutique_latencies(admission=AdmissionPolicy(), recovery=None)
    assert baseline == inert


def test_attached_supervisor_without_faults_is_byte_identical():
    # The supervisor's sweep finds nothing: no RNG draws, no counters, and
    # the latency stream is untouched.
    baseline = boutique_latencies()
    watched = boutique_latencies(recovery=SupervisorPolicy())
    assert baseline == watched


def test_motion_disarmed_recovery_is_byte_identical():
    from repro.experiments.motion_exp import run_motion

    baseline = run_motion("s-spright", duration=200.0)
    inert = run_motion("s-spright", duration=200.0, admission=AdmissionPolicy())
    assert baseline.recorder.latencies("") == inert.recorder.latencies("")


def test_audit_tables_unchanged_by_recovery_import():
    from repro.experiments import audits

    report = audits.format_report()
    assert "Kn total" in report and "SP total" in report
    assert "15" in report and "25" in report


def test_crash_storm_plan_registered_and_permanent():
    plan = load_plan("crash-storm")
    assert plan.name == "crash-storm"
    assert len(plan.faults) == 4
    assert all(spec.kind is FaultKind.POD_CRASH for spec in plan.faults)
    assert all(spec.duration is None for spec in plan.faults)


# -- end-to-end: crash storm leaves a healed, leak-free chain ----------------------

def test_recovery_boutique_smoke_heals_and_leaks_nothing():
    from repro.experiments import recovery_exp

    result = recovery_exp.run_recovery_boutique(
        "s-spright", scale=0.01, duration=7.0, drain=4.0
    )
    # Crashes at 2 s and 5 s land inside the 7 s horizon.
    assert result.crashes_detected >= 2
    assert result.restored == result.restarts >= 2
    assert result.mttr_mean_s > 0.0
    assert result.leaked_slots == 0
    assert result.completed > 0
    assert result.orphans_reclaimed == result.sanitizer_orphans
