"""Tests for workload definitions: boutique (Table 3), motion, parking."""

import json

import pytest

from repro.runtime import WorkerNode
from repro.workloads import ClosedLoopGenerator, WeightedMix, make_payload
from repro.workloads import boutique, motion, parking
from repro.workloads.generators import OpenLoopGenerator, TraceEvent
from repro.workloads.motion import MotionTraceParams, synthesize_motion_trace
from repro.workloads.parking import (
    ParkingTraceParams,
    make_snapshot,
    next_burst_times,
    synthesize_parking_trace,
)


# -- boutique ------------------------------------------------------------------

def test_table3_sequences_match_paper():
    classes = {cls.name: cls for cls in boutique.request_classes()}
    # Ch-1: GET "/" -> 1,2,1,3,1,4,1,2,1,10,1
    assert classes["Ch-1"].sequence == [
        "frontend", "currency", "frontend", "product-catalog", "frontend",
        "cart", "frontend", "currency", "frontend", "ad", "frontend",
    ]
    # Ch-2 is the single-function setCurrency call.
    assert classes["Ch-2"].sequence == ["frontend"]
    # Ch-6 (checkout) is the longest chain: 25 invocations.
    assert len(classes["Ch-6"].sequence) == 25
    assert classes["Ch-6"].sequence[1] == "checkout"


def test_boutique_has_ten_services():
    assert len(boutique.SERVICES) == 10
    names = {spec.name for spec in boutique.spright_functions()}
    assert names == set(boutique.SERVICES.values())


def test_go_port_carries_runtime_overhead_c_port_does_not():
    go = {spec.name: spec for spec in boutique.go_grpc_functions()}
    c = {spec.name: spec for spec in boutique.spright_functions()}
    for name in boutique.SERVICES.values():
        assert go[name].runtime_overhead_path > 0
        assert go[name].runtime_overhead_bg > 0
        assert c[name].runtime_overhead_path == 0
        assert c[name].service_time == go[name].service_time


def test_locust_think_time_range():
    node = WorkerNode()
    samples = [boutique.locust_think_time(node) for _ in range(200)]
    assert all(1.0 <= value <= 10.0 for value in samples)
    assert 4.0 < sum(samples) / len(samples) < 7.0


def test_catalog_behavior_serves_items():
    result = boutique._catalog_behavior(b"", {})
    items = json.loads(result.payload)
    assert len(items) == 8


def test_cart_behavior_accumulates_state():
    context = {}
    for _ in range(3):
        result = boutique._cart_behavior(b"\x01\x02\x03\x04\x05\x06\x07\x08", context)
    assert json.loads(result.payload)["items"] == 3


# -- motion ----------------------------------------------------------------------

def test_motion_trace_is_sorted_and_bounded():
    node = WorkerNode()
    params = MotionTraceParams(duration=1200.0)
    trace = synthesize_motion_trace(node, params)
    times = [event.time for event in trace]
    assert times == sorted(times)
    assert all(0 <= t < params.duration for t in times)
    assert len(trace) > 10


def test_motion_trace_has_long_idle_gaps():
    """The cold-start experiment needs gaps exceeding the 30 s grace period."""
    node = WorkerNode()
    trace = synthesize_motion_trace(node, MotionTraceParams(duration=3600.0))
    times = [event.time for event in trace]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert max(gaps) > 30.0


def test_motion_trace_deterministic_per_seed():
    node_a = WorkerNode()
    node_b = WorkerNode()
    params = MotionTraceParams(duration=600.0)
    trace_a = synthesize_motion_trace(node_a, params)
    trace_b = synthesize_motion_trace(node_b, params)
    assert [e.time for e in trace_a] == [e.time for e in trace_b]


def test_sensor_behavior_routes_to_actuate_topic():
    result = motion._sensor_behavior(
        json.dumps({"sensor": 3, "motion": True}).encode(), {}
    )
    assert result.topic == "actuate"
    command = json.loads(result.payload)
    assert command["on"] is True


def test_actuator_behavior_updates_lights():
    context = {}
    motion._actuator_behavior(json.dumps({"light": "3", "on": True}).encode(), context)
    assert context["lights"]["3"] is True


def test_motion_service_times_are_1ms():
    for spec in motion.motion_functions():
        assert spec.service_time == pytest.approx(1e-3)


# -- parking -----------------------------------------------------------------------

def test_table4_service_times():
    assert parking.SERVICE_TIMES["plate-detection"] == pytest.approx(0.435)
    assert parking.SERVICE_TIMES["plate-search"] == pytest.approx(0.020)
    assert parking.SERVICE_TIMES["plate-index"] == pytest.approx(0.001)
    assert parking.SERVICE_TIMES["persist-metadata"] == pytest.approx(0.010)
    assert parking.SERVICE_TIMES["charging"] == pytest.approx(0.050)


def test_parking_chain_sequences_match_table4():
    classes = parking.parking_request_classes()
    assert classes["Ch-1"].sequence == [
        "plate-detection", "plate-search", "plate-index",
        "persist-metadata", "charging",
    ]
    assert classes["Ch-2"].sequence == [
        "plate-detection", "plate-search", "charging",
    ]


def test_snapshot_is_3kb_with_embedded_plate():
    snapshot = make_snapshot("CA0042")
    assert len(snapshot) == parking.SNAPSHOT_BYTES
    assert b"PLATE:CA0042" in snapshot


def test_parking_trace_bursts_every_240s():
    node = WorkerNode()
    params = ParkingTraceParams(duration=700.0)
    trace = synthesize_parking_trace(node, params)
    # 3 bursts (t=0, 240, 480) x 164 spots.
    assert len(trace) == 3 * 164
    bursts = next_burst_times(params)
    assert bursts == [0.0, 240.0, 480.0]
    # Each event lies within its burst's sweep window.
    for event in trace:
        offset = event.time % params.interval
        assert offset <= params.burst_spread + 1e-9


def test_detection_behavior_extracts_plate():
    result = parking._detection_behavior(make_snapshot("XY1234"), {})
    assert json.loads(result.payload)["plate"].strip() == "XY1234"


def test_persist_then_search_marks_known():
    context = {}
    record = json.dumps({"plate": "AA1"}).encode()
    first = parking._search_behavior(record, context)
    assert json.loads(first.payload)["known"] is False
    parking._persist_behavior(record, context)
    second = parking._search_behavior(record, context)
    assert json.loads(second.payload)["known"] is True


def test_charging_behavior_bills_cumulatively():
    context = {}
    record = json.dumps({"plate": "AA1"}).encode()
    parking._charging_behavior(record, context)
    result = parking._charging_behavior(record, context)
    assert json.loads(result.payload)["charged"] == pytest.approx(5.0)


# -- generators --------------------------------------------------------------------

def test_make_payload_sizes():
    assert make_payload(0) == b""
    assert len(make_payload(100)) == 100
    assert len(make_payload(7, fill=b"abc")) == 7


def test_weighted_mix_requires_classes():
    with pytest.raises(ValueError):
        WeightedMix([])


def test_weighted_mix_respects_weights():
    from repro.dataplane.base import RequestClass

    node = WorkerNode()
    heavy = RequestClass(name="heavy", sequence=["f"], weight=9.0)
    light = RequestClass(name="light", sequence=["f"], weight=1.0)
    mix = WeightedMix([heavy, light])
    picks = [mix.pick(node).name for _ in range(500)]
    assert picks.count("heavy") > 350


def test_open_loop_generator_respects_timestamps():
    from repro.dataplane import SSprightDataplane
    from repro.dataplane.base import RequestClass
    from repro.runtime import FunctionSpec
    from repro.stats import LatencyRecorder

    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="f", service_time=1e-5)])
    plane.deploy()
    request_class = RequestClass(name="t", sequence=["f"], payload_size=16)
    trace = [TraceEvent(time=t, request_class=request_class) for t in (0.5, 1.5, 2.5)]
    recorder = LatencyRecorder()
    OpenLoopGenerator(node, plane, trace, recorder).start()
    node.run(until=5.0)
    completions = sorted(t for t, _ in recorder._samples[""])
    assert len(completions) == 3
    assert completions[0] == pytest.approx(0.5, abs=0.05)
    assert completions[2] == pytest.approx(2.5, abs=0.05)


def test_closed_loop_warmup_excludes_early_samples():
    from repro.dataplane import SSprightDataplane
    from repro.dataplane.base import RequestClass
    from repro.runtime import FunctionSpec
    from repro.stats import LatencyRecorder

    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="f", service_time=1e-5)])
    plane.deploy()
    recorder = LatencyRecorder()
    generator = ClosedLoopGenerator(
        node,
        plane,
        WeightedMix([RequestClass(name="t", sequence=["f"], payload_size=16)]),
        recorder,
        concurrency=2,
        duration=2.0,
        client_overhead=0.01,
        warmup=1.0,
    )
    generator.start()
    node.run(until=2.0)
    assert generator.requests_sent > recorder.count("")
    assert all(t >= 1.0 for t, _ in recorder._samples[""])


def test_weighted_mix_rejects_negative_weight():
    from repro.dataplane.base import RequestClass

    bad = RequestClass(name="bad", sequence=["f"], weight=-0.5)
    good = RequestClass(name="good", sequence=["f"], weight=1.0)
    with pytest.raises(ValueError, match="bad"):
        WeightedMix([good, bad])


def test_weighted_mix_rejects_zero_total_weight():
    from repro.dataplane.base import RequestClass

    zero = RequestClass(name="zero", sequence=["f"], weight=0.0)
    with pytest.raises(ValueError, match="positive total"):
        WeightedMix([zero, zero])
    with pytest.raises(ValueError):
        WeightedMix([])


def test_open_loop_accepts_streaming_iterator():
    from repro.dataplane import SSprightDataplane
    from repro.runtime import FunctionSpec
    from repro.stats import LatencyRecorder
    from repro.dataplane.base import RequestClass

    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="f", service_time=1e-5)])
    plane.deploy()
    cls = RequestClass(name="t", sequence=["f"], payload_size=16)
    stream = (TraceEvent(time=0.1 * i, request_class=cls) for i in range(25))
    generator = OpenLoopGenerator(node, plane, stream, LatencyRecorder())
    assert generator.streaming
    generator.start()
    node.run(until=10.0)
    assert generator.submitted == 25


def test_open_loop_streaming_rejects_time_travel():
    from repro.dataplane import SSprightDataplane
    from repro.runtime import FunctionSpec
    from repro.stats import LatencyRecorder
    from repro.dataplane.base import RequestClass
    from repro.workloads import NonMonotonicTraceError

    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="f", service_time=1e-5)])
    plane.deploy()
    cls = RequestClass(name="t", sequence=["f"], payload_size=16)

    def stream():
        yield TraceEvent(time=5.0, request_class=cls)
        yield TraceEvent(time=4.0, request_class=cls)

    generator = OpenLoopGenerator(node, plane, stream(), LatencyRecorder())
    generator.start()
    with pytest.raises(NonMonotonicTraceError):
        node.run(until=10.0)
