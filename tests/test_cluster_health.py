"""Tests for multi-node clusters, health probing, and vertical scaling."""

import pytest

from repro.dataplane import SSprightDataplane
from repro.dataplane.base import Request, RequestClass
from repro.runtime import (
    Cluster,
    ClusterError,
    ClusterIngress,
    FunctionSpec,
    HealthProber,
    Kubelet,
    ProbePolicy,
    VerticalPodScaler,
    VerticalScalePolicy,
    WorkerNode,
    fragmentation_report,
    sequential_chain,
)


def chain_spec():
    return sequential_chain(
        "pipeline",
        [
            FunctionSpec(name="fn-1", service_time=10e-6),
            FunctionSpec(name="fn-2", service_time=10e-6),
        ],
    )


def plane_factory(node):
    counter = getattr(plane_factory, "_counter", 0)
    plane_factory._counter = counter + 1
    return SSprightDataplane(
        node,
        [
            FunctionSpec(name="fn-1", service_time=10e-6),
            FunctionSpec(name="fn-2", service_time=10e-6),
        ],
        chain_name=f"pipeline-{node.name}-{counter}",
    )


# -- cluster --------------------------------------------------------------------

def test_cluster_nodes_share_one_clock():
    cluster = Cluster(node_count=3)
    assert len(cluster.nodes) == 3
    assert all(node.env is cluster.env for node in cluster.nodes)
    assert len({node.name for node in cluster.nodes}) == 3


def test_cluster_requires_nodes():
    with pytest.raises(ClusterError):
        Cluster(node_count=0)


def test_chain_units_placed_one_per_node():
    cluster = Cluster(node_count=2)
    ingress = ClusterIngress(cluster)
    units = ingress.deploy_chain_units(chain_spec(), plane_factory)
    assert len(units) == 2
    assert {unit.node.name for unit in units} == {"worker-1", "worker-2"}
    report = fragmentation_report(cluster)
    assert report["chains_per_node"] == {"worker-1": 1, "worker-2": 1}


def test_too_many_replicas_rejected():
    cluster = Cluster(node_count=1)
    ingress = ClusterIngress(cluster)
    with pytest.raises(ClusterError, match="replicas"):
        ingress.deploy_chain_units(chain_spec(), plane_factory, replicas=2)


def test_ingress_balances_across_units():
    cluster = Cluster(node_count=2)
    ingress = ClusterIngress(cluster, policy="least_loaded")
    ingress.deploy_chain_units(chain_spec(), plane_factory)
    request_class = RequestClass(name="t", sequence=["fn-1", "fn-2"], payload_size=64)

    def client(env):
        for _ in range(10):
            request = Request(
                request_class=request_class, payload=b"x" * 64, created_at=env.now
            )
            yield env.process(ingress.submit(request))

    # Concurrent clients so in-flight counts actually differ at pick time.
    for _ in range(4):
        cluster.env.process(client(cluster.env))
    cluster.run(until=5.0)
    served = [unit.served for unit in ingress.units]
    assert sum(served) == 40
    assert all(count > 0 for count in served)


def test_round_robin_policy_alternates():
    cluster = Cluster(node_count=2)
    ingress = ClusterIngress(cluster, policy="round_robin")
    ingress.deploy_chain_units(chain_spec(), plane_factory)
    picks = [ingress.pick_unit() for _ in range(4)]
    assert picks[0] is not picks[1]
    assert picks[0] is picks[2]


def test_unknown_policy_rejected():
    with pytest.raises(ClusterError, match="policy"):
        ClusterIngress(Cluster(node_count=1), policy="random")


def test_ingress_skips_unservable_unit_and_recovers():
    """Crashing every pod of one unit's function pulls the whole chain unit
    out of rotation; recovery puts it back (the fault-injection satellite)."""
    cluster = Cluster(node_count=2)
    ingress = ClusterIngress(cluster, policy="least_loaded")
    units = ingress.deploy_chain_units(chain_spec(), plane_factory)
    cluster.run(until=0.01)
    victim = units[0]
    downed = [
        pod
        for deployment in victim.plane.deployments.values()
        for pod in deployment.servable_pods()
    ]
    assert downed and ClusterIngress.unit_servable(victim)
    for pod in downed:
        pod.fail()
    assert not ClusterIngress.unit_servable(victim)
    picks = {id(ingress.pick_unit()) for _ in range(8)}
    assert picks == {id(units[1])}
    for pod in downed:
        pod.recover()
    assert ClusterIngress.unit_servable(victim)
    # Back in rotation: least_loaded at zero in-flight prefers list order.
    assert id(ingress.pick_unit()) == id(victim)


def test_ingress_falls_back_when_every_unit_down():
    cluster = Cluster(node_count=2)
    ingress = ClusterIngress(cluster, policy="round_robin")
    units = ingress.deploy_chain_units(chain_spec(), plane_factory)
    cluster.run(until=0.01)
    for unit in units:
        for deployment in unit.plane.deployments.values():
            for pod in deployment.servable_pods():
                pod.fail()
    assert all(not ClusterIngress.unit_servable(unit) for unit in units)
    # Degraded but not crashing: picks fall back to the full unit list.
    assert ingress.pick_unit() in units


# -- health probing ----------------------------------------------------------------

def make_probed_deployment(interval=1.0):
    node = WorkerNode()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    deployment = kubelet.deployment(
        FunctionSpec(name="f", min_scale=2, max_scale=4), "t/fn/f"
    )
    deployment.scale_to(2)
    prober = HealthProber(
        node, ProbePolicy(interval=interval, failure_threshold=2)
    )
    prober.watch(deployment)
    prober.start()
    node.run(until=0.01)
    return node, deployment, prober


def test_prober_keeps_healthy_pods_servable():
    node, deployment, prober = make_probed_deployment()
    node.run(until=10.0)
    assert prober.probes_sent > 0
    assert prober.pods_marked_down == 0
    assert len(deployment.servable_pods()) == 2


def test_failed_pod_leaves_rotation_and_recovers():
    node, deployment, prober = make_probed_deployment()
    victim = deployment.servable_pods()[0]

    def inject(env):
        yield env.timeout(2.0)
        victim.fail()
        yield env.timeout(10.0)
        victim.recover()  # fault clears; prober confirms

    node.env.process(inject(node.env))
    node.run(until=5.0)
    assert not victim.is_servable
    assert victim not in deployment.servable_pods()
    assert prober.pods_marked_down == 1
    node.run(until=20.0)
    assert victim.is_servable


def test_failed_pod_excluded_from_dfr_routing():
    node = WorkerNode()
    plane = SSprightDataplane(
        node,
        [FunctionSpec(name="f", service_time=10e-6, min_scale=2, max_scale=2)],
    )
    plane.deploy()
    node.run(until=0.01)
    pods = plane.deployments["f"].servable_pods()
    pods[0].fail()
    picks = {plane.runtime.routing.pick_instance("f").instance_id for _ in range(10)}
    assert picks == {pods[1].instance_id}


# -- vertical scaling --------------------------------------------------------------

def test_vertical_scaler_grows_saturated_pod():
    node = WorkerNode()
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    deployment = kubelet.deployment(
        FunctionSpec(name="f", concurrency=8, min_scale=1), "t/fn/f"
    )
    deployment.scale_to(1)
    node.run(until=0.01)
    pod = deployment.servable_pods()[0]
    scaler = VerticalPodScaler(
        node, VerticalScalePolicy(tick_interval=1.0, step=8, min_concurrency=8)
    )
    scaler.watch(deployment)
    scaler.start()
    pod.in_flight = 8  # saturated
    node.run(until=2.5)
    assert scaler.scale_ups >= 1
    assert scaler.capacity_of(pod) > 8
    pod.in_flight = 0  # idle again
    node.run(until=10.0)
    assert scaler.scale_downs >= 1
    assert scaler.capacity_of(pod) == 8


def test_pod_resize_unblocks_waiters():
    node = WorkerNode()
    kubelet = Kubelet(node, cold_start_enabled=False)
    pod = kubelet.create_pod(
        FunctionSpec(name="f", service_time=0.05, service_time_cv=0.0, concurrency=1),
        cpu_tag="t/fn/f",
    )
    done = []

    def client(env, name):
        yield pod.ready
        yield env.process(pod.serve(b"x"))
        done.append((name, round(env.now, 3)))

    node.env.process(client(node.env, "a"))
    node.env.process(client(node.env, "b"))

    def grow(env):
        yield env.timeout(0.01)
        pod.resize(2)  # second request now runs concurrently

    node.env.process(grow(node.env))
    node.run(until=1.0)
    assert len(done) == 2
    # Both finished near t=0.05/0.06, not serialized to 0.10.
    assert done[1][1] < 0.09
