"""Integration tests for the SPRIGHT chain runtime: zero-copy, DFR,
security domains, load balancing, metrics, and the D-SPRIGHT transport."""

import pytest

from repro.dataplane import (
    DSprightDataplane,
    Request,
    RequestClass,
    SprightParams,
    SSprightDataplane,
)
from repro.dataplane.spright import GATEWAY_INSTANCE_ID, filter_key
from repro.mem import IsolationError
from repro.runtime import FunctionSpec, MetricsServer, WorkerNode


def deploy_chain(plane_cls=SSprightDataplane, functions=None, **kwargs):
    node = WorkerNode()
    functions = functions or [
        FunctionSpec(name="fn-1", service_time=10e-6),
        FunctionSpec(name="fn-2", service_time=10e-6),
    ]
    plane = plane_cls(node, functions, **kwargs)
    plane.deploy()
    return node, plane


def run_requests(node, plane, count=3, sequence=("fn-1", "fn-2"), payload=b"hello"):
    request_class = RequestClass(name="t", sequence=list(sequence), payload_size=len(payload))
    requests = []

    def driver(env):
        for _ in range(count):
            request = Request(
                request_class=request_class, payload=payload, created_at=env.now
            )
            requests.append(request)
            yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=10.0)
    return requests


def test_request_flows_through_chain_and_returns_payload():
    node, plane = deploy_chain()
    requests = run_requests(node, plane, payload=b"ping")
    assert all(request.response == b"ping" for request in requests)
    assert all(request.completed_at is not None for request in requests)


def test_payload_written_to_pool_exactly_once_per_request():
    """Zero-copy: one gateway write-in plus one in-place write per function."""
    node, plane = deploy_chain()
    run_requests(node, plane, count=4)
    stats = plane.runtime.pool.stats
    # 1 gateway write + 2 function in-place updates per request.
    assert stats.writes == 4 * 3
    assert stats.allocs == 4
    assert stats.frees == 4
    assert plane.runtime.pool.in_use_count == 0


def test_descriptors_counted_by_sproxy_metrics_program():
    node, plane = deploy_chain()
    run_requests(node, plane, count=5)
    metrics = plane.runtime.transport.metrics_map
    # 3 hops per request (gw->fn1, fn1->fn2, fn2->gw), counted in-kernel.
    assert metrics.lookup(0) == 5 * 3


def test_sockmap_contains_gateway_and_pods():
    node, plane = deploy_chain()
    node.run(until=0.01)
    sockmap = plane.runtime.transport.sockmap
    assert GATEWAY_INSTANCE_ID in sockmap
    assert len(sockmap) == 3  # gateway + 2 pods


def test_dfr_topic_routing_without_sequences():
    """Pub/sub mode: the routing table, not the message, picks next hops."""
    from repro.runtime import ENTRY, RESPONSE, FunctionResult

    def topic_behavior(payload, context):
        return FunctionResult(payload=payload + b"|routed", topic="hot")

    node = WorkerNode()
    functions = [
        FunctionSpec(name="classify", service_time=5e-6, behavior=topic_behavior),
        FunctionSpec(name="hot-path", service_time=5e-6),
    ]
    routes = {
        (ENTRY, ""): "classify",
        ("classify", "hot"): "hot-path",
        ("hot-path", ""): RESPONSE,
    }
    plane = SSprightDataplane(node, functions, routes=routes)
    plane.deploy()
    plane.runtime.routing.load_routes(routes)

    from repro.dataplane.spright.chain import SprightMessage
    from repro.simcore import Event

    results = {}

    def driver(env):
        runtime = plane.runtime
        handle = runtime.pool.alloc()
        runtime.pool.write(handle, b"event")
        message = SprightMessage(
            handle=handle,
            trace=None,
            request=None,
            done=Event(env),
            remaining=None,  # topic-driven
            topic="",
        )
        yield env.process(
            _dispatch(runtime, message, "classify", plane.deployments["classify"])
        )
        response = yield message.done
        results["response"] = response

    def _dispatch(runtime, message, head, deployment):
        yield from runtime.dispatch(message, head, deployment)

    node.env.process(driver(node.env))
    node.run(until=5.0)
    assert results["response"] == b"event|routed"
    assert plane.runtime.routing.lookups >= 2


def test_security_domain_rules_installed_per_pod():
    node, plane = deploy_chain()
    node.run(until=0.01)
    security = plane.runtime.security
    pods = [
        pod
        for deployment in plane.deployments.values()
        for pod in deployment.servable_pods()
    ]
    assert len(pods) == 2
    for pod in pods:
        assert security.is_allowed(GATEWAY_INSTANCE_ID, pod.instance_id)
        assert security.is_allowed(pod.instance_id, GATEWAY_INSTANCE_ID)
    assert security.is_allowed(pods[0].instance_id, pods[1].instance_id)


def test_unauthorized_descriptor_dropped_by_filter_program():
    """A foreign sender id is refused by the in-kernel filter (§3.4)."""
    node, plane = deploy_chain()
    node.run(until=0.01)
    runtime = plane.runtime
    pods = plane.deployments["fn-2"].servable_pods()
    target = pods[0]

    # Craft a descriptor from a sender that has no filter rule.
    from repro.kernel.ebpf import SK_DROP, Scratch, programs

    foreign_sender = 999
    ctx = programs.encode_descriptor_ctx(
        next_fn_id=target.instance_id,
        shm_offset=0,
        payload_len=16,
        sender_id=foreign_sender,
    )
    endpoint = runtime._endpoints[target.instance_id]
    scratch = Scratch(map_registry=node.map_registry)
    run = endpoint.hook.fire(data=ctx, scratch=scratch)
    assert run.verdict == SK_DROP
    assert scratch.redirect_endpoint is None


def test_cross_chain_pool_attach_is_refused():
    node = WorkerNode()
    plane_a = SSprightDataplane(
        node, [FunctionSpec(name="fa", service_time=0.0)], chain_name="chain-a"
    )
    plane_a.deploy()
    plane_b = SSprightDataplane(
        node, [FunctionSpec(name="fb", service_time=0.0)], chain_name="chain-b"
    )
    plane_b.deploy()
    with pytest.raises(IsolationError):
        node.pools.attach(
            plane_a.runtime.pool.name, plane_b.runtime.manager.file_prefix
        )


def test_security_disabled_uses_plain_redirect():
    node, plane = deploy_chain(params=SprightParams(security_enabled=False))
    assert plane.runtime.security is None
    requests = run_requests(node, plane)
    assert all(request.response == b"hello" for request in requests)


def test_dspright_transport_delivers_via_rings():
    node, plane = deploy_chain(plane_cls=DSprightDataplane)
    requests = run_requests(node, plane, count=4)
    assert all(request.response == b"hello" for request in requests)
    rings = plane.runtime.manager.memory.rings
    assert len(rings) == 3  # gateway + 2 pods
    assert sum(ring.enqueued for ring in rings.values()) == 4 * 3


def test_dspright_burns_poll_cores_when_idle():
    node, plane = deploy_chain(plane_cls=DSprightDataplane)
    node.run(until=10.5)
    # Gateway spin: ~2 cores; each fn pod ~1 core, with zero traffic.
    gw = node.cpu_percent_prefix("dspright/gw/", 10.0)
    fn = node.cpu_percent_prefix("dspright/fn", 10.0)
    assert gw > 180.0
    assert fn > 180.0


def test_sspright_idle_cpu_is_zero():
    node, plane = deploy_chain()
    node.run(until=10.0)
    assert node.cpu_percent_prefix("sspright/", 10.0) < 1.0


def test_metrics_agent_reports_to_metrics_server():
    node = WorkerNode()
    metrics = MetricsServer()
    plane = SSprightDataplane(
        node,
        [FunctionSpec(name="fn-1", service_time=10e-6)],
        metrics_server=metrics,
    )
    plane.deploy()
    run_requests(node, plane, count=10, sequence=("fn-1",))
    node.run(until=20.0)
    assert metrics.reports_received > 0
    history = metrics.history(plane.chain_name)
    assert any(sample.request_rate > 0 for sample in history)


def test_residual_capacity_lb_spreads_load_across_pods():
    node = WorkerNode()
    spec = FunctionSpec(
        name="fn-1", service_time=200e-6, min_scale=3, max_scale=3, concurrency=2
    )
    plane = SSprightDataplane(node, [spec])
    plane.deploy()
    run_requests(node, plane, count=30, sequence=("fn-1",))
    pods = plane.deployments["fn-1"].servable_pods()
    served = [pod.served for pod in pods]
    assert sum(served) == 30
    assert min(served) > 0  # every pod took a share


def test_filter_key_packing():
    assert filter_key(1, 2) == (1 << 16) | 2
    with pytest.raises(ValueError):
        filter_key(70000, 0)


def test_overload_shedding_with_queue_limit():
    """A bounded broker queue sheds excess load as failed (503) requests."""
    from repro.dataplane import KnativeDataplane, KnativeParams
    from repro.stats import LatencyRecorder
    from repro.workloads import ClosedLoopGenerator, WeightedMix

    node = WorkerNode()
    plane = KnativeDataplane(
        node,
        [FunctionSpec(name="f", service_time=5e-3, service_time_cv=0.0)],
        params=KnativeParams(
            broker_pinned_cores=1, broker_path_cpu=2e-3, broker_queue_limit=4
        ),
    )
    plane.deploy()
    recorder = LatencyRecorder()
    generator = ClosedLoopGenerator(
        node,
        plane,
        WeightedMix([RequestClass(name="t", sequence=["f"], payload_size=64)]),
        recorder,
        concurrency=64,
        duration=1.0,
        client_overhead=0.0001,
    )
    generator.start()
    node.run(until=1.0)
    drops = node.counters.get("kn/overload_drops")
    assert drops > 0
    assert plane.broker.shed == drops
    assert generator.requests_failed == drops
    # Successful requests still complete and are the only ones recorded.
    assert recorder.count("") == plane.requests_completed - 0
    assert recorder.count("") > 0
