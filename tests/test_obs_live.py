"""Live observability plane tests: SSE wire format, sink passivity, server.

The byte-identity test is the contract that makes the dashboard safe to
attach anywhere: a run observed by a LiveSink produces exactly the same
tables, summaries, and counters as a headless run.
"""

import json
import queue
import socket
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.obs.live import (
    DashboardServer,
    LiveSink,
    SseBroker,
    heartbeat_comment,
    sse_frame,
    stream_frames,
)
from repro.obs.profiler import CpuProfiler
from repro.obs.slo import SloTarget
from repro.runtime import WorkerNode
from repro.simcore import Environment
from repro.stats.tracing import span_waterfall_rows

GOLDEN_FOLDED = Path(__file__).parent / "goldens" / "profiler.folded.txt"


# -- SSE framing --------------------------------------------------------------

def test_sse_frame_basic():
    assert sse_frame("hello") == "data: hello\n\n"
    assert sse_frame("hello", event="snapshot") == (
        "event: snapshot\ndata: hello\n\n"
    )
    assert sse_frame("x", event="e", id="7") == "event: e\nid: 7\ndata: x\n\n"


def test_sse_frame_multiline_data():
    # The spec's multi-line encoding: one data: field per line.
    assert sse_frame("a\nb\nc") == "data: a\ndata: b\ndata: c\n\n"
    assert sse_frame("") == "data: \n\n"


def test_heartbeat_is_a_comment_frame():
    frame = heartbeat_comment()
    assert frame.startswith(":")
    assert frame.endswith("\n\n")


def test_stream_frames_counts_data_frames_and_stops_on_sentinel():
    frames: "queue.Queue" = queue.Queue()
    frames.put(sse_frame("one"))
    frames.put(sse_frame("two", event="snapshot"))
    frames.put(None)  # broker close sentinel
    chunks = []
    written = stream_frames(frames, chunks.append, heartbeat_s=1.0)
    assert written == 2
    text = b"".join(chunks).decode()
    assert text.count("\n\n") == 2
    assert "event: snapshot" in text


def test_stream_frames_emits_heartbeat_when_idle():
    frames: "queue.Queue" = queue.Queue()
    chunks = []

    def write(chunk):
        chunks.append(chunk)
        if len(chunks) >= 2:
            raise BrokenPipeError  # stop the loop after two heartbeats

    written = stream_frames(frames, write, heartbeat_s=0.01)
    assert written == 0  # heartbeats are comments, not data frames
    assert all(chunk.startswith(b":") for chunk in chunks)


def test_stream_frames_stops_on_client_disconnect_mid_stream():
    frames: "queue.Queue" = queue.Queue()
    for index in range(5):
        frames.put(sse_frame(f"frame-{index}"))
    writes = []

    def write(chunk):
        if len(writes) == 2:
            raise ConnectionResetError  # client went away mid-stream
        writes.append(chunk)

    written = stream_frames(frames, write, heartbeat_s=1.0)
    assert written == 2
    assert frames.qsize() == 2  # remaining frames undelivered, loop exited


def test_broker_fans_out_and_drops_oldest_when_full():
    broker = SseBroker(queue_depth=2)
    first = broker.subscribe()
    second = broker.subscribe()
    assert broker.client_count == 2
    for index in range(5):
        broker.publish(f"p{index}")
    # Depth 2, drop-oldest: each client holds only the newest two frames.
    assert [first.get_nowait(), first.get_nowait()] == [
        sse_frame("p3"),
        sse_frame("p4"),
    ]
    broker.unsubscribe(first)
    broker.close()
    drained = []
    while True:
        frame = second.get_nowait()
        if frame is None:
            break
        drained.append(frame)
    assert drained[-1] == sse_frame("p4")
    assert broker.frames_published == 5


# -- the passive observer hook ------------------------------------------------

def test_environment_observer_sees_every_event():
    env = Environment()
    seen = []
    env.add_observer(seen.append)
    env.timeout(1.0)
    env.timeout(2.0)
    env.run(until=3.0)
    assert seen == [1.0, 2.0]
    assert env.events_processed == 2
    env.remove_observer(seen.append)
    env.timeout(1.0)
    env.run(until=5.0)
    assert seen == [1.0, 2.0]
    assert env.events_processed == 3


def test_live_attached_run_is_byte_identical_to_headless():
    """The tentpole contract: observing a run changes nothing about it."""
    from repro.experiments.common import run_closed_loop
    from repro.workloads import boutique

    def one_run():
        result = run_closed_loop(
            "s-spright",
            boutique.spright_functions(),
            boutique.request_classes(),
            concurrency=4,
            duration=1.0,
            scale=0.05,
            audit=True,
        )
        return (
            result.auditor.table().render(),
            result.recorder.summary("").as_dict(),
            result.node.counters.as_dict(),
        )

    headless = one_run()
    sink = LiveSink(interval=0.01, wall_interval=0.0)
    client = sink.broker.subscribe()
    obs.set_default_live_sink(sink)
    try:
        observed = one_run()
    finally:
        obs.set_default_live_sink(None)
        sink.detach_all()
    assert sink.snapshots_built > 10  # the sink really was observing
    assert not client.empty()         # and publishing over SSE
    assert headless == observed


def test_sink_snapshot_sections_and_events_feed():
    sink = LiveSink(interval=0.01, wall_interval=0.0)
    node = WorkerNode()
    sink.attach(node.obs)
    sink.attach(node.obs)  # idempotent
    assert len(sink._bundles) == 1
    node.counters.incr("recovery/restarts")
    node.counters.incr("ops/s-spright/copy", 5)
    node.obs.registry.gauge("autoscale/fn/request_rate").set(12.5)
    hist = node.obs.registry.histogram("latency/fn", bounds=(0.1, 0.2, 0.4))
    for _ in range(10):
        hist.observe(0.15)
    snapshot = sink.tick(1.0)
    assert snapshot["schema"] == "spright.live/1"
    metrics = snapshot["metrics"]["nodes"][0]
    assert metrics["name"] == "worker-1"
    assert metrics["counters"]["ops/s-spright/copy"] == 5
    assert metrics["gauges"]["autoscale/fn/request_rate"] == 12.5
    assert 0.1 <= metrics["histograms"]["latency/fn"]["p99"] <= 0.2
    events = snapshot["events"]["recent"]
    assert [event["name"] for event in events] == ["recovery/restarts"]
    assert events[0]["delta"] == 1
    # Deltas only surface once; a later tick adds nothing new.
    assert sink.tick(2.0)["events"]["recent"] == events
    assert sink.section("metrics")["schema"] == "spright.live.metrics/1"
    assert sink.events_snapshot()["dropped"] == 0


def test_sink_slo_section_pairs_latency_histograms_with_targets():
    sink = LiveSink(interval=0.01, wall_interval=0.0)
    node = WorkerNode()
    sink.attach(node.obs)
    hist = node.obs.registry.histogram("latency/frontend", bounds=(0.1, 0.3))
    for _ in range(20):
        hist.observe(0.05)
    monitor = sink.slo.add_target(
        SloTarget("frontend", objective=0.9, latency_threshold_s=0.3)
    )
    monitor.record(0.5, good=18, bad=2)
    section = sink.tick(1.0)["slo"]
    (target,) = section["targets"]
    assert target["name"] == "frontend"
    assert target["attainment"] == pytest.approx(0.9)
    assert target["p99_s"] is not None


def test_sink_finalize_marks_snapshot_complete():
    sink = LiveSink(interval=0.01, wall_interval=0.0)
    node = WorkerNode()
    sink.attach(node.obs)
    client = sink.broker.subscribe()
    snapshot = sink.finalize(now=2.5)
    assert snapshot["complete"] is True
    frame = client.get_nowait()
    assert frame.startswith("event: complete\n")


def test_sink_openmetrics_merges_nodes_with_one_eof():
    sink = LiveSink(interval=0.01, wall_interval=0.0)
    env = Environment()
    first = WorkerNode(env=env, name="worker-1")
    second = WorkerNode(env=env, name="worker-2")
    sink.attach(first.obs)
    sink.attach(second.obs)
    first.counters.incr("ops/s-spright/copy", 3)
    second.counters.incr("ops/s-spright/copy", 4)
    text = sink.openmetrics()
    assert text.count("# EOF") == 1
    assert text.endswith("# EOF\n")
    assert 'node="worker-1"' in text and 'node="worker-2"' in text


# -- span waterfalls (clamped stamps + event markers) -------------------------

def _traced_request(tracer, env):
    class _Request:
        created_at = env.now
        span = None

    request = _Request()
    tracer.start_request(request, "req frontend: s-spright")
    return request


def test_span_waterfall_rows_clamp_out_of_order_and_mark_events():
    env = Environment()
    from repro.obs.span import Tracer

    tracer = Tracer(env)
    request = _traced_request(tracer, env)
    env._now = 0.001
    tracer.on_mark(request, "gw-in", 0.001)
    # A fault-injection retry: an EVENT_MILESTONES marker at t=0.0015.
    env._now = 0.0015
    tracer.on_mark(request, "retry:frontend", 0.0015)
    # An out-of-order stamp: earlier than the previous milestone.
    tracer.on_mark(request, "warped", 0.0005)
    env._now = 0.002
    tracer.finish_request(request)
    root = request.span
    children = [
        span for span in tracer.finished_spans() if span.parent == root.sid
    ]
    rows = span_waterfall_rows(root, children)
    by_name = {row["name"]: row for row in rows}
    # The clamped milestone renders as a "!" marker, never a fake bar.
    warped = by_name["warped"]
    assert warped["out_of_order"] and warped["marker"] == "!"
    assert warped["duration_s"] == 0.0
    # The retry event span is a zero-width "!" marker row of kind event.
    retry = by_name["retry:frontend"]
    assert retry["kind"] == "event"
    assert retry["marker"] == "!"
    assert retry["width_frac"] == 0.0
    assert retry["start_s"] == pytest.approx(0.0015)
    # Real phases keep "#" markers, and all geometry stays inside [0, 1].
    assert by_name["gw-in"]["marker"] == "#"
    for row in rows:
        assert 0.0 <= row["offset_frac"] <= 1.0
        assert 0.0 <= row["width_frac"] <= 1.0


def test_sink_spans_section_carries_waterfall_rows():
    sink = LiveSink(interval=0.01, wall_interval=0.0, spans_window=4)
    node = WorkerNode()
    tracer = node.obs.enable_tracing()
    sink.attach(node.obs)
    for index in range(6):
        request = _traced_request(tracer, node.env)
        node.env._now += 0.001
        tracer.on_mark(request, "done", node.env.now)
        tracer.finish_request(request)
    section = sink.tick(node.env.now)["spans"]
    assert len(section["waterfalls"]) == 4  # rolling window
    waterfall = section["waterfalls"][-1]
    assert waterfall["node"] == "worker-1"
    assert waterfall["rows"]
    obs.reset_sessions()


# -- the HTTP server ----------------------------------------------------------

@pytest.fixture()
def dashboard():
    sink = LiveSink(interval=0.01, wall_interval=0.0)
    node = WorkerNode()
    sink.attach(node.obs)
    node.counters.incr("ops/s-spright/copy", 7)
    node.counters.incr("recovery/restarts", 2)
    sink.tick(1.0)
    server = DashboardServer(sink, port=0, heartbeat_s=0.05)
    server.start()
    yield sink, server
    server.stop()


def _get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as response:
        return response.status, response.headers, response.read()


def test_server_serves_dashboard_page(dashboard):
    _sink, server = dashboard
    status, headers, body = _get(server, "/")
    assert status == 200
    assert "text/html" in headers["Content-Type"]
    assert b"<!DOCTYPE html>" in body
    assert b"EventSource" in body


def test_server_json_snapshot_endpoints(dashboard):
    _sink, server = dashboard
    for path, schema in (
        ("/metrics.json", "spright.live.metrics/1"),
        ("/spans.json", "spright.live.spans/1"),
        ("/economics.json", "spright.live.economics/1"),
        ("/slo.json", "spright.live.slo/1"),
    ):
        status, headers, body = _get(server, path)
        assert status == 200
        assert "application/json" in headers["Content-Type"]
        payload = json.loads(body)
        assert payload["schema"] == schema
        assert payload["now"] == 1.0
    status, _headers, body = _get(server, "/metrics.json")
    nodes = json.loads(body)["nodes"]
    assert nodes[0]["counters"]["ops/s-spright/copy"] == 7
    status, _headers, body = _get(server, "/snapshot.json")
    assert json.loads(body)["schema"] == "spright.live/1"
    status, _headers, body = _get(server, "/events.json")
    payload = json.loads(body)
    assert payload["schema"] == "spright.live.events/1"
    assert payload["events"][0]["name"] == "recovery/restarts"


def test_server_openmetrics_scrape(dashboard):
    _sink, server = dashboard
    status, headers, body = _get(server, "/metrics")
    assert status == 200
    assert "openmetrics-text" in headers["Content-Type"]
    text = body.decode()
    assert text.endswith("# EOF\n")
    assert 'spright_ops_s_spright_copy_total{node="worker-1"} 7' in text


def test_server_unknown_path_is_404(dashboard):
    _sink, server = dashboard
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/nope")
    assert excinfo.value.code == 404


def _read_until(sock, marker, limit=65536):
    data = b""
    while marker not in data and len(data) < limit:
        chunk = sock.recv(4096)
        if not chunk:
            break
        data += chunk
    return data


def test_server_sse_stream_and_disconnect_cleanup(dashboard):
    sink, server = dashboard
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
    try:
        sock.sendall(
            b"GET /events HTTP/1.1\r\nHost: t\r\n"
            b"Accept: text/event-stream\r\n\r\n"
        )
        head = _read_until(sock, b"\n\n")
        assert b"200" in head.split(b"\r\n", 1)[0]
        assert b"text/event-stream" in head
        # The handler replays the latest snapshot immediately on connect.
        assert b"event: snapshot" in head
        # A fresh tick streams a new frame to the live subscriber.
        sink.tick(2.0)
        frame = _read_until(sock, b"\n\n")
        assert b"event: snapshot" in frame or b"event: snapshot" in head
    finally:
        sock.close()
    # Disconnect cleanup: the handler notices on its next write (heartbeat
    # every 0.05s here) and unsubscribes the dead client's queue.
    deadline = threading.Event()
    for _ in range(100):
        if sink.broker.client_count == 0:
            break
        deadline.wait(0.05)
    assert sink.broker.client_count == 0


# -- profiler folded-stack golden ---------------------------------------------

_PROFILE_CHARGES = [
    ("s-spright/gateway/pod-1", "copy", 12e-6),
    ("s-spright/gateway/pod-1", (("ebpf_run", 3e-6), ("map_lookup", 1e-6)), 4e-6),
    ("knative/queue-proxy/pod-2", "context_switch", 5e-6),
    ("s-spright/fn/frontend", None, 2.5e-6),
    ("s-spright/gateway/pod-1", "copy", 1e-6),
    ("d-spright/nic/dma", "service", 7.25e-6),
]


def test_profiler_folded_matches_golden_in_any_insertion_order():
    forward = CpuProfiler()
    for tag, op, seconds in _PROFILE_CHARGES:
        forward.record(tag, op, seconds)
    backward = CpuProfiler()
    for tag, op, seconds in reversed(_PROFILE_CHARGES):
        backward.record(tag, op, seconds)
    golden = GOLDEN_FOLDED.read_text()
    assert forward.folded() == golden
    assert backward.folded() == golden  # sorted by stack, not arrival
    assert forward.total == pytest.approx(backward.total)
