"""Edge-case coverage for the DES core: conditions, failures, dedication."""

import pytest

from repro.simcore import (
    Condition,
    CpuSet,
    Environment,
    Event,
    PriorityItem,
    PriorityStore,
    Resource,
    SimulationError,
    Store,
)


def test_condition_failure_propagates_to_waiter():
    env = Environment()
    left = env.event()
    right = env.event()
    caught = []

    def waiter(env):
        try:
            yield left & right
        except RuntimeError as error:
            caught.append(str(error))

    def failer(env):
        yield env.timeout(1)
        right.fail(RuntimeError("half failed"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["half failed"]


def test_all_of_empty_list_fires_immediately():
    env = Environment()
    done = []

    def waiter(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(waiter(env))
    env.run()
    assert done == [0]


def test_condition_rejects_mixed_environments():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(ValueError, match="different environments"):
        Condition(env_a, Condition.all_events, [Event(env_a), Event(env_b)])


def test_event_trigger_copies_outcome():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.succeed("payload")
    env.run()
    mirror.trigger(source)
    assert mirror.triggered
    assert mirror.value == "payload"


def test_event_trigger_copies_failure_and_defuses():
    env = Environment()
    source = env.event()
    mirror = env.event()
    source.fail(ValueError("bad"))
    mirror.defuse()
    mirror.trigger(source)
    assert source.defused
    assert not mirror.ok
    # Drain the queue; the defused failures must not crash the run.
    env.run()


def test_condition_value_mapping_api():
    env = Environment()
    results = {}

    def proc(env):
        fast = env.timeout(1, value="f")
        slow = env.timeout(2, value="s")
        outcome = yield fast & slow
        results["contains"] = fast in outcome
        results["getitem"] = outcome[fast]
        results["dict_len"] = len(outcome.todict())

    env.process(proc(env))
    env.run()
    assert results == {"contains": True, "getitem": "f", "dict_len": 2}


def test_condition_value_keyerror_for_foreign_event():
    env = Environment()
    errors = []

    def proc(env):
        fast = env.timeout(1)
        outcome = yield env.all_of([fast])
        foreign = env.event()
        try:
            outcome[foreign]
        except KeyError:
            errors.append("keyerror")

    env.process(proc(env))
    env.run()
    assert errors == ["keyerror"]


def test_priority_store_try_put_respects_heap_order():
    env = Environment()
    store = PriorityStore(env)
    assert store.try_put(PriorityItem(5, "low"))
    assert store.try_put(PriorityItem(1, "high"))
    got = []

    def consumer(env):
        for _ in range(2):
            item = yield store.get()
            got.append(item.item)

    env.process(consumer(env))
    env.run()
    assert got == ["high", "low"]


def test_store_filtered_get_waits_for_matching_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get(filter=lambda value: value == "wanted")
        got.append((env.now, item))

    def producer(env):
        yield store.put("noise")
        yield env.timeout(3)
        yield store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(3, "wanted")]
    assert list(store.items) == ["noise"]


def test_resource_release_of_waiting_request_cancels_it():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def holder(env):
        request = resource.request()
        yield request
        yield env.timeout(5)
        resource.release(request)

    def canceller(env):
        request = resource.request()  # queued behind holder
        yield env.timeout(1)
        resource.release(request)     # cancel while still waiting
        order.append("cancelled")

    def third(env):
        yield env.timeout(2)
        request = resource.request()
        yield request
        order.append(("third", env.now))
        resource.release(request)

    env.process(holder(env))
    env.process(canceller(env))
    env.process(third(env))
    env.run()
    # The cancelled waiter never blocks the third user.
    assert ("third", 5) in order


def test_resource_context_manager_releases():
    env = Environment()
    resource = Resource(env, capacity=1)
    times = []

    def user(env):
        with resource.request() as request:
            yield request
            yield env.timeout(1)
        times.append(env.now)

    env.process(user(env))
    env.process(user(env))
    env.run()
    assert times == [1, 2]


def test_dedicate_prefers_idle_core_and_release_restores_pool():
    env = Environment()
    cpu = CpuSet(env, cores=2)

    def busy(env):
        yield cpu.execute(10.0, "busy")

    env.process(busy(env))
    handle = cpu.dedicate(tag="poll")
    assert cpu.shared_cores == 1

    def later(env):
        yield env.timeout(2)
        handle.release()

    env.process(later(env))
    env.run(until=3.0)
    assert cpu.shared_cores == 2
    assert cpu.accounting.total_busy["poll"] == pytest.approx(2.0)
    handle.release()  # double release is a no-op
    assert cpu.accounting.total_busy["poll"] == pytest.approx(2.0)


def test_cpu_zero_duration_completes_immediately():
    env = Environment()
    cpu = CpuSet(env, cores=1)
    done = cpu.execute(0.0, "x")
    assert done.triggered
    assert cpu.accounting.total_busy.get("x", 0.0) == 0.0


def test_cpu_negative_duration_rejected():
    env = Environment()
    cpu = CpuSet(env, cores=1)
    with pytest.raises(ValueError):
        cpu.execute(-1.0, "x")


def test_cannot_interrupt_self():
    env = Environment()
    errors = []

    def proc(env):
        this = env.active_process
        try:
            this.interrupt()
        except SimulationError:
            errors.append("refused")
        yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert errors == ["refused"]


def test_accounting_mean_percent_zero_duration():
    env = Environment()
    cpu = CpuSet(env, cores=1)
    assert cpu.accounting.mean_percent("any", 0.0) == 0.0
