"""Bench trajectory tests: schema, tolerance gate, trajectory files.

The in-module validator (``repro.bench.validate_payload``) and the
checked-in JSON Schema (``tests/schemas/bench.schema.json``) describe the
same shape; a test here holds them in agreement using the same hand-rolled
validator the trace-event schema uses.
"""

import json
from pathlib import Path

import pytest

from repro import bench, cli
from tests.test_obs_trace import validate

SCHEMA_PATH = Path(__file__).parent / "schemas" / "bench.schema.json"


def _cell(scenario="boutique/s-spright/n1", requests=1000, events=50000,
          wall=0.5, **overrides):
    workload, plane, nodes = scenario.split("/")
    cell = {
        "scenario": scenario,
        "workload": workload,
        "plane": plane,
        "nodes": int(nodes[1:]),
        "sim_duration_s": 0.8,
        "wall_s": wall,
        "requests": requests,
        "events": events,
        "sim_req_per_wall_s": requests / wall,
        "events_per_wall_s": events / wall,
        "p50_ms": 0.7,
        "p99_ms": 0.9,
    }
    cell.update(overrides)
    return cell


def _payload(cells=None, pr=bench.PR_NUMBER):
    cells = cells if cells is not None else [
        _cell("boutique/s-spright/n1"),
        _cell("motion/lambda-nic/n3", requests=500, events=20000),
    ]
    wall = sum(cell["wall_s"] for cell in cells)
    requests = sum(cell["requests"] for cell in cells)
    events = sum(cell["events"] for cell in cells)
    return {
        "schema": bench.SCHEMA,
        "pr": pr,
        "config": {
            "duration_s": 0.8,
            "seed": 2022,
            "concurrency": 12,
            "placement": "chain_locality",
        },
        "cells": cells,
        "totals": {
            "wall_s": wall,
            "requests": requests,
            "events": events,
            "sim_req_per_wall_s": requests / wall,
            "events_per_wall_s": events / wall,
        },
    }


# -- schema -------------------------------------------------------------------

def test_valid_payload_passes_both_validators():
    payload = _payload()
    assert bench.validate_payload(payload) == []
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate(payload, schema) == []


@pytest.mark.parametrize(
    "mutate",
    [
        lambda p: p.update(schema="wrong/1"),
        lambda p: p.update(pr=0),
        lambda p: p["cells"][0].update(requests=-1),
        lambda p: p["cells"][0].update(wall_s="fast"),
        lambda p: p["cells"][0].pop("scenario"),
        lambda p: p["totals"].pop("events_per_wall_s"),
    ],
)
def test_bad_payloads_fail_both_validators(mutate):
    payload = _payload()
    mutate(payload)
    assert bench.validate_payload(payload)
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate(payload, schema)


def test_empty_cells_rejected_by_module_validator():
    # minItems is outside the hand-rolled schema subset; the in-module
    # validator carries that constraint alone.
    payload = _payload()
    payload["cells"] = []
    assert any("non-empty" in error for error in bench.validate_payload(payload))


def test_duplicate_scenarios_rejected():
    payload = _payload(cells=[_cell(), _cell()])
    assert any("duplicate" in error for error in bench.validate_payload(payload))


# -- trajectory files ---------------------------------------------------------

def test_write_trajectory_roundtrip(tmp_path):
    payload = _payload()
    path = bench.write_trajectory(payload, tmp_path)
    assert path.name == f"BENCH_{bench.PR_NUMBER}.json"
    assert json.loads(path.read_text()) == payload


def test_find_previous_picks_newest_older_pr(tmp_path):
    assert bench.find_previous(tmp_path, 8) is None
    for number in (3, 7, 8, 12):
        bench.write_trajectory(_payload(pr=number), tmp_path)
    previous = bench.find_previous(tmp_path, 8)
    assert previous is not None and previous.name == "BENCH_7.json"
    (tmp_path / "BENCH_nope.json").write_text("{}")  # ignored: not numeric
    assert bench.find_previous(tmp_path, 8).name == "BENCH_7.json"


# -- the tolerance gate -------------------------------------------------------

def test_compare_passes_within_tolerance():
    current = _payload()
    previous = _payload(pr=7)
    comparison = bench.compare(current, previous, tolerance=0.15)
    assert not comparison.regressed
    assert comparison.previous_pr == 7
    assert comparison.throughput_ratio == pytest.approx(1.0)
    assert comparison.behavior_changes == []


def test_compare_flags_throughput_regression():
    previous = _payload(pr=7)
    slow = _payload(cells=[
        _cell("boutique/s-spright/n1", wall=1.0),   # 2x slower
        _cell("motion/lambda-nic/n3", requests=500, events=20000, wall=1.0),
    ])
    comparison = bench.compare(slow, previous, tolerance=0.15)
    assert comparison.regressed
    assert comparison.throughput_ratio < 0.85
    assert comparison.cell_notes  # the offending cells are named


def test_compare_surfaces_behavior_changes_without_failing():
    previous = _payload(pr=7)
    current = _payload(cells=[
        _cell("boutique/s-spright/n1", requests=1001, events=50001),
        _cell("motion/lambda-nic/n3", requests=500, events=20000),
    ])
    comparison = bench.compare(current, previous, tolerance=0.15)
    assert not comparison.regressed  # counts drifted, throughput did not
    assert any("requests 1000 -> 1001" in c for c in comparison.behavior_changes)


def test_compare_notes_new_scenarios():
    previous = _payload(pr=7, cells=[_cell("boutique/s-spright/n1")])
    current = _payload()
    comparison = bench.compare(current, previous)
    assert any("new scenario" in note for note in comparison.cell_notes)


def test_compare_rejects_bad_tolerance():
    with pytest.raises(ValueError):
        bench.compare(_payload(), _payload(pr=7), tolerance=0.0)


# -- reporting ----------------------------------------------------------------

def test_format_report_without_baseline():
    report = bench.format_report(_payload())
    assert "Bench trajectory" in report
    assert "TOTAL" in report
    assert "first trajectory point" in report


def test_format_report_with_baseline_verdict():
    previous = _payload(pr=7)
    comparison = bench.compare(_payload(), previous)
    report = bench.format_report(_payload(), comparison)
    assert "bench regression gate passed" in report
    slow = _payload(cells=[
        _cell("boutique/s-spright/n1", wall=2.0),
        _cell("motion/lambda-nic/n3", requests=500, events=20000, wall=2.0),
    ])
    report = bench.format_report(slow, bench.compare(slow, previous))
    assert "bench regression gate FAILED" in report


# -- a real (tiny) matrix run -------------------------------------------------

def test_run_bench_single_cell_is_valid_and_deterministic():
    kwargs = dict(
        duration=0.15, workloads=("motion",), planes=("s-spright",),
        node_counts=(1,),
    )
    first = bench.run_bench(**kwargs)
    assert bench.validate_payload(first) == []
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate(first, schema) == []
    (cell,) = first["cells"]
    assert cell["scenario"] == "motion/s-spright/n1"
    assert cell["requests"] > 0 and cell["events"] > 0
    # Same seed -> identical simulated work; only wall timings may differ.
    second = bench.run_bench(**kwargs)
    assert second["totals"]["requests"] == first["totals"]["requests"]
    assert second["totals"]["events"] == first["totals"]["events"]


# -- CLI ----------------------------------------------------------------------

def test_cli_bench_writes_trajectory_and_gates(tmp_path, capsys, monkeypatch):
    monkeypatch.setattr(bench, "run_bench", lambda **_kw: _payload())
    code = cli.main(["bench", "--bench-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "first trajectory point" in out
    written = tmp_path / f"BENCH_{bench.PR_NUMBER}.json"
    assert written.exists()
    # Second run now has a baseline (write an older PR's file) and gates.
    bench.write_trajectory(_payload(pr=7), tmp_path)
    code = cli.main(["bench", "--bench-dir", str(tmp_path), "--tolerance", "0.2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline: BENCH_7.json" in out
    assert "bench regression gate passed" in out
