"""Traffic subsystem: determinism, parallel identity, DES reconciliation.

The load-bearing properties:

* same seed => byte-identical arrival traces and keep-alive decisions
  (hypothesis, across seeds and source kinds);
* the multiprocessing fleet runner's merged output is identical to the
  serial run (the CI ``traffic-smoke`` job re-asserts this end to end);
* a DES run's ``traffic/*`` economics reconcile *exactly* with the
  autoscaler's ``autoscale/*`` counters and gauges;
* attaching the accountant changes nothing about the run itself
  (byte-identity of the latency samples);
* the §4.2.2 acceptance story: S-SPRIGHT keeps pods warm for free while
  Knative pays in cold starts or idle sidecar CPU.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import traffic_exp
from repro.experiments.common import build_plane, make_node
from repro.runtime import Autoscaler, AutoscalerPolicy, Kubelet, MetricsServer
from repro.stats import LatencyRecorder
from repro.traffic import (
    PLANE_PROFILES,
    Arrival,
    CellSpec,
    DesTrafficAccountant,
    DiurnalSource,
    EconomicsLedger,
    FixedWindowKeepAlive,
    FleetParams,
    HeavyTailSource,
    HistogramKeepAlive,
    KpaKeepAlive,
    MmppSource,
    PinnedKeepAlive,
    PoissonSource,
    SloPolicy,
    SyntheticFleet,
    as_trace_events,
    build_specs,
    make_policy,
    merge_sources,
    run_cells,
    simulate_cell,
    trace_digest,
    zipf_weights,
)
from repro.workloads import NonMonotonicTraceError, OpenLoopGenerator, TraceEvent
from repro.workloads.motion import (
    MotionTraceParams,
    motion_functions,
    motion_request_class,
    synthesize_motion_trace,
)


# --- arrival sources ---------------------------------------------------------


def _sources(seed: int):
    return [
        PoissonSource(rate=0.5, duration=1800.0, seed=seed),
        MmppSource(low_rate=0.1, high_rate=4.0, duration=1800.0, seed=seed),
        DiurnalSource(base_rate=0.5, duration=1800.0, seed=seed),
        HeavyTailSource(mean_gap=3.0, duration=1800.0, seed=seed),
    ]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_sources_byte_identical_for_same_seed(seed):
    """Same seed => byte-identical trace, across repeats and fresh objects."""
    for first, second in zip(_sources(seed), _sources(seed)):
        digest = trace_digest(first)
        assert digest == trace_digest(first)  # restartable iteration
        assert digest == trace_digest(second)  # fresh instance


def test_sources_diverge_across_seeds_and_names():
    base = PoissonSource(rate=1.0, duration=600.0, seed=1)
    other_seed = PoissonSource(rate=1.0, duration=600.0, seed=2)
    other_name = PoissonSource(rate=1.0, duration=600.0, seed=1, name="other")
    assert trace_digest(base) != trace_digest(other_seed)
    assert trace_digest(base) != trace_digest(other_name)


def test_sources_monotone_and_bounded():
    for source in _sources(7):
        last = 0.0
        for arrival in source.events():
            assert arrival.time >= last
            assert 0.0 <= arrival.time <= 1800.0
            last = arrival.time


def test_merge_sources_is_globally_sorted():
    sources = _sources(11)
    merged = list(merge_sources(sources))
    assert len(merged) == sum(1 for s in sources for _ in s.events())
    assert all(a.time <= b.time for a, b in zip(merged, merged[1:]))


def test_zipf_weights_normalized_and_skewed():
    weights = zipf_weights(16, s=1.1)
    assert len(weights) == 16
    assert abs(sum(weights) - 1.0) < 1e-12
    assert weights == sorted(weights, reverse=True)
    assert weights[0] > 4 * weights[-1]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16), pattern=st.sampled_from(
    ["flat", "diurnal", "bursty"]
))
def test_fleet_trace_deterministic(seed, pattern):
    params = FleetParams(
        functions=4, duration=3600.0, total_rate=0.3, seed=seed, pattern=pattern
    )
    first = [(a.time, a.fn) for a in SyntheticFleet(params).merged()]
    second = [(a.time, a.fn) for a in SyntheticFleet(params).merged()]
    assert first == second
    assert all(t0 <= t1 for (t0, _), (t1, _) in zip(first, first[1:]))


def test_fleet_params_validation():
    with pytest.raises(ValueError):
        FleetParams(functions=0)
    with pytest.raises(ValueError):
        FleetParams(total_rate=-1.0)
    with pytest.raises(ValueError):
        FleetParams(pattern="weekly")


# --- keep-alive policies -----------------------------------------------------


def _drive_policy(policy, seed: int, gaps: int = 200):
    rng = random.Random(seed)
    t = 0.0
    for _ in range(gaps):
        gap = rng.expovariate(1.0 / 40.0)
        policy.observe_gap("fn", gap)
        t += gap
        policy.plan_after("fn", t)
    return policy.decision_digest()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_keepalive_decisions_byte_identical(seed):
    for make in (
        lambda: FixedWindowKeepAlive(window=120.0),
        lambda: KpaKeepAlive(grace_period=30.0),
        lambda: HistogramKeepAlive(min_samples=4),
        lambda: PinnedKeepAlive(),
    ):
        assert _drive_policy(make(), seed) == _drive_policy(make(), seed)


def test_fixed_window_plan():
    plan = FixedWindowKeepAlive(window=300.0).plan_after("fn", 100.0)
    assert plan.warm_until == 400.0
    assert plan.is_warm_at(399.9) and not plan.is_warm_at(400.1)


def test_kpa_plan_is_tick_quantized():
    policy = KpaKeepAlive(grace_period=30.0, tick_interval=2.0)
    plan = policy.plan_after("fn", 11.3)
    assert plan.warm_until == 42.0  # ceil((11.3 + 30) / 2) * 2
    assert plan.warm_until % policy.tick_interval == 0


def test_histogram_falls_back_then_predicts():
    policy = HistogramKeepAlive(min_samples=8, fallback_window=600.0, linger=10.0)
    early = policy.plan_after("fn", 0.0)
    assert early.warm_until == 600.0  # not enough history: fixed fallback
    for _ in range(50):
        policy.observe_gap("fn", 100.0)  # regular minute-and-a-bit gaps
    learned = policy.plan_after("fn", 1000.0)
    # Long predictable gap: linger briefly, then pre-warm just before the
    # predicted next arrival instead of staying warm the whole time.
    assert learned.warm_until < 1000.0 + 100.0
    assert learned.prewarm_at is not None and learned.prewarm_until is not None
    assert 1000.0 < learned.prewarm_at < learned.prewarm_until
    assert learned.prewarm_until >= 1000.0 + 100.0


def test_pinned_never_scales_to_zero():
    policy = PinnedKeepAlive(min_scale=2)
    assert policy.min_warm("fn") == 2
    plan = policy.plan_after("fn", 5.0)
    assert plan.is_warm_at(10.0**9)


def test_make_policy_rejects_unknown():
    with pytest.raises(KeyError):
        make_policy("lru")
    assert isinstance(make_policy("histogram"), HistogramKeepAlive)


def test_warm_plan_idle_accounting():
    from repro.traffic.keepalive import WarmPlan

    plan = WarmPlan(warm_until=100.0)
    assert plan.warm_idle_seconds(40.0, 80.0) == 40.0  # next arrival cuts it
    assert plan.warm_idle_seconds(40.0, 500.0) == 60.0  # window cuts it
    prewarmed = WarmPlan(warm_until=50.0, prewarm_at=90.0, prewarm_until=120.0)
    # 10 s of tail window + the prewarm pod idling until the arrival at 110.
    assert prewarmed.warm_idle_seconds(40.0, 110.0) == 10.0 + 20.0


# --- fleet runner ------------------------------------------------------------


def _small_specs():
    fleet = FleetParams(functions=5, duration=7200.0, total_rate=0.4, seed=9)
    return build_specs(
        ["knative", "s-spright"], ["kpa", "pinned"], fleet, patterns=("bursty",)
    )


def test_parallel_run_identical_to_serial():
    specs = _small_specs()
    serial = run_cells(specs, processes=1)
    parallel = run_cells(specs, processes=2)
    assert [r.digest() for r in serial] == [r.digest() for r in parallel]
    lab_s = traffic_exp.TrafficLab(results=serial)
    lab_p = traffic_exp.TrafficLab(results=parallel)
    assert traffic_exp.format_traffic_table(lab_s) == traffic_exp.format_traffic_table(
        lab_p
    )


def test_cell_is_deterministic_and_policy_sensitive():
    specs = _small_specs()
    again = simulate_cell(specs[0])
    assert again.digest() == run_cells([specs[0]])[0].digest()
    digests = {r.digest() for r in run_cells(specs)}
    assert len(digests) == len(specs)  # every (plane, policy) cell differs


def test_acceptance_spright_warm_pod_advantage():
    """§4.2.2 at fleet scale: warm pods are free only on S-SPRIGHT."""
    lab = traffic_exp.run_traffic_lab(
        planes=("knative", "s-spright"),
        policies=("kpa", "pinned"),
        patterns=("bursty",),
        functions=6,
        duration=7200.0,
        total_rate=0.5,
        seed=3,
    )
    kn_kpa = lab.cell("bursty", "knative", "kpa")
    kn_pin = lab.cell("bursty", "knative", "pinned")
    sp_pin = lab.cell("bursty", "s-spright", "pinned")
    assert kn_kpa.cold_starts > 0  # scale-to-zero pays in cold starts
    assert kn_pin.wasted_warm_cpu_s > 0  # always-warm pays in sidecar CPU
    assert sp_pin.cold_starts == 0
    assert sp_pin.wasted_warm_cpu_s == 0  # event-driven pods idle for free
    assert sp_pin.slo_attainment >= kn_kpa.slo_attainment
    assert sp_pin.wasted_warm_cpu_s < kn_pin.wasted_warm_cpu_s
    # Economics are published under traffic/<pattern>/<plane>/<policy>/*.
    assert (
        lab.registry.counter(
            "traffic/bursty/s-spright/pinned/total/cold_starts"
        ).value
        == 0
    )
    assert (
        lab.registry.counter("traffic/bursty/knative/kpa/total/cold_starts").value
        == kn_kpa.cold_starts
    )


def test_histogram_beats_kpa_on_bursty_traffic():
    """The hybrid-histogram predictor avoids most of KPA's cold starts."""
    lab = traffic_exp.run_traffic_lab(
        planes=("knative",),
        policies=("kpa", "histogram"),
        patterns=("bursty",),
        functions=6,
        duration=14400.0,
        total_rate=0.5,
        seed=3,
    )
    kpa = lab.cell("bursty", "knative", "kpa")
    hist = lab.cell("bursty", "knative", "histogram")
    assert hist.cold_starts < kpa.cold_starts / 2
    assert hist.slo_attainment > kpa.slo_attainment


def test_cell_spec_validation():
    fleet = FleetParams(functions=2, duration=600.0)
    with pytest.raises(ValueError):
        CellSpec(plane="istio", policy="kpa", fleet=fleet)
    with pytest.raises(ValueError):
        CellSpec(plane="knative", policy="lru", fleet=fleet)
    with pytest.raises(ValueError):
        run_cells(build_specs(["knative"], ["kpa"], fleet), processes=0)


# --- economics ledger --------------------------------------------------------


def test_ledger_merge_matches_single_ledger():
    slo = SloPolicy(threshold_s=0.1)
    whole, left, right = (EconomicsLedger(slo=slo) for _ in range(3))
    for index in range(100):
        shard = left if index % 2 else right
        for ledger in (whole, shard):
            ledger.record_request(
                f"fn-{index % 3}", 0.05 if index % 4 else 0.5, cold=index % 5 == 0,
                penalty_s=0.4,
            )
            ledger.record_warm_idle(f"fn-{index % 3}", 1.5, idle_cpu_frac=0.05)
    left.merge(right)
    merged, direct = left.total(), whole.total()
    assert (merged.requests, merged.cold_starts, merged.warm_starts, merged.slo_hits) == (
        direct.requests,
        direct.cold_starts,
        direct.warm_starts,
        direct.slo_hits,
    )
    # Float fields accumulate in different orders across shards.
    assert merged.cold_penalty_s == pytest.approx(direct.cold_penalty_s)
    assert merged.wasted_warm_pod_s == pytest.approx(direct.wasted_warm_pod_s)
    assert merged.wasted_warm_cpu_s == pytest.approx(direct.wasted_warm_cpu_s)
    assert left.slo_attainment() == whole.slo_attainment()


# --- DES integration ---------------------------------------------------------


def _motion_des(duration=400.0, seed=2022, attach_accountant=False):
    """A Fig-11-style Knative run with scale-to-zero, optionally accounted."""
    node = make_node(seed=seed)
    functions = motion_functions(min_scale=0)
    kubelet = Kubelet(node, cold_start_enabled=True, termination_lag=30.0)
    metrics = MetricsServer(registry=node.obs.registry)
    plane = build_plane(
        "knative", node, functions, kubelet=kubelet, metrics_server=metrics
    )
    autoscaler = Autoscaler(node, metrics)
    for deployment in plane.deployments.values():
        autoscaler.register(
            deployment, AutoscalerPolicy(scale_to_zero=True, grace_period=30.0)
        )
    autoscaler.start()
    accountant = None
    if attach_accountant:
        accountant = DesTrafficAccountant(
            node, plane, autoscaler=autoscaler, idle_cpu_frac=0.05
        )
    recorder = LatencyRecorder()
    trace = synthesize_motion_trace(node, MotionTraceParams(duration=duration))
    generator = OpenLoopGenerator(node, plane, trace, recorder)
    generator.start()
    node.run(until=duration)
    return node, plane, autoscaler, accountant, recorder


def test_des_traffic_reconciles_with_autoscale_metrics():
    node, plane, autoscaler, accountant, _ = _motion_des(attach_accountant=True)
    ledger = accountant.publish()
    registry = node.obs.registry
    total_cold = 0
    for name, deployment in plane.deployments.items():
        autoscale_cold = registry.counter(f"autoscale/{name}/cold_starts").value
        assert autoscale_cold == deployment.cold_starts
        assert registry.counter(f"traffic/{name}/cold_starts").value == autoscale_cold
        idle = autoscaler.idle_pod_seconds(name)
        assert registry.gauge(f"traffic/{name}/wasted_warm_pod_s").value == idle
        assert (
            registry.gauge(f"traffic/{name}/wasted_warm_cpu_s").value == idle * 0.05
        )
        if idle:
            assert (
                registry.gauge(f"autoscale/{name}/idle_pod_seconds").value == idle
            )
        total_cold += autoscale_cold
    # The per-function control-plane counters add up to the dataplane's own
    # cold-start total: one scale-from-zero wait == one counted cold start.
    assert registry.sum_counters("autoscale", "cold_starts") == total_cold
    # traffic/* carries both the per-fn counters and the total/ rollup.
    assert registry.sum_counters("traffic", "cold_starts") == total_cold * 2
    assert total_cold == node.counters.get(f"{plane.plane}/cold_starts")
    assert total_cold > 0  # the motion trace's idle gaps do trigger them
    assert ledger.total().cold_starts == total_cold


def test_accountant_is_inert():
    """Attaching the accountant must not perturb the run (byte-identity)."""
    _, _, _, _, plain = _motion_des(attach_accountant=False)
    _, _, _, _, accounted = _motion_des(attach_accountant=True)
    assert plain._samples[""] == accounted._samples[""]


def test_autoscaler_keepalive_pins_warm_pods():
    """A pinned policy holds a floor even with scale_to_zero enabled."""
    node = make_node(seed=5)
    functions = motion_functions(min_scale=0)
    kubelet = Kubelet(node, cold_start_enabled=True, termination_lag=0.0)
    metrics = MetricsServer(registry=node.obs.registry)
    plane = build_plane(
        "knative", node, functions, kubelet=kubelet, metrics_server=metrics
    )
    autoscaler = Autoscaler(node, metrics)
    for deployment in plane.deployments.values():
        autoscaler.register(
            deployment,
            AutoscalerPolicy(scale_to_zero=True, grace_period=5.0),
            keepalive=PinnedKeepAlive(min_scale=1),
        )
    autoscaler.start()
    node.run(until=300.0)  # no traffic at all
    for name, deployment in plane.deployments.items():
        assert deployment.scale >= 1, name
        assert deployment.cold_starts == 0
        assert autoscaler.idle_pod_seconds(name) > 0


def test_autoscaler_fixed_keepalive_reaps_after_window():
    """A fixed-window policy keeps pods warm, then lets them go."""
    node = make_node(seed=6)
    functions = motion_functions(min_scale=1)
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    metrics = MetricsServer(registry=node.obs.registry)
    plane = build_plane(
        "knative", node, functions, kubelet=kubelet, metrics_server=metrics
    )
    autoscaler = Autoscaler(node, metrics)
    for deployment in plane.deployments.values():
        autoscaler.register(
            deployment,
            AutoscalerPolicy(scale_to_zero=True),
            keepalive=FixedWindowKeepAlive(window=60.0),
        )
    autoscaler.start()
    node.run(until=30.0)
    assert all(d.scale >= 1 for d in plane.deployments.values())  # inside window
    node.run(until=200.0)
    assert all(d.scale == 0 for d in plane.deployments.values())  # reaped after


# --- streaming open loop -----------------------------------------------------


def _streaming_setup(seed=2022):
    node = make_node(seed=seed)
    functions = motion_functions(min_scale=1)
    kubelet = Kubelet(node, cold_start_enabled=False, termination_lag=0.0)
    metrics = MetricsServer(registry=node.obs.registry)
    plane = build_plane(
        "s-spright", node, functions, kubelet=kubelet, metrics_server=metrics
    )
    return node, plane


def test_open_loop_streams_arrival_source():
    node, plane = _streaming_setup()
    source = PoissonSource(rate=2.0, duration=30.0, seed=4)
    expected = sum(1 for _ in source.events())
    recorder = LatencyRecorder()
    generator = OpenLoopGenerator(
        node, plane, as_trace_events(source, motion_request_class()), recorder
    )
    assert generator.streaming and generator.trace is None
    generator.start()
    node.run(until=60.0)
    assert generator.submitted == expected > 0
    assert recorder.summary("").count == expected


def test_open_loop_list_path_unchanged():
    node, plane = _streaming_setup()
    events = [
        TraceEvent(time=t, request_class=motion_request_class())
        for t in (2.0, 0.5, 1.0)  # deliberately unsorted: lists get sorted
    ]
    generator = OpenLoopGenerator(node, plane, events, recorder=LatencyRecorder())
    assert not generator.streaming
    assert [event.time for event in generator.trace] == [0.5, 1.0, 2.0]
    generator.start()
    node.run(until=10.0)
    assert generator.submitted == 3


def test_open_loop_rejects_non_monotonic_stream():
    node, plane = _streaming_setup()

    def backwards():
        yield TraceEvent(time=1.0, request_class=motion_request_class())
        yield TraceEvent(time=0.5, request_class=motion_request_class())

    generator = OpenLoopGenerator(node, plane, backwards(), recorder=LatencyRecorder())
    generator.start()
    with pytest.raises(NonMonotonicTraceError) as exc:
        node.run(until=10.0)
    assert exc.value.previous == 1.0
    assert exc.value.current == 0.5


def test_as_trace_events_is_lazy_and_ordered():
    source = DiurnalSource(base_rate=0.2, duration=600.0, seed=8)

    class Marker:
        pass

    events = as_trace_events(source, Marker())
    import types

    assert isinstance(events, types.GeneratorType)
    times = [event.time for event in events]
    assert times == sorted(times)
    assert times == [a.time for a in source.events()]


# --- plane profiles ----------------------------------------------------------


def test_plane_profiles_encode_the_papers_cost_story():
    assert set(PLANE_PROFILES) == {"knative", "grpc", "s-spright", "d-spright"}
    s = PLANE_PROFILES["s-spright"]
    d = PLANE_PROFILES["d-spright"]
    kn = PLANE_PROFILES["knative"]
    assert s.idle_pod_cpu_frac == 0.0  # event-driven: idle pods are free
    assert d.idle_pod_cpu_frac == 1.0  # polling: a spinning core per pod
    assert 0 < kn.idle_pod_cpu_frac < 1  # sidecar burn
    assert kn.per_request_overhead > s.per_request_overhead  # §3.2.2 bands


# --- byte-identity guard -----------------------------------------------------


def test_tables_match_pre_traffic_golden():
    """Tables 1/2 are byte-identical to the golden captured before the
    traffic subsystem existed — its hooks must be inert when unused.
    (CI's traffic-smoke job extends this guard to Fig 11 and Figs 9/10.)"""
    from pathlib import Path

    from repro.experiments import audits

    golden = Path(__file__).parent / "goldens" / "tables.txt"
    assert audits.format_report() + "\n" == golden.read_text()
