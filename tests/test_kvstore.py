"""Tests for the in-memory KV substrate (Fig 8a's in-memory DB)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import KvError, KvStore, shared_store
from repro.workloads.kvstore import GET_COST, PUT_COST


def test_put_get_roundtrip_with_costs():
    store = KvStore()
    put_cost = store.put("k", b"value")
    value, get_cost = store.get("k")
    assert value == b"value"
    assert put_cost >= PUT_COST
    assert get_cost >= GET_COST


def test_miss_returns_none_and_counts():
    store = KvStore()
    value, cost = store.get("absent")
    assert value is None
    assert cost == GET_COST
    assert store.stats.misses == 1
    assert store.stats.hit_rate == 0.0


def test_lru_eviction_order():
    store = KvStore(max_entries=2)
    store.put("a", b"1")
    store.put("b", b"2")
    store.get("a")          # touch a: now b is the LRU entry
    store.put("c", b"3")    # evicts b
    assert store.get("b")[0] is None
    assert store.get("a")[0] == b"1"
    assert store.stats.evictions == 1


def test_delete():
    store = KvStore()
    store.put("k", b"v")
    existed, _ = store.delete("k")
    assert existed
    existed, _ = store.delete("k")
    assert not existed


def test_scan_prefix_cost_scales_with_store_size():
    small = KvStore()
    small.put("cart:1", b"x")
    big = KvStore()
    for index in range(1000):
        big.put(f"cart:{index}", b"x")
    _, small_cost = small.scan_prefix("cart:")
    keys, big_cost = big.scan_prefix("cart:", limit=10)
    assert len(keys) == 10
    assert big_cost > small_cost


def test_larger_values_cost_more():
    store = KvStore()
    small_cost = store.put("a", b"x")
    big_cost = store.put("b", b"x" * 10_000)
    assert big_cost > small_cost


def test_capacity_validation():
    with pytest.raises(KvError):
        KvStore(max_entries=0)


def test_shared_store_is_per_context_singleton():
    context = {}
    first = shared_store(context, "db")
    second = shared_store(context, "db")
    other = shared_store(context, "other-db")
    assert first is second
    assert first is not other


@given(
    operations=st.lists(
        st.tuples(st.text(min_size=1, max_size=8), st.binary(max_size=32)),
        min_size=1,
        max_size=60,
    )
)
def test_kv_matches_dict_model_within_capacity(operations):
    store = KvStore(max_entries=1000)
    model = {}
    for key, value in operations:
        store.put(key, value)
        model[key] = value
    for key, value in model.items():
        assert store.get(key)[0] == value
    assert len(store) == len(model)


def test_cart_behavior_uses_db_and_reports_cost():
    from repro.runtime import FunctionResult
    from repro.workloads.boutique import _cart_behavior

    context = {}
    result = _cart_behavior(b"\x01" * 16, context)
    assert isinstance(result, FunctionResult)
    assert result.extra_service_time > 0
    assert context["cart-db"].stats.puts == 1


def test_extra_service_time_charged_to_pod():
    """DB access time shows up in the pod's measured service latency."""
    from repro.runtime import FunctionResult, FunctionSpec, Kubelet, WorkerNode

    def db_heavy(payload, context):
        return FunctionResult(payload=payload, extra_service_time=0.05)

    node = WorkerNode()
    kubelet = Kubelet(node, cold_start_enabled=False)
    pod = kubelet.create_pod(
        FunctionSpec(name="f", service_time=0.0, behavior=db_heavy), "t/fn/f"
    )
    times = []

    def client(env):
        yield pod.ready
        yield env.process(pod.serve(b"x"))
        times.append(env.now)

    node.env.process(client(node.env))
    node.run(until=1.0)
    assert times[0] >= 0.05
