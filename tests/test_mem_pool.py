"""Tests for shared memory pools, descriptors, rings, and chain managers."""

import pytest

from repro.mem import (
    DescriptorError,
    IsolationError,
    PacketDescriptor,
    PollingConsumer,
    PoolError,
    PoolRegistry,
    RingError,
    RteRing,
    SharedMemoryManager,
    SharedMemoryPool,
)
from repro.simcore import CpuSet, Environment


# -- descriptors -----------------------------------------------------------

def test_descriptor_roundtrip():
    descriptor = PacketDescriptor(
        next_fn=3, shm_offset=65536, length=1500, generation=7
    )
    raw = descriptor.pack()
    assert len(raw) == 24
    assert PacketDescriptor.unpack(raw) == descriptor


def test_descriptor_is_exactly_24_bytes():
    with pytest.raises(DescriptorError, match="24 bytes"):
        PacketDescriptor.unpack(b"\x00" * 16)


def test_descriptor_version_checked():
    raw = bytearray(PacketDescriptor(next_fn=1, shm_offset=0, length=0).pack())
    raw[0] = 1  # the paper's v1 16-byte layout never had this header
    with pytest.raises(DescriptorError, match="version"):
        PacketDescriptor.unpack(bytes(raw))


def test_descriptor_field_ranges():
    with pytest.raises(DescriptorError):
        PacketDescriptor(next_fn=2**32, shm_offset=0, length=0)
    with pytest.raises(DescriptorError):
        PacketDescriptor(next_fn=0, shm_offset=-1, length=0)
    with pytest.raises(DescriptorError):
        PacketDescriptor(next_fn=0, shm_offset=0, length=0, generation=2**32)


def test_descriptor_readdressing():
    descriptor = PacketDescriptor(next_fn=1, shm_offset=100, length=10, generation=3)
    forwarded = descriptor.addressed_to(2)
    assert forwarded.next_fn == 2
    assert forwarded.shm_offset == 100
    assert forwarded.generation == 3
    assert descriptor.next_fn == 1  # original unchanged


# -- pools -------------------------------------------------------------------

def make_pool(**kwargs):
    defaults = dict(name="p", file_prefix="pfx", buffer_size=128, capacity=4)
    defaults.update(kwargs)
    return SharedMemoryPool(**defaults)


def test_pool_alloc_write_read_free():
    pool = make_pool()
    handle = pool.alloc()
    pool.write(handle, b"hello world")
    assert pool.read(handle) == b"hello world"
    pool.free(handle)
    assert pool.free_count == 4


def test_pool_zero_copy_identity():
    """Payload written once is readable at the same offset — no copies."""
    pool = make_pool()
    handle = pool.alloc()
    pool.write(handle, b"payload")
    assert pool.read_at(handle.offset, 7) == b"payload"
    assert pool.stats.writes == 1  # a single copy-in, as in Table 2


def test_pool_exhaustion():
    pool = make_pool(capacity=2)
    pool.alloc()
    pool.alloc()
    with pytest.raises(PoolError, match="exhausted"):
        pool.alloc()
    assert pool.stats.alloc_failures == 1


def test_pool_double_free_detected():
    pool = make_pool()
    handle = pool.alloc()
    pool.free(handle)
    with pytest.raises(PoolError, match="double free"):
        pool.free(handle)


def test_pool_use_after_free_detected():
    pool = make_pool()
    handle = pool.alloc()
    pool.free(handle)
    with pytest.raises(PoolError, match="freed buffer"):
        pool.read(handle)


def test_pool_stale_handle_aba_read_detected():
    """Regression: a freed handle whose slot was re-allocated must not pass
    the liveness check on offset alone (classic ABA use-after-free)."""
    pool = make_pool()
    h1 = pool.alloc()
    pool.write(h1, b"first owner")
    pool.free(h1)
    h2 = pool.alloc()  # LIFO free list: h2 recycles h1's slot
    assert h2.offset == h1.offset
    pool.write(h2, b"second owner")
    with pytest.raises(PoolError, match="stale handle"):
        pool.read(h1)
    with pytest.raises(PoolError, match="stale handle"):
        pool.write(h1, b"clobber")
    assert pool.read(h2) == b"second owner"  # new owner undisturbed


def test_pool_stale_handle_free_detected():
    """Freeing through a stale handle must not free the new owner's buffer."""
    pool = make_pool()
    h1 = pool.alloc()
    pool.free(h1)
    h2 = pool.alloc()
    with pytest.raises(PoolError, match="stale handle"):
        pool.free(h1)
    assert pool.read(h2) == b""  # h2 still live


def test_pool_generation_bumps_per_slot():
    pool = make_pool(capacity=1)
    generations = []
    for _ in range(3):
        handle = pool.alloc()
        generations.append(handle.generation)
        pool.free(handle)
    assert generations == [1, 2, 3]


def test_pool_read_at_negative_length_rejected():
    pool = make_pool()
    reads_before = pool.stats.reads
    with pytest.raises(PoolError, match="negative read length"):
        pool.read_at(16, -8)
    assert pool.stats.reads == reads_before  # rejected reads are not counted


def test_pool_oversized_write_rejected():
    pool = make_pool(buffer_size=8)
    handle = pool.alloc()
    with pytest.raises(PoolError, match="exceeds buffer size"):
        pool.write(handle, b"X" * 9)


def test_pool_cross_pool_handles_rejected():
    pool_a = make_pool(name="a")
    pool_b = make_pool(name="b")
    handle = pool_a.alloc()
    with pytest.raises(PoolError, match="belongs to pool"):
        pool_b.read(handle)


def test_pool_read_outside_bounds_rejected():
    pool = make_pool()
    with pytest.raises(PoolError, match="outside pool"):
        pool.read_at(pool.total_bytes - 4, 8)


def test_pool_hugepage_backing():
    pool = make_pool(buffer_size=4096, capacity=1024)  # 4 MiB
    assert pool.hugepages_backing == 2


def test_pool_peak_in_use_tracked():
    pool = make_pool()
    handles = [pool.alloc() for _ in range(3)]
    for handle in handles:
        pool.free(handle)
    assert pool.stats.peak_in_use == 3


# -- registry / isolation -------------------------------------------------------

def test_registry_primary_secondary_attach():
    registry = PoolRegistry()
    registry.create("pool-chain1", file_prefix="chain1-secret")
    pool = registry.attach("pool-chain1", "chain1-secret")
    assert pool.name == "pool-chain1"


def test_registry_wrong_prefix_isolated():
    registry = PoolRegistry()
    registry.create("pool-chain1", file_prefix="chain1-secret")
    with pytest.raises(IsolationError, match="does not own"):
        registry.attach("pool-chain1", "chain2-guess")


def test_registry_duplicate_pool_rejected():
    registry = PoolRegistry()
    registry.create("p", file_prefix="x")
    with pytest.raises(PoolError, match="already exists"):
        registry.create("p", file_prefix="y")


def test_manager_lifecycle_and_unique_prefixes():
    registry = PoolRegistry()
    manager_one = SharedMemoryManager(registry, "chain-1")
    manager_two = SharedMemoryManager(registry, "chain-2")
    assert manager_one.file_prefix != manager_two.file_prefix
    memory = manager_one.initialize(capacity=16)
    assert memory.pool.capacity == 16
    # Attach with the right prefix works; with the other chain's fails.
    manager_one.attach(manager_one.file_prefix)
    with pytest.raises(IsolationError):
        manager_one.attach(manager_two.file_prefix)
    manager_one.teardown()
    assert len(registry) == 0


def test_manager_ring_assignment():
    registry = PoolRegistry()
    manager = SharedMemoryManager(registry, "chain-1")
    manager.initialize()
    ring = manager.create_ring("fn-1", size=64)
    assert ring.size == 64
    with pytest.raises(RuntimeError, match="already owns"):
        manager.create_ring("fn-1")


# -- rings ------------------------------------------------------------------------

def test_ring_size_must_be_power_of_two():
    with pytest.raises(RingError):
        RteRing("r", size=100)


def test_ring_fifo_and_counters():
    ring = RteRing("r", size=4)
    assert ring.enqueue("a")
    assert ring.enqueue("b")
    ok, item = ring.dequeue()
    assert ok and item == "a"
    assert ring.enqueued == 2
    assert ring.dequeued == 1


def test_ring_full_drops():
    ring = RteRing("r", size=2)
    assert ring.enqueue(1)
    assert ring.enqueue(2)
    assert not ring.enqueue(3)
    assert ring.drops == 1


def test_ring_burst_dequeue():
    ring = RteRing("r", size=8)
    for value in range(5):
        ring.enqueue(value)
    burst = ring.dequeue_burst(3)
    assert burst == [0, 1, 2]
    assert ring.count == 2


def test_polling_consumer_burns_core_and_processes_items():
    env = Environment()
    cpu = CpuSet(env, cores=2)
    ring = RteRing("r", size=16)
    seen = []
    consumer = PollingConsumer(
        env, cpu, [ring], handler=seen.append, tag="dpdk-fn"
    )

    def producer(env):
        yield env.timeout(1.0)
        ring.enqueue("x")
        yield env.timeout(1.0)
        ring.enqueue("y")

    env.process(producer(env))
    env.run(until=5.0)
    consumer.stop()
    assert seen == ["x", "y"]
    # The dedicated core was busy for the whole 5 s regardless of traffic.
    assert cpu.accounting.total_busy["dpdk-fn"] == pytest.approx(5.0)


def test_polling_consumer_zero_traffic_still_full_core():
    env = Environment()
    cpu = CpuSet(env, cores=2)
    ring = RteRing("r", size=16)
    consumer = PollingConsumer(env, cpu, [ring], handler=lambda item: None, tag="idle")
    env.run(until=10.0)
    consumer.stop()
    assert cpu.accounting.total_busy["idle"] == pytest.approx(10.0)
    assert consumer.items_processed == 0
