"""Tests for protocol adaptation (§3.6) and the XDP accelerator (§3.5)."""

import json

import pytest

from repro.dataplane.spright import (
    AdapterError,
    AdapterHookPoint,
    CoapAdapter,
    HttpAdapter,
    MqttAdapter,
    SSprightDataplane,
    XdpAccelerator,
)
from repro.dataplane.base import RequestClass
from repro.protocols import (
    CoapCode,
    CoapMessage,
    ConnectPacket,
    HttpRequest,
    PublishPacket,
    PubackPacket,
    encode_request,
)
from repro.runtime import FunctionSpec, WorkerNode


def make_hook():
    hook = AdapterHookPoint()
    hook.load(HttpAdapter())
    hook.load(MqttAdapter())
    hook.load(CoapAdapter())
    return hook


def run_adapt(hook, raw, protocol):
    """Drive the adapt generator outside a simulation (no ops)."""
    generator = hook.adapt(raw, protocol, ops=None)
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def test_http_adapter_extracts_body_and_topic():
    hook = make_hook()
    raw = encode_request(
        HttpRequest(method="POST", path="/orders/new", body=b'{"qty": 3}')
    )
    event, topic, ack = run_adapt(hook, raw, "http")
    assert event.data == b'{"qty": 3}'
    assert topic == "orders.new"
    assert ack == b""
    assert event.type == "com.spright.http.request"


def test_mqtt_adapter_converts_publish_and_acks_qos1():
    hook = make_hook()
    publish = PublishPacket(topic="sensors/1", payload=b"ON", qos=1, packet_id=9)
    event, topic, ack = run_adapt(hook, publish.encode(), "mqtt")
    assert event.data == b"ON"
    assert topic == "sensors/1"
    assert PubackPacket.decode(ack).packet_id == 9


def test_mqtt_adapter_qos0_has_no_ack():
    hook = make_hook()
    publish = PublishPacket(topic="t", payload=b"x", qos=0)
    _, _, ack = run_adapt(hook, publish.encode(), "mqtt")
    assert ack == b""


def test_mqtt_adapter_rejects_non_publish():
    hook = make_hook()
    with pytest.raises(AdapterError, match="PUBLISH"):
        run_adapt(hook, ConnectPacket(client_id="c").encode(), "mqtt")


def test_coap_adapter_converts_post():
    hook = make_hook()
    message = CoapMessage(
        code=CoapCode.POST, message_id=7, uri_path=["garage", "spot4"],
        payload=b"\x01snapshot",
    )
    event, topic, ack = run_adapt(hook, message.encode(), "coap")
    assert event.data == b"\x01snapshot"
    assert topic == "garage.spot4"
    decoded_ack = CoapMessage.decode(ack)
    assert decoded_ack.message_id == 7
    assert decoded_ack.code == CoapCode.CREATED


def test_unknown_protocol_rejected():
    hook = make_hook()
    with pytest.raises(AdapterError, match="no adapter"):
        run_adapt(hook, b"", "ftp")


def test_adapter_load_unload_at_runtime():
    hook = AdapterHookPoint()
    adapter = HttpAdapter()
    hook.load(adapter)
    assert hook.loaded() == ["http"]
    with pytest.raises(AdapterError, match="already loaded"):
        hook.load(HttpAdapter())
    hook.unload("http")
    assert hook.loaded() == []
    with pytest.raises(AdapterError):
        hook.unload("http")


def test_mqtt_session_held_at_gateway():
    hook = make_hook()
    connack = hook.sessions.connect(ConnectPacket(client_id="sensor-1").encode())
    assert connack  # CONNACK bytes
    assert hook.sessions.is_connected("sensor-1")
    hook.sessions.disconnect("sensor-1")
    assert not hook.sessions.is_connected("sensor-1")


def test_handle_raw_end_to_end_mqtt():
    """PUBLISH -> adapter -> shared memory -> chain -> response + PUBACK."""
    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="act", service_time=1e-4)])
    plane.deploy()
    publish = PublishPacket(
        topic="lights/on",
        payload=json.dumps({"room": 4}).encode(),
        qos=1,
        packet_id=11,
    )
    request_class = RequestClass(name="iot", sequence=["act"], payload_size=32)
    outcome = {}

    def driver(env):
        request, ack = yield from plane.handle_raw(
            publish.encode(), "mqtt", request_class
        )
        outcome["request"] = request
        outcome["ack"] = ack

    node.env.process(driver(node.env))
    node.run(until=2.0)
    assert outcome["request"].response == json.dumps({"room": 4}).encode()
    assert PubackPacket.decode(outcome["ack"]).packet_id == 11
    assert plane.adapter_hook.invocations == 1


# -- XDP accelerator ----------------------------------------------------------

def test_xdp_accelerator_counts_redirects_and_passes():
    node = WorkerNode()
    accelerator = XdpAccelerator(node)
    accelerator.install_route("10.0.1.2", ifindex=5)
    ops = node.ops("test")

    def driver(env):
        yield from accelerator.forward(ops, 1000, "10.0.1.2", None, None)
        yield from accelerator.forward(ops, 1000, "203.0.113.9", None, None)

    node.env.process(driver(node.env))
    node.run(until=1.0)
    assert accelerator.redirects == 1
    assert accelerator.passes == 1


def test_xdp_redirect_is_cheaper_than_stack_fallback():
    node = WorkerNode()
    accelerator = XdpAccelerator(node)
    accelerator.install_route("10.0.1.2", ifindex=5)
    times = {}

    def timed(name, dst):
        def proc(env):
            ops = node.ops(name)
            start = env.now
            yield from accelerator.forward(ops, 1400, dst, None, None)
            times[name] = env.now - start

        return proc

    node.env.process(timed("hit", "10.0.1.2")(node.env))
    node.run(until=1.0)
    node.env.process(timed("miss", "198.51.100.1")(node.env))
    node.run(until=2.0)
    assert times["hit"] < times["miss"]


def test_tc_egress_redirect():
    node = WorkerNode()
    accelerator = XdpAccelerator(node)
    node.fib.set_default(ifindex=2)
    ops = node.ops("test")

    def driver(env):
        yield from accelerator.tc_egress(ops, 500, "10.0.9.9", None, None)

    node.env.process(driver(node.env))
    node.run(until=1.0)
    assert accelerator.redirects == 1
