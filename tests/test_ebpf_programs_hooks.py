"""Tests for SPRIGHT's eBPF programs, maps, and hook points."""

import pytest

from repro.kernel.ebpf import (
    ArrayMap,
    Assembler,
    HashMap,
    HookError,
    HookPoint,
    MapError,
    MapRegistry,
    ProgramType,
    R0,
    Scratch,
    SK_DROP,
    SK_PASS,
    SockMap,
    TC_ACT_OK,
    TC_ACT_REDIRECT,
    Vm,
    XDP_PASS,
    XDP_REDIRECT,
    programs,
)
from repro.kernel.fib import FibTable
from repro.kernel.packet import FiveTuple


class FakeSocket:
    """Minimal sockmap endpoint for testing."""

    def __init__(self, name):
        self.name = name
        self.delivered = []

    def deliver_descriptor(self, descriptor):
        self.delivered.append(descriptor)


# -- maps ------------------------------------------------------------------

def test_hashmap_basic_crud():
    table = HashMap(max_entries=2)
    table.update(1, "a")
    table.update(2, "b")
    assert table.lookup(1) == "a"
    table.delete(1)
    assert table.lookup(1) is None


def test_hashmap_capacity_enforced():
    table = HashMap(max_entries=1)
    table.update(1, "a")
    with pytest.raises(MapError, match="full"):
        table.update(2, "b")
    table.update(1, "c")  # overwriting an existing key is fine
    assert table.lookup(1) == "c"


def test_hashmap_delete_missing_key_errors():
    table = HashMap(max_entries=4)
    with pytest.raises(MapError, match="not found"):
        table.delete(9)


def test_array_map_bounds_and_add():
    array = ArrayMap(max_entries=4)
    assert array.lookup(0) == 0
    array.update(3, 7)
    assert array.lookup(3) == 7
    assert array.lookup(4) is None
    with pytest.raises(MapError):
        array.update(4, 1)
    with pytest.raises(MapError, match="delete"):
        array.delete(0)


def test_sockmap_requires_socket_endpoints():
    sockmap = SockMap(max_entries=4)
    with pytest.raises(MapError, match="socket endpoints"):
        sockmap.update(1, "not a socket")
    sockmap.update(1, FakeSocket("fn-1"))
    assert sockmap.lookup(1).name == "fn-1"


def test_map_registry_fds_are_unique():
    registry = MapRegistry()
    fd_a = registry.create(HashMap(max_entries=2))
    fd_b = registry.create(HashMap(max_entries=2))
    assert fd_a != fd_b
    registry.close(fd_a)
    with pytest.raises(MapError):
        registry.get(fd_a)


# -- SPROXY redirect program ---------------------------------------------

def make_sproxy_env():
    registry = MapRegistry()
    sockmap = SockMap(max_entries=16, name="spright_sockmap")
    fd = registry.create(sockmap)
    vm = Vm(registry)
    return registry, sockmap, fd, vm


def test_sproxy_redirect_hits_sockmap():
    registry, sockmap, fd, vm = make_sproxy_env()
    target = FakeSocket("fn-2")
    sockmap.update(2, target)
    program = programs.sproxy_redirect(sockmap_fd=fd)
    ctx = programs.encode_descriptor_ctx(
        next_fn_id=2, shm_offset=4096, payload_len=100, sender_id=1
    )
    result = vm.run(program, data=ctx)
    assert result.return_value == SK_PASS
    assert result.scratch.redirect_endpoint is target


def test_sproxy_redirect_drops_on_unknown_function():
    registry, sockmap, fd, vm = make_sproxy_env()
    program = programs.sproxy_redirect(sockmap_fd=fd)
    ctx = programs.encode_descriptor_ctx(99, 0, 0, 1)
    result = vm.run(program, data=ctx)
    assert result.return_value == SK_DROP
    assert result.scratch.redirect_endpoint is None


def test_sproxy_filtered_redirect_allows_authorized_pair():
    registry, sockmap, sock_fd, vm = make_sproxy_env()
    filters = HashMap(max_entries=64, name="filter")
    filter_fd = registry.create(filters)
    sockmap.update(2, FakeSocket("fn-2"))
    filters.update((1 << 16) | 2, 1)  # fn-1 -> fn-2 allowed
    program = programs.sproxy_filtered_redirect(filter_fd, sock_fd)
    ctx = programs.encode_descriptor_ctx(2, 0, 64, sender_id=1)
    assert vm.run(program, data=ctx).return_value == SK_PASS


def test_sproxy_filtered_redirect_drops_unauthorized_pair():
    registry, sockmap, sock_fd, vm = make_sproxy_env()
    filters = HashMap(max_entries=64)
    filter_fd = registry.create(filters)
    sockmap.update(2, FakeSocket("fn-2"))
    # No rule for sender 7 -> fn 2.
    program = programs.sproxy_filtered_redirect(filter_fd, sock_fd)
    ctx = programs.encode_descriptor_ctx(2, 0, 64, sender_id=7)
    result = vm.run(program, data=ctx)
    assert result.return_value == SK_DROP
    assert result.scratch.redirect_endpoint is None


# -- metric programs ----------------------------------------------------------

def test_sproxy_l7_metrics_counts_requests_and_bytes():
    registry = MapRegistry()
    metrics = ArrayMap(max_entries=2, name="metrics")
    fd = registry.create(metrics)
    vm = Vm(registry)
    program = programs.sproxy_l7_metrics(fd)
    for length in (100, 250):
        ctx = programs.encode_descriptor_ctx(1, 0, length, 0)
        assert vm.run(program, data=ctx).return_value == SK_PASS
    assert metrics.lookup(programs.METRIC_SLOT_COUNT) == 2
    assert metrics.lookup(programs.METRIC_SLOT_BYTES) == 350


def test_eproxy_l3_metrics_counts_packets():
    registry = MapRegistry()
    metrics = ArrayMap(max_entries=2)
    fd = registry.create(metrics)
    vm = Vm(registry)
    program = programs.eproxy_l3_metrics(fd)
    ctx = programs.encode_packet_ctx(pkt_len=1500, ingress_ifindex=3)
    assert vm.run(program, data=ctx).return_value == TC_ACT_OK
    assert metrics.lookup(0) == 1
    assert metrics.lookup(1) == 1500


# -- XDP/TC forwarding -----------------------------------------------------

def test_xdp_forward_redirects_on_fib_hit():
    vm = Vm()
    fib = FibTable()
    fib.add_route("10.0.0.2", ifindex=4)
    flow = FiveTuple("10.0.0.1", "10.0.0.2", 1111, 80)
    scratch = Scratch(map_registry=vm.map_registry, fib=fib, packet_flow=flow)
    result = vm.run(
        programs.xdp_fib_forward(), data=programs.encode_packet_ctx(100, 1), scratch=scratch
    )
    assert result.return_value == XDP_REDIRECT
    assert result.scratch.redirect_ifindex == 4


def test_xdp_forward_passes_on_fib_miss():
    vm = Vm()
    fib = FibTable()  # empty, no default
    flow = FiveTuple("10.0.0.1", "10.9.9.9", 1111, 80)
    scratch = Scratch(map_registry=vm.map_registry, fib=fib, packet_flow=flow)
    result = vm.run(
        programs.xdp_fib_forward(), data=programs.encode_packet_ctx(100, 1), scratch=scratch
    )
    assert result.return_value == XDP_PASS


def test_tc_forward_redirects_on_fib_hit():
    vm = Vm()
    fib = FibTable()
    fib.set_default(ifindex=9)
    flow = FiveTuple("10.0.0.1", "172.16.0.5", 1111, 80)
    scratch = Scratch(map_registry=vm.map_registry, fib=fib, packet_flow=flow)
    result = vm.run(
        programs.tc_fib_forward(), data=programs.encode_packet_ctx(200, 2), scratch=scratch
    )
    assert result.return_value == TC_ACT_REDIRECT
    assert result.scratch.redirect_ifindex == 9


# -- hook points ----------------------------------------------------------------

def test_hook_rejects_wrong_program_type():
    vm = Vm()
    hook = HookPoint("xdp@eth0", ProgramType.XDP, vm)
    with pytest.raises(HookError, match="cannot attach"):
        hook.attach(programs.tc_fib_forward())


def test_hook_verifies_at_attach_time():
    from repro.kernel.ebpf.verifier import VerifierError

    vm = Vm()
    hook = HookPoint("xdp@eth0", ProgramType.XDP, vm)
    bad = Assembler("bad").mov_imm(R0, 1)  # falls off the end
    with pytest.raises(VerifierError):
        hook.attach(bad.build(ProgramType.XDP))


def test_hook_runs_programs_in_order_and_counts_work():
    vm = Vm()
    hook = HookPoint("sk_msg@fn", ProgramType.SK_MSG, vm)
    registry = vm.map_registry
    metrics = ArrayMap(max_entries=2)
    fd = registry.create(metrics)
    sockmap = SockMap(max_entries=4)
    sock_fd = registry.create(sockmap)
    sockmap.update(1, FakeSocket("fn-1"))

    hook.attach(programs.sproxy_l7_metrics(fd))
    hook.attach(programs.sproxy_redirect(sock_fd))
    ctx = programs.encode_descriptor_ctx(1, 0, 42, 0)
    run = hook.fire(data=ctx)
    assert run.verdict == SK_PASS
    assert metrics.lookup(0) == 1
    assert run.insns_executed > 10
    assert hook.fire_count == 1


def test_unarmed_hook_does_no_work():
    vm = Vm()
    hook = HookPoint("tc@veth", ProgramType.TC, vm)
    assert not hook.is_armed
    run = hook.fire(data=b"\x00" * 16)
    assert run.insns_executed == 0
    assert run.verdict == 0


def test_hook_detach():
    vm = Vm()
    hook = HookPoint("xdp@eth0", ProgramType.XDP, vm)
    program = programs.xdp_fib_forward()
    hook.attach(program)
    hook.detach(program)
    assert not hook.is_armed
    with pytest.raises(HookError):
        hook.detach(program)


def test_xdp_rate_limiter_enforces_window_budget():
    registry = MapRegistry()
    counter = ArrayMap(max_entries=1, name="window")
    fd = registry.create(counter)
    vm = Vm(registry)
    program = programs.xdp_rate_limiter(fd, limit_per_window=3)
    verdicts = [vm.run(program).return_value for _ in range(5)]
    from repro.kernel.ebpf import XDP_DROP, XDP_PASS

    assert verdicts == [XDP_PASS, XDP_PASS, XDP_PASS, XDP_DROP, XDP_DROP]
    # Userspace window reset restores the budget.
    counter.update(0, 0)
    assert vm.run(program).return_value == XDP_PASS


def test_xdp_rate_limiter_verifies_and_attaches():
    from repro.kernel.ebpf import HookPoint, ProgramType, verify

    registry = MapRegistry()
    fd = registry.create(ArrayMap(max_entries=1))
    program = programs.xdp_rate_limiter(fd, 100)
    verify(program)
    vm = Vm(registry)
    hook = HookPoint("xdp@eth0", ProgramType.XDP, vm)
    hook.attach(program)
    assert hook.is_armed
