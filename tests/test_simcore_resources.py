"""Unit tests for stores, resources, CPU set, and random streams."""

import pytest

from repro.simcore import (
    CpuSet,
    Environment,
    PriorityItem,
    PriorityStore,
    RandomStreams,
    Resource,
    Store,
)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in ("a", "b", "c"):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(5)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(5, "late")]


def test_bounded_store_blocks_put_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put(1)
        log.append(("put1", env.now))
        yield store.put(2)
        log.append(("put2", env.now))

    def consumer(env):
        yield env.timeout(4)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put1", 0), ("put2", 4)]


def test_store_try_put_and_try_get():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("x")
    assert not store.try_put("y")
    ok, item = store.try_get()
    assert ok and item == "x"
    ok, _ = store.try_get()
    assert not ok


def test_store_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get(filter=lambda value: value % 2 == 0)
        got.append(item)

    def producer(env):
        yield store.put(1)
        yield store.put(3)
        yield store.put(4)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_priority_store_orders_by_priority():
    env = Environment()
    store = PriorityStore(env)
    out = []

    def producer(env):
        yield store.put(PriorityItem(3, "low"))
        yield store.put(PriorityItem(1, "high"))
        yield store.put(PriorityItem(2, "mid"))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            out.append(item.item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == ["high", "mid", "low"]


def test_resource_serializes_users():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(env, name, hold):
        request = resource.request()
        yield request
        log.append((name, "start", env.now))
        yield env.timeout(hold)
        resource.release(request)
        log.append((name, "end", env.now))

    env.process(user(env, "a", 2))
    env.process(user(env, "b", 1))
    env.run()
    assert log == [
        ("a", "start", 0),
        ("a", "end", 2),
        ("b", "start", 2),
        ("b", "end", 3),
    ]


def test_resource_capacity_two_runs_in_parallel():
    env = Environment()
    resource = Resource(env, capacity=2)
    ends = []

    def user(env):
        with (yield resource.request()) if False else resource.request() as request:
            yield request
            yield env.timeout(1)
        ends.append(env.now)

    for _ in range(2):
        env.process(user(env))
    env.run()
    assert ends == [1, 1]


def test_cpu_execute_charges_busy_time():
    env = Environment()
    cpu = CpuSet(env, cores=2, bucket_width=1.0)

    def work(env):
        yield cpu.execute(0.5, tag="fn")

    env.process(work(env))
    env.run()
    assert cpu.accounting.total_busy["fn"] == pytest.approx(0.5)
    assert cpu.accounting.usage_percent("fn", 0) == pytest.approx(50.0)


def test_cpu_contention_queues_work():
    env = Environment()
    cpu = CpuSet(env, cores=1)
    completions = []

    def work(env, name):
        yield cpu.execute(1.0, tag=name)
        completions.append((name, env.now))

    env.process(work(env, "a"))
    env.process(work(env, "b"))
    env.run()
    assert completions == [("a", 1.0), ("b", 2.0)]


def test_cpu_two_cores_run_in_parallel():
    env = Environment()
    cpu = CpuSet(env, cores=2)
    completions = []

    def work(env, name):
        yield cpu.execute(1.0, tag=name)
        completions.append((name, env.now))

    env.process(work(env, "a"))
    env.process(work(env, "b"))
    env.run()
    assert [time for _, time in completions] == [1.0, 1.0]


def test_dedicated_core_charges_wall_time():
    env = Environment()
    cpu = CpuSet(env, cores=2)
    handle = cpu.dedicate(tag="dpdk")
    assert cpu.shared_cores == 1

    def later(env):
        yield env.timeout(10)
        handle.release()

    env.process(later(env))
    env.run()
    assert cpu.accounting.total_busy["dpdk"] == pytest.approx(10.0)
    assert cpu.shared_cores == 2


def test_dedicated_core_checkpoint_flushes_partial_time():
    env = Environment()
    cpu = CpuSet(env, cores=1)
    # With the only core dedicated, execute() must fail.
    handle = cpu.dedicate(tag="poll")

    def sampler(env):
        yield env.timeout(3)
        handle.checkpoint()

    env.process(sampler(env))
    env.run()
    assert cpu.accounting.total_busy["poll"] == pytest.approx(3.0)
    with pytest.raises(RuntimeError):
        cpu.execute(0.1, tag="x")


def test_cpu_bucket_splitting_across_boundaries():
    env = Environment()
    cpu = CpuSet(env, cores=1, bucket_width=1.0)

    def work(env):
        yield env.timeout(0.6)
        yield cpu.execute(0.8, tag="fn")

    env.process(work(env))
    env.run()
    # 0.4 s lands in bucket 0, 0.4 s in bucket 1.
    assert cpu.accounting.usage_percent("fn", 0) == pytest.approx(40.0)
    assert cpu.accounting.usage_percent("fn", 1) == pytest.approx(40.0)


def test_cycles_conversion():
    env = Environment()
    cpu = CpuSet(env, cores=1, freq_hz=2.2e9)
    assert cpu.cycles_to_seconds(2.2e9) == pytest.approx(1.0)


def test_utilization_counts_all_tags():
    env = Environment()
    cpu = CpuSet(env, cores=2)

    def work(env):
        yield cpu.execute(1.0, tag="a")

    env.process(work(env))
    env.run(until=2.0)
    assert cpu.utilization() == pytest.approx(1.0 / 4.0)


def test_random_streams_are_independent_and_reproducible():
    streams_one = RandomStreams(root_seed=7)
    streams_two = RandomStreams(root_seed=7)
    draw_a = streams_one.stream("alpha").random()
    # Interleave a different stream; "alpha" in streams_two must still match.
    streams_two.stream("beta").random()
    draw_b = streams_two.stream("alpha").random()
    assert draw_a == draw_b


def test_random_streams_differ_across_names():
    streams = RandomStreams(root_seed=7)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_lognormal_service_mean_roughly_matches():
    streams = RandomStreams(root_seed=11)
    samples = [streams.lognormal_service("svc", mean=0.010, cv=0.3) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 0.009 < mean < 0.011


def test_exponential_requires_positive_mean():
    streams = RandomStreams()
    with pytest.raises(ValueError):
        streams.exponential("x", 0)
