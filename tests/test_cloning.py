"""Tests for the request-cloning lab: PS queue, oracle, clone semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloning import (
    expected_min_service,
    optimal_clone_factor,
    ps_response_time,
    run_clone_point,
)
from repro.faults import ResiliencePolicy, clone_cost_for_plane
from repro.simcore import Environment, PsServer


# -- the processor-sharing queue ---------------------------------------------------

def test_ps_lone_job_runs_at_full_speed():
    env = Environment()
    server = PsServer(env)
    job = server.submit(0.01, "t")
    env.run(until=1.0)
    assert job.finished
    assert env.now == pytest.approx(1.0)
    assert server.busy_time == pytest.approx(0.01)


def test_ps_two_jobs_split_capacity():
    env = Environment()
    server = PsServer(env)
    a = server.submit(0.01, "t")
    b = server.submit(0.01, "t")
    done_at = {}
    a.done.callbacks.append(lambda event: done_at.setdefault("a", env.now))
    b.done.callbacks.append(lambda event: done_at.setdefault("b", env.now))
    env.run(until=1.0)
    # Equal work, started together: both stretch to 2x and finish together.
    assert done_at["a"] == pytest.approx(0.02)
    assert done_at["b"] == pytest.approx(0.02)


def test_ps_cancel_returns_share_to_survivors():
    env = Environment()
    server = PsServer(env)
    survivor = server.submit(0.02, "t")
    victim = server.submit(0.02, "t")
    finished_at = {}
    survivor.done.callbacks.append(lambda event: finished_at.setdefault("s", env.now))

    def cancel_at(when):
        yield env.timeout(when)
        assert server.cancel(victim) is True
        assert server.cancel(victim) is False  # idempotent

    env.process(cancel_at(0.01))
    env.run(until=1.0)
    # 0.01 s shared (0.005 done) + 0.015 remaining at full speed = 0.025.
    assert finished_at["s"] == pytest.approx(0.025)
    assert victim.cancelled and not victim.finished
    assert server.jobs_cancelled == 1


def test_ps_zero_work_completes_immediately():
    env = Environment()
    server = PsServer(env)
    job = server.submit(0.0, "t")
    assert job.finished
    assert server.jobs_completed == 1


def test_ps_per_job_cap_limits_lone_job():
    env = Environment()
    server = PsServer(env, capacity=4.0, per_job_cap=1.0)
    job = server.submit(0.01, "t")
    done_at = []
    job.done.callbacks.append(lambda event: done_at.append(env.now))
    env.run(until=1.0)
    # capacity 4 but one job is capped at one core-equivalent.
    assert done_at[0] == pytest.approx(0.01)


# -- the analytic oracle -----------------------------------------------------------

def test_expected_min_service_closed_forms():
    assert expected_min_service(1.0, 4, "exp") == pytest.approx(0.25)
    assert expected_min_service(1.0, 4, "deterministic") == pytest.approx(1.0)
    with pytest.raises(ValueError):
        expected_min_service(1.0, 4, "lognormal")
    with pytest.raises(ValueError):
        expected_min_service(1.0, 0, "exp")


def test_ps_response_time_and_stability():
    # M/M/1-PS sanity at d=1: T = S / (1 - rho).
    assert ps_response_time(500.0, 1e-3, 1, "exp") == pytest.approx(2e-3)
    # cloning to 2 halves the effective service under exp
    assert ps_response_time(500.0, 1e-3, 2, "exp") == pytest.approx(
        0.5e-3 / (1 - 0.25)
    )
    assert ps_response_time(1000.0, 1e-3, 1, "exp") == float("inf")  # rho = 1


def test_optimal_clone_factor_regimes():
    # exponential at modest load: min-of-d keeps winning, d* > 1
    d_exp, _ = optimal_clone_factor(200.0, 1e-3, 4, "exp")
    assert d_exp > 1
    # deterministic: extra copies are pure waste, d* = 1
    d_det, _ = optimal_clone_factor(200.0, 1e-3, 4, "deterministic")
    assert d_det == 1


# -- DES vs oracle (the validated regimes) -----------------------------------------

def test_lab_matches_oracle_exp_regime():
    smin = expected_min_service(1e-3, 2, "exp")
    result = run_clone_point(
        0.5 / smin, 1e-3, 2, dist="exp", duration=8.0, warmup=1.0
    )
    assert result.failed == 0
    assert result.within(0.05), (
        f"exp regime off by {result.relative_error:.1%}"
    )


def test_lab_matches_oracle_deterministic_regime():
    smin = expected_min_service(1e-3, 2, "deterministic")
    result = run_clone_point(
        0.5 / smin, 1e-3, 2, dist="deterministic", duration=8.0, warmup=1.0
    )
    assert result.failed == 0
    assert result.within(0.05), (
        f"deterministic regime off by {result.relative_error:.1%}"
    )


# -- clone semantics ---------------------------------------------------------------

def test_clones_race_and_losers_cancel_cleanly():
    result = run_clone_point(300.0, 1e-3, 3, dist="exp", duration=2.0, warmup=0.0)
    counters = result.node.counters.as_dict()
    rounds = counters["cloning/win_clone"] + counters["cloning/win_primary"]
    assert rounds == result.completed
    # every round launched d-1 = 2 clones...
    assert counters["cloning/clones"] == 2 * rounds
    # ...and cancelled its losers (ties can complete together, hence <=)
    assert 0 < counters["cloning/cancelled"] <= counters["cloning/clones"]
    # with exp service the clone wins a decent share of races
    assert counters["cloning/win_clone"] > 0


def test_cancelled_clones_leak_nothing_from_ps_pods():
    result = run_clone_point(300.0, 1e-3, 3, dist="exp", duration=2.0, warmup=0.0)
    # quiesce: no in-flight requests, no queued PS jobs, no held slots
    result.node.run(until=3.0)
    assert result.pods
    for pod in result.pods:
        assert pod.in_flight == 0
        assert pod._ps is not None and not pod._ps._jobs


def test_clone_cost_models_per_plane():
    spright = clone_cost_for_plane("s-spright")
    knative = clone_cost_for_plane("knative")
    grpc = clone_cost_for_plane("grpc")
    assert spright.kind == "descriptor" and spright.per_byte == 0.0
    assert knative.kind == "marshal" and knative.per_byte > 0.0
    # descriptors don't scale with payload; marshals dwarf them at 16 KB
    assert spright.cost(16384) < 1e-6 < knative.cost(16384)
    assert grpc.cost(16384) < knative.cost(16384)
    with pytest.raises(KeyError):
        clone_cost_for_plane("mystery-plane")
    with pytest.raises(ValueError):
        ResiliencePolicy(clone_factor=0)


# -- determinism + conservation properties -----------------------------------------

@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_same_seed_same_clone_decisions_and_completion_order(seed):
    """Byte-identical replay: same seed => same clone wins, same completion
    order (samples append in completion order), same counters."""
    runs = [
        run_clone_point(400.0, 1e-3, 2, dist="exp", duration=1.0, warmup=0.0, seed=seed)
        for _ in range(2)
    ]
    assert runs[0].samples == runs[1].samples
    first, second = (
        {
            name: count
            for name, count in run.node.counters.as_dict().items()
            if name.startswith("cloning/")
        }
        for run in runs
    )
    assert first == second


@settings(max_examples=20, deadline=None)
@given(
    works=st.lists(
        st.floats(min_value=1e-4, max_value=0.05, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
def test_ps_conserves_total_work_vs_fcfs(works):
    """A batch released together finishes when the total work is done —
    PS reorders completions but never creates or destroys work, so the
    makespan equals the FCFS makespan (sum of service times)."""
    env = Environment()
    server = PsServer(env)
    jobs = [server.submit(work, "t") for work in works]
    env.run(until=sum(works) + 1.0)
    assert all(job.finished for job in jobs)
    assert server.busy_time == pytest.approx(sum(works), rel=1e-9)
    # work conservation: the last completion lands exactly at sum(works)
    assert env.now >= sum(works)


# -- clone storm under the sanitizer (leak guard) ----------------------------------

def test_clone_storm_sanitize_reports_zero_leaks():
    from repro.experiments.cloning_exp import sweep_function, sweep_request_class
    from repro.experiments.common import run_closed_loop

    result = run_closed_loop(
        "s-spright",
        [sweep_function()],
        [sweep_request_class()],
        concurrency=4,
        duration=2.0,
        scale=0.1,
        client_overhead=0.002,
        sanitize=True,
        resilience=ResiliencePolicy(
            clone_factor=3, clone_cost=clone_cost_for_plane("s-spright")
        ),
    )
    counters = result.node.counters.as_dict()
    assert counters.get("cloning/clones", 0) > 0, "the storm must actually clone"
    # quiesce so the teardown check is honest, then: zero leaked slots and
    # zero orphan reclaims — cancelled clones freed their own handles.
    result.node.run(until=3.0)
    runtime = result.plane_obj.runtime
    assert runtime.sanitizer is not None
    leaked = runtime.sanitizer.check_teardown(runtime.pool)
    assert len(leaked) == 0
    assert runtime.sanitizer.orphan_reclaims == 0
    assert counters.get("sanitizer/orphan_reclaims", 0) == 0
