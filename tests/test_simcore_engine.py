"""Unit tests for the DES engine: events, processes, run loop."""

import pytest

from repro.simcore import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(1.5)
        log.append(env.now)
        yield env.timeout(0.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [1.5, 2.0]


def test_timeout_value_is_delivered():
    env = Environment()
    results = []

    def proc(env):
        value = yield env.timeout(1, value="payload")
        results.append(value)

    env.process(proc(env))
    env.run()
    assert results == ["payload"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_horizon():
    env = Environment()
    ticks = []

    def clock(env):
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(clock(env))
    env.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2


def test_run_until_past_time_rejected():
    env = Environment()
    env.process(iter_timeout(env, 5))
    env.run(until=4)
    with pytest.raises(ValueError):
        env.run(until=1)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_process_waits_on_custom_event():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(3)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(3, "open")]


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as error:
            caught.append(str(error))

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_interrupt_is_delivered_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(2)
        victim.interrupt(cause="teardown")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2, "teardown")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    victim = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        victim.interrupt()


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        first = env.timeout(1, value="a")
        second = env.timeout(3, value="b")
        result = yield first & second
        times.append(env.now)
        values = result.todict()
        assert set(values.values()) == {"a", "b"}

    env.process(proc(env))
    env.run()
    assert times == [3]


def test_any_of_fires_on_first_event():
    env = Environment()
    times = []

    def proc(env):
        slow = env.timeout(9)
        fast = env.timeout(2, value="fast")
        result = yield slow | fast
        times.append(env.now)
        assert fast in result

    env.process(proc(env))
    env.run()
    assert times == [2]


def test_equal_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def make(tag):
        def proc(env):
            yield env.timeout(1)
            order.append(tag)

        return proc

    for tag in ("a", "b", "c"):
        env.process(make(tag)(env))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_process_return_value_propagates_to_waiter():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == ["child-result"]


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 17

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()
