"""Tests for HTTP/2 framing and HPACK (the gRPC transport layer)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.http2 import (
    CONNECTION_PREFACE,
    DEFAULT_MAX_FRAME_SIZE,
    Flags,
    Frame,
    FrameType,
    HpackCodec,
    Http2Error,
    decode_frames,
    decode_grpc_request,
    decode_integer,
    encode_grpc_request,
    encode_integer,
    grpc_request_headers,
)


# -- frames ---------------------------------------------------------------------

def test_frame_roundtrip():
    frame = Frame(FrameType.DATA, flags=Flags.END_STREAM, stream_id=3, payload=b"abc")
    decoded, offset = Frame.decode(frame.encode())
    assert decoded == frame
    assert offset == 9 + 3


def test_frame_stream_id_31_bits():
    with pytest.raises(Http2Error):
        Frame(FrameType.DATA, stream_id=2**31).encode()


def test_frame_truncated_payload():
    raw = Frame(FrameType.DATA, stream_id=1, payload=b"abcdef").encode()[:-2]
    with pytest.raises(Http2Error, match="truncated frame payload"):
        Frame.decode(raw)


def test_decode_frames_sequence():
    raw = (
        Frame(FrameType.SETTINGS).encode()
        + Frame(FrameType.HEADERS, stream_id=1, payload=b"h").encode()
        + Frame(FrameType.DATA, stream_id=1, payload=b"d").encode()
    )
    frames = decode_frames(raw)
    assert [frame.frame_type for frame in frames] == [
        FrameType.SETTINGS,
        FrameType.HEADERS,
        FrameType.DATA,
    ]


def test_connection_preface_constant():
    assert CONNECTION_PREFACE.startswith(b"PRI * HTTP/2.0")


# -- HPACK integers ---------------------------------------------------------------

def test_hpack_integer_small_fits_prefix():
    assert encode_integer(10, 5) == bytes([10])


def test_hpack_integer_rfc_example():
    # RFC 7541 C.1.2: 1337 with 5-bit prefix -> 1f 9a 0a
    assert encode_integer(1337, 5) == bytes([0x1F, 0x9A, 0x0A])
    value, offset = decode_integer(bytes([0x1F, 0x9A, 0x0A]), 0, 5)
    assert value == 1337
    assert offset == 3


@given(value=st.integers(min_value=0, max_value=2**30), prefix=st.integers(min_value=1, max_value=8))
def test_hpack_integer_roundtrip_property(value, prefix):
    raw = encode_integer(value, prefix)
    decoded, offset = decode_integer(raw, 0, prefix)
    assert decoded == value
    assert offset == len(raw)


# -- HPACK headers ---------------------------------------------------------------

def test_hpack_static_table_fully_indexed():
    codec = HpackCodec()
    block = codec.encode([(":method", "POST")])
    assert block == bytes([0x80 | 3])  # static index 3, one byte


def test_hpack_roundtrip_with_dynamic_table():
    encoder = HpackCodec()
    decoder = HpackCodec()
    headers = grpc_request_headers("/hipstershop.CartService/AddItem")
    block_one = encoder.encode(headers)
    assert decoder.decode(block_one) == headers
    # Second identical request compresses much better (dynamic table hits).
    block_two = encoder.encode(headers)
    assert len(block_two) < len(block_one)
    assert decoder.decode(block_two) == headers
    assert encoder.dynamic_entries == decoder.dynamic_entries


def test_hpack_dynamic_table_eviction():
    codec = HpackCodec(max_table_size=40)  # each entry is 36 bytes: 1 fits
    codec.encode([("x-a", "1"), ("x-b", "2"), ("x-c", "3")])
    assert codec.dynamic_entries == 1  # older entries evicted


def test_hpack_decoder_rejects_bad_index():
    codec = HpackCodec()
    with pytest.raises(Http2Error, match="beyond table"):
        codec.decode(bytes([0x80 | 0x7F, 0x7F]))  # enormous index


def test_hpack_rejects_huffman():
    codec = HpackCodec()
    # Literal with incremental indexing, new name, H bit set.
    raw = bytes([0x40, 0x81, 0xFF])
    with pytest.raises(Http2Error, match="Huffman"):
        codec.decode(raw)


@given(
    headers=st.lists(
        st.tuples(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="-"),
                min_size=1,
                max_size=20,
            ),
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="/-_."),
                max_size=40,
            ),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_hpack_roundtrip_property(headers):
    encoder = HpackCodec()
    decoder = HpackCodec()
    for _ in range(2):  # decoding twice exercises the dynamic table
        block = encoder.encode(headers)
        assert decoder.decode(block) == headers


# -- gRPC over HTTP/2 -----------------------------------------------------------------

def test_grpc_request_roundtrip():
    encoder = HpackCodec()
    decoder = HpackCodec()
    from repro.protocols import GrpcCall, ProtoMessage

    call = GrpcCall(
        service="hipstershop.CurrencyService",
        method="Convert",
        message=ProtoMessage().set(1, "USD").set(2, 1999),
    )
    wire = encode_grpc_request(encoder, call.path, call.encode())
    path, frame = decode_grpc_request(decoder, wire)
    assert path == "/hipstershop.CurrencyService/Convert"
    decoded = GrpcCall.decode(path, frame)
    assert decoded.message.get_int(2) == 1999


def test_grpc_large_message_splits_into_data_frames():
    codec = HpackCodec()
    payload = b"z" * (DEFAULT_MAX_FRAME_SIZE + 100)
    wire = encode_grpc_request(codec, "/svc/Method", payload)
    frames = decode_frames(wire)
    data_frames = [frame for frame in frames if frame.frame_type is FrameType.DATA]
    assert len(data_frames) == 2
    assert data_frames[0].flags & Flags.END_STREAM == 0
    assert data_frames[1].flags & Flags.END_STREAM
    _, body = decode_grpc_request(HpackCodec(), wire)
    assert body == payload


def test_grpc_request_requires_path():
    with pytest.raises(Http2Error, match=":path"):
        decode_grpc_request(
            HpackCodec(), Frame(FrameType.DATA, stream_id=1, payload=b"x").encode()
        )
