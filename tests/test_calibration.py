"""Calibration tests: the §3.2.2 spot measurements must land in band.

The paper's absolute numbers came from a Cloudlab testbed; the simulation's
must preserve the *orderings* and *rough factors* the paper's conclusions
rest on. These tests run the Fig 5 microbenchmark (2-function chain,
ab-style closed loop) and assert each quoted relationship.
"""

import pytest

from repro.experiments import fig5


@pytest.fixture(scope="module")
def points():
    out = {}
    for plane in ("knative", "s-spright", "d-spright"):
        for concurrency in (1, 32):
            out[(plane, concurrency)] = fig5.run_point(plane, concurrency, duration=1.0)
    return out


def test_latency_ordering_at_low_concurrency(points):
    """Paper @32: D 0.02 ms < S 0.024 ms << Kn 0.138 ms."""
    knative = points[("knative", 1)].mean_latency_ms
    s_spright = points[("s-spright", 1)].mean_latency_ms
    d_spright = points[("d-spright", 1)].mean_latency_ms
    assert d_spright < s_spright < knative
    # Knative is several-fold slower than S-SPRIGHT (paper: ~5.8x).
    assert 2.0 < knative / s_spright < 12.0


def test_spright_latency_sub_millisecond(points):
    assert points[("s-spright", 1)].mean_latency_ms < 0.5
    assert points[("d-spright", 1)].mean_latency_ms < 0.5


def test_rps_advantage_at_concurrency_32(points):
    """Paper: D 50.3K / S 41.7K vs Kn 7.2K — a ~5.7x gap."""
    knative = points[("knative", 32)].rps
    s_spright = points[("s-spright", 32)].rps
    assert 3.0 < s_spright / knative < 12.0


def test_cpu_ordering_at_concurrency_1(points):
    """Paper: S 32% << Kn 143% << D 308% at concurrency 1."""
    knative = points[("knative", 1)].total_cpu
    s_spright = points[("s-spright", 1)].total_cpu
    d_spright = points[("d-spright", 1)].total_cpu
    assert s_spright < knative < d_spright
    # S-SPRIGHT is many-fold cheaper than polling (paper: 9.6x).
    assert d_spright / s_spright > 5.0


def test_spright_cpu_is_load_proportional(points):
    """CPU grows with load for S-SPRIGHT; D's poll floor dominates at idle."""
    s_low = points[("s-spright", 1)].total_cpu
    s_high = points[("s-spright", 32)].total_cpu
    assert s_high > 5.0 * s_low
    d_low = points[("d-spright", 1)].total_cpu
    d_high = points[("d-spright", 32)].total_cpu
    assert d_high < 3.0 * d_low  # mostly the same spinning cores


def test_knative_queue_proxies_dominate_its_cpu(points):
    """Paper: the queue proxy consumes 70% of Knative's CPU."""
    knative = points[("knative", 32)]
    assert 0.4 < knative.queue_proxy_cpu / knative.total_cpu < 0.95


def test_knative_cpu_explodes_under_concurrency(points):
    """Paper: 143% at c=1 -> 1585% at c=32 (an ~11x jump)."""
    low = points[("knative", 1)].total_cpu
    high = points[("knative", 32)].total_cpu
    assert high / low > 4.0
