"""Tests for the generation-tagged memory sanitizer (repro.mem.sanitizer).

Covers the violation classes it must catch — use-after-free (stale handles
and stale descriptors), double free, stale free, cross-pool confusion,
boundary-straddling descriptor ranges, and teardown leaks with allocation
sites — plus end-to-end checked-mode runs of both SPRIGHT dataplanes.
"""

import pytest

from repro.dataplane import (
    DSprightDataplane,
    Request,
    RequestClass,
    SprightParams,
    SSprightDataplane,
)
from repro.mem import (
    PacketDescriptor,
    PoolError,
    PoolRegistry,
    PoolSanitizer,
    SanitizerError,
    SharedMemoryManager,
    SharedMemoryPool,
    ViolationKind,
    default_sanitize,
    set_default_sanitize,
)
from repro.runtime import FunctionSpec, WorkerNode
from repro.stats import Counter


def make_sanitized_pool(**kwargs):
    defaults = dict(name="p", file_prefix="pfx", buffer_size=128, capacity=4)
    defaults.update(kwargs)
    pool = SharedMemoryPool(**defaults)
    sanitizer = PoolSanitizer(counter=Counter())
    pool.attach_sanitizer(sanitizer)
    return pool, sanitizer


# -- violation classes ---------------------------------------------------------

def test_use_after_free_counted():
    pool, sanitizer = make_sanitized_pool()
    handle = pool.alloc(site="test/uaf")
    pool.free(handle)
    pool.alloc()  # recycle the slot
    with pytest.raises(PoolError):
        pool.read(handle)
    assert sanitizer.counter.get("sanitizer/use_after_free") == 1
    assert sanitizer.counts() == {"use_after_free": 1}


def test_double_free_counted():
    pool, sanitizer = make_sanitized_pool()
    handle = pool.alloc()
    pool.free(handle)
    with pytest.raises(PoolError, match="double free"):
        pool.free(handle)
    assert sanitizer.counter.get("sanitizer/double_free") == 1


def test_stale_free_counted_and_new_owner_protected():
    pool, sanitizer = make_sanitized_pool()
    h1 = pool.alloc()
    pool.free(h1)
    h2 = pool.alloc()
    pool.write(h2, b"owner")
    with pytest.raises(PoolError, match="stale"):
        pool.free(h1)
    assert sanitizer.counter.get("sanitizer/stale_free") == 1
    assert pool.read(h2) == b"owner"


def test_cross_pool_confusion_counted():
    pool_a, sanitizer_a = make_sanitized_pool(name="a")
    pool_b, sanitizer_b = make_sanitized_pool(name="b")
    handle = pool_a.alloc()
    with pytest.raises(PoolError, match="belongs to pool"):
        pool_b.read(handle)
    assert sanitizer_b.counter.get("sanitizer/cross_pool") == 1
    assert sanitizer_a.total_violations == 0


# -- descriptor resolution ----------------------------------------------------

def test_descriptor_resolution_happy_path():
    pool, sanitizer = make_sanitized_pool()
    handle = pool.alloc()
    pool.write(handle, b"payload")
    descriptor = PacketDescriptor(
        next_fn=1,
        shm_offset=handle.offset,
        length=handle.size,
        generation=handle.generation,
    )
    assert pool.resolve_descriptor(descriptor) == b"payload"
    assert sanitizer.total_violations == 0


def test_stale_descriptor_generation_rejected():
    """The ABA case on the wire: descriptor outlives its buffer's lifetime."""
    pool, sanitizer = make_sanitized_pool()
    h1 = pool.alloc()
    pool.write(h1, b"old")
    stale = PacketDescriptor(
        next_fn=1, shm_offset=h1.offset, length=3, generation=h1.generation
    )
    pool.free(h1)
    h2 = pool.alloc()  # same slot, bumped generation
    pool.write(h2, b"new")
    with pytest.raises(PoolError, match="stale descriptor"):
        pool.resolve_descriptor(stale)
    assert sanitizer.counter.get("sanitizer/use_after_free") == 1


def test_descriptor_to_freed_buffer_rejected():
    pool, sanitizer = make_sanitized_pool()
    handle = pool.alloc()
    descriptor = PacketDescriptor(
        next_fn=1, shm_offset=handle.offset, length=0, generation=handle.generation
    )
    pool.free(handle)
    with pytest.raises(PoolError, match="freed buffer"):
        pool.resolve_descriptor(descriptor)
    assert sanitizer.counter.get("sanitizer/use_after_free") == 1


def test_descriptor_range_straddle_rejected():
    pool, sanitizer = make_sanitized_pool(buffer_size=128)
    handle = pool.alloc()
    straddling = PacketDescriptor(
        next_fn=1,
        shm_offset=handle.offset,
        length=129,  # one byte into the neighbouring buffer
        generation=handle.generation,
    )
    with pytest.raises(PoolError, match="straddles"):
        pool.resolve_descriptor(straddling)
    assert sanitizer.counter.get("sanitizer/range_straddle") == 1


def test_unsanitized_pool_still_raises():
    """The identity/generation checks are the fix, not an opt-in feature."""
    pool = SharedMemoryPool(name="p", file_prefix="x", buffer_size=64, capacity=2)
    h1 = pool.alloc()
    pool.free(h1)
    pool.alloc()
    with pytest.raises(PoolError):
        pool.read(h1)


# -- strict mode ----------------------------------------------------------------

def test_strict_mode_raises_sanitizer_error():
    pool = SharedMemoryPool(name="p", file_prefix="x", buffer_size=64, capacity=2)
    pool.attach_sanitizer(PoolSanitizer(strict=True))
    handle = pool.alloc()
    pool.free(handle)
    with pytest.raises(SanitizerError, match="double_free"):
        pool.free(handle)


# -- leak detection at chain teardown ---------------------------------------------

def test_teardown_reports_leak_with_allocation_site():
    registry = PoolRegistry()
    manager = SharedMemoryManager(registry, "chain-leaky")
    memory = manager.initialize(capacity=8)
    sanitizer = PoolSanitizer(counter=Counter())
    memory.pool.attach_sanitizer(sanitizer)

    leaked = memory.pool.alloc(site="gateway/handle_request")
    memory.pool.write(leaked, b"never freed")
    freed = memory.pool.alloc(site="gateway/other")
    memory.pool.free(freed)

    manager.teardown()
    leaks = sanitizer.leaks()
    assert len(leaks) == 1
    assert leaks[0].site == "gateway/handle_request"
    assert leaks[0].kind is ViolationKind.LEAK
    assert sanitizer.counter.get("sanitizer/leak") == 1
    assert "gateway/handle_request" in sanitizer.report()


def test_clean_teardown_reports_zero_leaks():
    registry = PoolRegistry()
    manager = SharedMemoryManager(registry, "chain-clean")
    memory = manager.initialize(capacity=8)
    sanitizer = PoolSanitizer(counter=Counter())
    memory.pool.attach_sanitizer(sanitizer)
    handle = memory.pool.alloc(site="gateway")
    memory.pool.free(handle)
    manager.teardown()
    assert sanitizer.leaks() == []
    assert sanitizer.total_violations == 0
    assert sanitizer.report() == "sanitizer: 0 violations"


# -- checked-mode chain runs (both dataplanes) --------------------------------------

def run_chain(plane_cls, count=3):
    node = WorkerNode()
    functions = [
        FunctionSpec(name="fn-1", service_time=10e-6),
        FunctionSpec(name="fn-2", service_time=10e-6),
    ]
    plane = plane_cls(node, functions, params=SprightParams(sanitize=True))
    plane.deploy()
    request_class = RequestClass(name="t", sequence=["fn-1", "fn-2"], payload_size=5)

    def driver(env):
        for _ in range(count):
            request = Request(
                request_class=request_class, payload=b"hello", created_at=env.now
            )
            yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=10.0)
    return node, plane


@pytest.mark.parametrize("plane_cls", [SSprightDataplane, DSprightDataplane])
def test_chain_runs_clean_under_sanitizer(plane_cls):
    node, plane = run_chain(plane_cls)
    sanitizer = plane.runtime.sanitizer
    assert sanitizer is not None
    assert sanitizer.total_violations == 0
    assert not any(
        name.startswith("sanitizer/") for name in node.counters.as_dict()
    )
    plane.runtime.teardown()  # all buffers were freed: no leaks either
    assert sanitizer.leaks() == []


def test_chain_teardown_leak_detected_end_to_end():
    node, plane = run_chain(SSprightDataplane)
    pool = plane.runtime.pool
    pool.alloc(site="test/intentional-leak")  # never freed
    plane.runtime.teardown()
    sanitizer = plane.runtime.sanitizer
    assert len(sanitizer.leaks()) == 1
    assert sanitizer.leaks()[0].site == "test/intentional-leak"
    assert node.counters.get("sanitizer/leak") == 1


def test_env_default_parsing():
    from repro.mem.sanitizer import _env_default

    assert _env_default(None) is False
    assert _env_default("") is False
    assert _env_default("0") is False
    assert _env_default("false") is False
    assert _env_default("no") is False
    assert _env_default("1") is True
    assert _env_default("true") is True
    assert _env_default("yes") is True


def test_default_sanitize_toggle():
    assert default_sanitize() is False
    try:
        set_default_sanitize(True)
        node = WorkerNode()
        plane = SSprightDataplane(
            node, [FunctionSpec(name="fn-1", service_time=0.0)]
        )
        plane.deploy()
        assert plane.runtime.sanitizer is not None
    finally:
        set_default_sanitize(False)
    node = WorkerNode()
    plane = SSprightDataplane(node, [FunctionSpec(name="fn-1", service_time=0.0)])
    plane.deploy()
    assert plane.runtime.sanitizer is None
