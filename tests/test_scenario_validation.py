"""Scenario schema validation: typed errors, JSON-pointer paths, enum drift."""

import pytest

from repro.scenario import (
    ARRIVAL_PATTERNS,
    EXPERIMENT_NAMES,
    EXPERIMENT_SPECS,
    FAULT_KINDS,
    KEEPALIVE_POLICIES,
    PLACEMENT_POLICIES,
    PLANE_NAMES,
    ScenarioOverrideError,
    ScenarioValidationError,
    apply_overrides,
    resolve,
    validate_scenario,
    validation_errors,
)


def _doc(**extra):
    doc = {"schema": "spright.scenario/1", "name": "t", "experiment": "boutique"}
    doc.update(extra)
    return doc


def _first_error(doc):
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate_scenario(doc)
    return excinfo.value


# -- shape violations, each with a precise path --------------------------------
def test_unknown_top_level_key():
    error = _first_error(_doc(wrokload={}))
    assert error.path == "/wrokload"
    assert "unknown key" in error.message
    assert "workload" in error.message  # suggests the known keys


def test_unknown_nested_key():
    error = _first_error(_doc(workload={"durations": 5}))
    assert error.path == "/workload/durations"
    assert "unknown key" in error.message


def test_wrong_scalar_type():
    error = _first_error(_doc(workload={"scale": "big"}))
    assert error.path == "/workload/scale"
    assert "expected number" in error.message


def test_wrong_container_type():
    error = _first_error(_doc(planes="s-spright"))
    assert error.path == "/planes"
    assert "expected array" in error.message


def test_missing_required_sections():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate_scenario({"workload": {}})
    paths = {path for path, _ in excinfo.value.errors}
    assert "/" in paths
    messages = " ".join(m for _, m in excinfo.value.errors)
    assert "'name'" in messages and "'experiment'" in messages


def test_bad_plane_name():
    error = _first_error(_doc(planes=["s-spright", "warp-drive"]))
    assert error.path == "/planes/1"
    assert "'warp-drive'" in error.message


def test_duplicate_planes():
    error = _first_error(_doc(planes=["s-spright", "s-spright"]))
    assert error.path == "/planes/1"
    assert "duplicate" in error.message


def test_bad_experiment_name():
    error = _first_error(_doc(experiment="figs"))
    assert error.path == "/experiment"


def test_bad_schema_id():
    error = _first_error(_doc(schema="spright.scenario/99"))
    assert error.path == "/schema"


def test_seed_forms():
    assert validation_errors(_doc(seed=0)) == []
    assert validation_errors(_doc(seed="auto")) == []
    assert validation_errors(_doc(seed=-1))
    assert validation_errors(_doc(seed="random"))
    assert validation_errors(_doc(seed=1.5))


def test_clone_factor_forms():
    def res(value):
        return _doc(experiment="faults", resilience={"clone_factor": value})

    assert validation_errors(res(2)) == []
    assert validation_errors(res("optimal")) == []
    assert validation_errors(res(0))
    assert validation_errors(res("off"))  # CLI spelling, not scenario spelling


def test_inline_fault_plan_validation():
    def plan(**entry):
        return _doc(experiment="faults", faults={"plan": {"faults": [entry]}})

    assert (
        validation_errors(plan(kind="pod_crash", at=1.0, probability=0.5)) == []
    )
    error = _first_error(plan(at=1.0))
    assert error.path.endswith("/faults/0") or "kind" in error.message
    error = _first_error(plan(kind="meteor_strike"))
    assert error.path == "/faults/plan/faults/0/kind"
    error = _first_error(plan(kind="pod_crash", strength=2))
    assert error.path == "/faults/plan/faults/0/strength"


def test_validation_error_collects_every_violation():
    with pytest.raises(ScenarioValidationError) as excinfo:
        validate_scenario(
            _doc(planes=["nope"], workload={"scale": "x"}, bogus=1)
        )
    paths = {path for path, _ in excinfo.value.errors}
    assert {"/planes/0", "/workload/scale", "/bogus"} <= paths


# -- resolve-level cross-checks ------------------------------------------------
def test_section_not_consumed_by_experiment():
    with pytest.raises(ScenarioValidationError) as excinfo:
        resolve(_doc(keepalive={"policies": ["kpa"]}))
    assert excinfo.value.path == "/keepalive"
    assert "boutique" in excinfo.value.message


def test_workload_kind_mismatch():
    with pytest.raises(ScenarioValidationError) as excinfo:
        resolve(_doc(workload={"kind": "motion"}))
    assert excinfo.value.path == "/workload/kind"


def test_trace_plane_constraints():
    with pytest.raises(ScenarioValidationError) as excinfo:
        resolve(_doc(experiment="trace", planes=["knative", "grpc"]))
    assert excinfo.value.path == "/planes"
    with pytest.raises(ScenarioValidationError) as excinfo:
        resolve(_doc(experiment="trace", planes=["lambda-nic"]))
    assert excinfo.value.path == "/planes/0"


# -- conflicting overrides are typed errors ------------------------------------
@pytest.mark.parametrize(
    "assignments,needle",
    [
        (["workload.duration=1", "workload.duration=2"], "already set"),
        (["workload=1", "workload.duration=2"], "nested"),
        (["workload.duration.x=1"], "non-mapping"),
        (["=5"], "section.key=value"),
        (["workload..duration=1"], "empty segment"),
    ],
)
def test_conflicting_overrides(assignments, needle):
    doc = {"name": "b", "experiment": "boutique", "workload": {"duration": 3}}
    with pytest.raises(ScenarioOverrideError) as excinfo:
        apply_overrides(doc, assignments)
    assert needle in str(excinfo.value)
    assert str(excinfo.value).startswith("--set ")


# -- enum drift guards: literals must match the live registries ----------------
def test_experiment_names_match_cli_commands():
    from repro.cli import COMMANDS

    assert set(EXPERIMENT_NAMES) == set(COMMANDS) - {"bench", "all"}
    assert set(EXPERIMENT_NAMES) == set(EXPERIMENT_SPECS)


def test_plane_names_match_experiment_registry():
    from repro.experiments.common import PLANES

    assert set(PLANE_NAMES) == set(PLANES)


def test_keepalive_policies_match_registry():
    from repro.traffic.keepalive import POLICIES

    assert set(KEEPALIVE_POLICIES) == set(POLICIES)


def test_placement_policies_match_scheduler():
    from repro.cluster.scheduler import POLICIES

    assert set(PLACEMENT_POLICIES) == {"all"} | set(POLICIES)


def test_fault_kinds_match_injector_enum():
    from repro.faults import FaultKind

    assert set(FAULT_KINDS) == {kind.value for kind in FaultKind}


def test_arrival_patterns_match_cli_choices():
    from repro.cli import build_parser

    parser = build_parser()
    choices = parser._option_string_actions["--patterns"].choices
    assert set(ARRIVAL_PATTERNS) == set(choices)


def test_fault_plan_help_lists_every_named_plan():
    from repro.cli import build_parser
    from repro.faults import NAMED_PLANS

    help_text = build_parser()._option_string_actions["--fault-plan"].help
    for name in NAMED_PLANS:
        assert name in help_text


def test_every_experiment_has_an_entry_point():
    from repro.scenario.run import _entry_points

    entries = _entry_points()
    assert set(entries) == set(EXPERIMENT_NAMES)
    for name, entry in entries.items():
        assert callable(entry), name
