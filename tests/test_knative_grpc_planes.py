"""Focused tests for the Knative and gRPC baseline dataplanes."""

import pytest

from repro.dataplane import (
    GrpcDataplane,
    GrpcParams,
    KnativeDataplane,
    KnativeParams,
    Request,
    RequestClass,
)
from repro.protocols import decode_frames, FrameType
from repro.runtime import FunctionSpec, WorkerNode


def deploy(plane_cls, functions=None, **kwargs):
    node = WorkerNode()
    functions = functions or [
        FunctionSpec(name="fn-1", service_time=10e-6),
        FunctionSpec(name="fn-2", service_time=10e-6),
    ]
    plane = plane_cls(node, functions, **kwargs)
    plane.deploy()
    return node, plane


def run_one(node, plane, sequence=("fn-1", "fn-2")):
    request = Request(
        request_class=RequestClass(name="t", sequence=list(sequence), payload_size=64),
        payload=b"x" * 64,
        created_at=node.env.now,
    )

    def driver(env):
        yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=node.env.now + 5.0)
    return request


# -- Knative --------------------------------------------------------------------

def test_knative_broker_mediates_every_transfer():
    node, plane = deploy(KnativeDataplane)
    run_one(node, plane)
    # 1 admission + 2 response mediations (mediate_every_hop).
    assert plane.broker.traversals == 3
    assert plane.ingress.traversals == 2  # in + response out


def test_knative_queue_proxy_traversed_twice_per_invocation():
    node, plane = deploy(KnativeDataplane)
    run_one(node, plane)
    for name in ("fn-1", "fn-2"):
        assert plane.queue_proxies[name].traversals == 2  # delivery + response


def test_knative_mediate_every_hop_off_reduces_broker_load():
    node, plane = deploy(
        KnativeDataplane, params=KnativeParams(mediate_every_hop=False)
    )
    run_one(node, plane)
    assert plane.broker.traversals == 1  # admission only


def test_knative_queue_proxies_share_pods_of_same_function():
    node, plane = deploy(KnativeDataplane)
    assert set(plane.queue_proxies) == {"fn-1", "fn-2"}


def test_knative_latency_grows_linearly_with_chain_length():
    """Takeaway #1: overhead scales with the number of chain hops."""
    durations = {}
    for length in (1, 4):
        node, plane = deploy(
            KnativeDataplane,
            functions=[
                FunctionSpec(name=f"fn-{i}", service_time=0.0) for i in range(4)
            ],
        )
        request = run_one(node, plane, sequence=[f"fn-{i}" for i in range(length)])
        durations[length] = request.latency
    assert durations[4] > 2.5 * durations[1]


# -- gRPC -----------------------------------------------------------------------

def test_grpc_has_no_proxies():
    node, plane = deploy(GrpcDataplane)
    request = run_one(node, plane)
    assert request.response is not None
    assert not hasattr(plane, "queue_proxies")
    assert node.cpu_percent_prefix("grpc/qp") == 0.0


def test_grpc_wire_bytes_are_http2_frames():
    node, plane = deploy(GrpcDataplane)
    wire = plane.encode_call("fn-2", b"payload")
    frames = decode_frames(wire)
    types = [frame.frame_type for frame in frames]
    assert FrameType.HEADERS in types
    assert FrameType.DATA in types


def test_grpc_hpack_compresses_repeated_calls():
    node, plane = deploy(GrpcDataplane)
    first = plane.encode_call("fn-2", b"payload")
    second = plane.encode_call("fn-2", b"payload")
    assert len(second) < len(first)  # dynamic-table hits on call #2


def test_grpc_without_http2_framing_is_bare_grpc_frame():
    node, plane = deploy(GrpcDataplane, params=GrpcParams(use_http2_framing=False))
    wire = plane.encode_call("fn-2", b"payload")
    assert wire[0] in (0, 1)  # gRPC compressed-flag byte, no HTTP/2 header


def test_grpc_stream_ids_are_odd_and_increasing():
    node, plane = deploy(GrpcDataplane)
    plane.encode_call("fn-2", b"a")
    plane.encode_call("fn-2", b"b")
    assert plane._streams["fn-2"] == 5  # 1, 3 used; next is 5


def test_grpc_faster_than_knative_same_chain():
    node_kn, plane_kn = deploy(KnativeDataplane)
    request_kn = run_one(node_kn, plane_kn)
    node_g, plane_g = deploy(GrpcDataplane)
    request_g = run_one(node_g, plane_g)
    assert request_g.latency < request_kn.latency
