"""Legacy-path setup shim (environment lacks the `wheel` package)."""
from setuptools import setup

setup()
