"""Canonical kernel-path 'legs' whose operation counts build Tables 1 and 2.

A *leg* is one message transfer over the kernel between two endpoints. Two
shapes cover every hop in Fig. 1's pipeline:

* :func:`leg_kernel` — a veth/stack crossing between containers or pods
  (sender tx stack + receiver rx stack): 2 copies, 2 context switches,
  4 interrupts, 2 protocol traversals, 1 serialization, 1 deserialization.
* :func:`leg_localhost` — sidecar <-> user container over loopback inside
  one pod: 2 copies, 2 context switches, 2 interrupts, 1 protocol
  traversal, 1 serialization, 1 deserialization.

One broker->pod delivery is ``leg_kernel + leg_localhost`` = 4/4/6/3/2/2,
exactly one within-chain column of Table 1. The external arrival
(:func:`external_arrival`) is column ① (1/1/3/1/1/0) and a plain
``leg_kernel`` is column ② (2/2/4/2/1/1).

Operations inside a leg are audited individually but charged to the CPU as
one transmit bundle and one receive bundle (sender's cores and receiver's
cores respectively), which keeps the event count per request low enough to
simulate the paper's full runs.
"""

from __future__ import annotations

from typing import Optional

from ..audit import RequestTrace, Stage
from ..kernel import KernelOps
from ..simcore import DeliveryError


def _check_loss(ops: KernelOps, point: str) -> None:
    """Fault injection on a costed leg: the CPU work is already charged
    (the sender paid for a transfer that went nowhere), then the message
    is lost or corrupted — surfaced as a typed, retryable failure."""
    faults = ops.faults
    if faults is None or not faults.active:
        return
    if faults.drop_packet(point, ops.tag):
        raise DeliveryError("drop", f"frame lost on {point} leg at {ops.tag}")
    if faults.corrupt_packet(point, ops.tag):
        raise DeliveryError("corrupt", f"frame corrupted on {point} leg at {ops.tag}")


def external_arrival(
    ops: KernelOps,
    nbytes: int,
    trace: Optional[RequestTrace],
    stage: Optional[Stage],
):
    """Step ①: a client request arrives at the ingress gateway from the NIC.

    NIC hardirq + softirq + wakeup (3 interrupts), one rx protocol
    traversal, one kernel->user copy, one context switch into the gateway,
    and one serialization as the gateway re-emits the request.
    """
    bundle = ops.bundle()
    bundle.interrupt(trace, stage, count=3)
    bundle.protocol_processing(nbytes, trace, stage)
    bundle.copy(nbytes, trace, stage)
    bundle.context_switch(trace, stage)
    bundle.serialize(nbytes, trace, stage)
    yield bundle.commit()
    _check_loss(ops, "leg_external")


def leg_kernel(
    ops_rx: KernelOps,
    nbytes: int,
    trace: Optional[RequestTrace],
    stage: Optional[Stage],
    ops_tx: Optional[KernelOps] = None,
):
    """A pod-to-pod (or container-to-container) transfer across veths.

    Transmit-side work (marshal, copy in, tx stack) runs on the sender's
    cores (``ops_tx``, defaulting to the receiver's); receive-side work (rx
    stack, copy out, wakeups, unmarshal) runs on the receiver's.
    """
    sender = ops_tx or ops_rx
    tx = sender.bundle()
    tx.serialize(nbytes, trace, stage)
    tx.copy(nbytes, trace, stage)
    tx.protocol_processing(nbytes, trace, stage)
    tx.interrupt(trace, stage, count=2)
    yield tx.commit()
    _check_loss(sender, "leg_kernel")

    rx = ops_rx.bundle()
    rx.protocol_processing(nbytes, trace, stage)
    rx.interrupt(trace, stage, count=2)
    rx.copy(nbytes, trace, stage)
    rx.context_switch(trace, stage, count=2)
    rx.deserialize(nbytes, trace, stage)
    yield rx.commit()


def leg_localhost(
    ops: KernelOps,
    nbytes: int,
    trace: Optional[RequestTrace],
    stage: Optional[Stage],
):
    """Sidecar <-> user container over loopback within one pod."""
    bundle = ops.bundle()
    bundle.serialize(nbytes, trace, stage)
    bundle.copy(nbytes, trace, stage)
    bundle.protocol_processing(nbytes, trace, stage)
    bundle.interrupt(trace, stage, count=2)
    bundle.copy(nbytes, trace, stage)
    bundle.context_switch(trace, stage, count=2)
    bundle.deserialize(nbytes, trace, stage)
    yield bundle.commit()
    _check_loss(ops, "leg_localhost")


def chain_step_stage(event_index: int) -> Optional[Stage]:
    """Audit-stage for the i-th within-chain transfer event.

    The paper's audit labels the first three within-chain transfers ③, ④,
    ⑤ and stops there (the response side is excluded); later transfers in
    longer chains are costed but not staged.
    """
    mapping = {0: Stage.STEP_3, 1: Stage.STEP_4, 2: Stage.STEP_5}
    return mapping.get(event_index)
