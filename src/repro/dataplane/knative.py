"""The Knative baseline dataplane (Fig. 1's pipeline, audited in Table 1).

Topology: cluster ingress gateway -> broker/front-end -> function pods, each
pod fronted by a queue-proxy sidecar. Every within-chain transfer goes back
through the broker/front-end over the kernel, which is exactly the linear
overhead growth the paper criticizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..audit import Stage
from ..runtime import FunctionSpec
from .base import Dataplane, ProxyComponent, Request
from .legs import chain_step_stage, external_arrival, leg_kernel, leg_localhost


@dataclass
class KnativeParams:
    """Calibration knobs for the Knative components.

    Defaults model the paper's measurements: queue proxies are the dominant
    CPU consumer (70% of Knative's CPU in §3.2.2), the Istio/Envoy-grade
    mediator is heavyweight, and the broker/front-end may be pinned to two
    cores for the Fig 5 fair comparison.
    """

    ingress_pinned_cores: Optional[int] = None
    ingress_path_cpu: float = 20e-6
    ingress_overhead_cpu: float = 150e-6
    broker_pinned_cores: Optional[int] = 2   # NGINX front-end, 2 cores (Fig 5)
    broker_path_cpu: float = 20e-6
    broker_overhead_cpu: float = 60e-6
    qp_path_cpu: float = 25e-6               # queue proxy on the data path
    qp_overhead_cpu: float = 500e-6          # queue proxy bookkeeping/metrics
    mediate_every_hop: bool = True           # traffic always re-crosses broker
    broker_queue_limit: Optional[int] = None  # shed (503) beyond this backlog


class KnativeDataplane(Dataplane):
    """Ingress + broker/front-end + queue-proxy sidecars over the kernel."""

    plane = "kn"

    def __init__(self, node, functions, params: Optional[KnativeParams] = None, **kwargs):
        super().__init__(node, functions, **kwargs)
        self.params = params or KnativeParams()
        self.ingress = ProxyComponent(
            node,
            tag=f"{self.plane}/gw/ingress",
            pinned_cores=self.params.ingress_pinned_cores,
            path_cpu=self.params.ingress_path_cpu,
            overhead_cpu=self.params.ingress_overhead_cpu,
        )
        self.broker = ProxyComponent(
            node,
            tag=f"{self.plane}/gw/broker",
            pinned_cores=self.params.broker_pinned_cores,
            path_cpu=self.params.broker_path_cpu,
            overhead_cpu=self.params.broker_overhead_cpu,
            queue_limit=self.params.broker_queue_limit,
        )
        # One queue proxy per function (its pods share the sidecar model).
        self.queue_proxies: dict[str, ProxyComponent] = {}

    def _setup_transport(self) -> None:
        for name in self.functions:
            self.queue_proxies[name] = ProxyComponent(
                self.node,
                tag=f"{self.plane}/qp/{name}",
                path_cpu=self.params.qp_path_cpu,
                overhead_cpu=self.params.qp_overhead_cpu,
            )

    # -- request path ------------------------------------------------------------
    def handle_request(self, request: Request):
        trace = request.trace
        nbytes = len(request.payload)

        request.mark("ingress", self.node.env.now)
        # ①: client -> ingress gateway (through the NIC and kernel stack).
        span = request.span_begin("leg:external", "leg", bytes=nbytes)
        yield from external_arrival(self.ingress.ops, nbytes, trace, Stage.STEP_1)
        yield from self.ingress.traverse()
        request.span_end(span)

        # ②: ingress -> broker/front-end; the request is queued as an event.
        span = request.span_begin("leg:kernel", "leg", bytes=nbytes, to="broker")
        yield from leg_kernel(
            self.broker.ops, nbytes, trace, Stage.STEP_2, ops_tx=self.ingress.ops
        )
        yield from self.broker.traverse(admission=True)
        request.span_end(span)
        request.mark("broker", self.node.env.now)

        # Within the chain: each invocation is delivered broker -> pod
        # (through the pod's queue proxy), processed, and its response
        # travels pod -> broker where it is registered as the next event.
        payload = request.payload
        event_index = 0
        for function_name in request.request_class.sequence:
            queue_proxy = self.queue_proxies[function_name]

            # Delivery: broker -> queue proxy -> user container.
            stage = chain_step_stage(event_index)
            event_index += 1
            span = request.span_begin(
                "leg:deliver", "leg", bytes=len(payload), fn=function_name
            )
            yield from leg_kernel(
                queue_proxy.ops, len(payload), trace, stage, ops_tx=self.broker.ops
            )
            yield from queue_proxy.traverse()
            yield from leg_localhost(queue_proxy.ops, len(payload), trace, stage)
            request.span_end(span)

            pod = yield from self.acquire_pod(function_name, request.claimed_pods)
            request.mark(f"deliver:{function_name}", self.node.env.now)
            result = yield from pod.serve(payload)
            request.mark(f"served:{function_name}", self.node.env.now)
            payload = result.payload

            # Response: user container -> queue proxy -> broker.
            stage = chain_step_stage(event_index)
            event_index += 1
            span = request.span_begin(
                "leg:return", "leg", bytes=len(payload), fn=function_name
            )
            yield from leg_localhost(queue_proxy.ops, len(payload), trace, stage)
            yield from queue_proxy.traverse()
            yield from leg_kernel(
                self.broker.ops, len(payload), trace, stage, ops_tx=queue_proxy.ops
            )
            if self.params.mediate_every_hop:
                yield from self.broker.traverse()
            request.span_end(span)

        # Response to the client (outside the audited pipeline, still costed).
        response = payload[: request.request_class.response_size] or payload
        span = request.span_begin("leg:response", "leg", bytes=len(response))
        yield from leg_kernel(self.ingress.ops, len(response), trace, None)
        yield from self.ingress.traverse()
        request.span_end(span)
        request.mark("response", self.node.env.now)
        request.response = response
        return request


def nginx_function(name: str = "nginx", service_time: float = 40e-6) -> FunctionSpec:
    """The NGINX HTTP server function used in the §2 and §3.2.2 benchmarks."""
    return FunctionSpec(
        name=name,
        service_time=service_time,
        service_time_cv=0.2,
        concurrency=32,
        runtime_overhead_bg=60e-6,
    )
