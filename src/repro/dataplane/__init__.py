"""Dataplanes: Knative baseline, gRPC direct mode, S-/D-SPRIGHT, sidecars."""

from .base import (
    Dataplane,
    OverloadError,
    ProxyComponent,
    Request,
    RequestClass,
    ShedError,
)
from .grpc_mode import GrpcDataplane, GrpcParams
from .knative import KnativeDataplane, KnativeParams, nginx_function
from .legs import chain_step_stage, external_arrival, leg_kernel, leg_localhost
from .sidecars import (
    ALL_SIDECARS,
    ENVOY,
    NULL_SIDECAR,
    OF_WATCHDOG,
    QUEUE_PROXY,
    SidecarPod,
    SidecarSpec,
    sidecar_by_name,
)
from .spright import (
    DSprightDataplane,
    LambdaNicDataplane,
    NicComputeEngine,
    NicComputeModel,
    SprightParams,
    SSprightDataplane,
)

__all__ = [
    "ALL_SIDECARS",
    "Dataplane",
    "DSprightDataplane",
    "ENVOY",
    "GrpcDataplane",
    "GrpcParams",
    "KnativeDataplane",
    "KnativeParams",
    "LambdaNicDataplane",
    "NULL_SIDECAR",
    "NicComputeEngine",
    "NicComputeModel",
    "OF_WATCHDOG",
    "OverloadError",
    "ProxyComponent",
    "QUEUE_PROXY",
    "Request",
    "RequestClass",
    "ShedError",
    "SidecarPod",
    "SidecarSpec",
    "SprightParams",
    "SSprightDataplane",
    "chain_step_stage",
    "external_arrival",
    "leg_kernel",
    "leg_localhost",
    "nginx_function",
    "sidecar_by_name",
]
