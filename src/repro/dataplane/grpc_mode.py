"""The 'server-full' gRPC direct-call baseline (§4.2.1).

Functions run as plain pods without sidecars and call each other directly
with gRPC over the kernel stack: no broker, no ingress mediation within the
chain — but every hop still pays serialization and two protocol-stack
traversals, which is why gRPC beats Knative yet burns 91% of the node's CPU
under the boutique workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..audit import Stage
from ..protocols import GrpcCall, ProtoMessage
from ..protocols.http2 import HpackCodec, encode_grpc_request
from .base import Dataplane, Request
from .legs import chain_step_stage, external_arrival, leg_kernel


@dataclass
class GrpcParams:
    """gRPC-mode knobs: no proxies; only the per-hop codec work matters."""

    use_http2_framing: bool = True  # real HEADERS+DATA frames per call


class GrpcDataplane(Dataplane):
    """Direct function-to-function gRPC calls."""

    plane = "grpc"

    def __init__(self, node, functions, params: Optional[GrpcParams] = None, **kwargs):
        super().__init__(node, functions, **kwargs)
        self.params = params or GrpcParams()
        self.ops = node.ops(f"{self.plane}/stack")
        # Long-lived HTTP/2 connections: one HPACK context per destination,
        # so repeated calls compress their headers like real gRPC channels.
        self._hpack: dict[str, HpackCodec] = {}
        self._streams: dict[str, int] = {}

    def encode_call(self, function_name: str, payload: bytes) -> bytes:
        """The real wire bytes: protobuf in a gRPC frame in HTTP/2 frames."""
        call = GrpcCall(
            service=f"hipstershop.{function_name.title().replace('-', '')}Service",
            method="Invoke",
            message=ProtoMessage().set(1, payload),
        )
        grpc_frame = call.encode()
        if not self.params.use_http2_framing:
            return grpc_frame
        codec = self._hpack.setdefault(function_name, HpackCodec())
        stream_id = self._streams.get(function_name, 1)
        self._streams[function_name] = stream_id + 2  # client streams are odd
        return encode_grpc_request(codec, call.path, grpc_frame, stream_id=stream_id)

    def handle_request(self, request: Request):
        trace = request.trace
        payload = request.payload

        # External arrival lands directly on the head function's pod
        # (the 'direct call' mode: no broker, but the kernel path remains).
        head = request.request_class.sequence[0]
        wire = self.encode_call(head, payload)
        span = request.span_begin("leg:external", "leg", bytes=len(wire))
        yield from external_arrival(
            self.deployment_ops(head), len(wire), trace, Stage.STEP_1
        )
        request.span_end(span)

        event_index = 0
        previous: Optional[str] = None
        for function_name in request.request_class.sequence:
            if previous is not None:
                # Direct pod-to-pod gRPC call over the kernel.
                wire = self.encode_call(function_name, payload)
                stage = chain_step_stage(event_index)
                event_index += 1
                span = request.span_begin(
                    "leg:call", "leg", bytes=len(wire), fn=function_name
                )
                yield from leg_kernel(
                    self.deployment_ops(function_name), len(wire), trace, stage
                )
                request.span_end(span)
            pod = yield from self.acquire_pod(function_name, request.claimed_pods)
            request.mark(f"deliver:{function_name}", self.node.env.now)
            result = yield from pod.serve(payload)
            request.mark(f"served:{function_name}", self.node.env.now)
            payload = result.payload
            previous = function_name

        # Response to the client from the head function's pod.
        response = payload[: request.request_class.response_size] or payload
        span = request.span_begin("leg:response", "leg", bytes=len(response))
        yield from leg_kernel(self.ops, len(response), trace, None)
        request.span_end(span)
        request.mark("response", self.node.env.now)
        request.response = response
        return request

    def deployment_ops(self, function_name: str):
        """Charge stack work to the receiving function's kernel-side tag."""
        return self.node.ops(f"{self.plane}/stack/{function_name}")
