"""Shared dataplane machinery: proxies, request classes, the plane interface.

A *request class* carries the call sequence through the chain (Table 3's
"call sequence", e.g. Ch-1's ``1,2,1,3,1,...``); a dataplane executes that
sequence with its own transport (broker hops, direct gRPC, descriptor
redirects) and its own overheads — the differences the paper measures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..audit import RequestTrace
from ..kernel import KernelOps
from ..runtime import Deployment, FunctionSpec, Kubelet, Pod
from ..simcore import CpuSet, DeliveryError, Interrupt, Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults import ResilienceController, ResiliencePolicy
    from ..runtime import WorkerNode


@dataclass
class RequestClass:
    """One request type: its invocation sequence and payload sizes."""

    name: str
    sequence: list[str]          # function names, in invocation order
    payload_size: int = 256
    response_size: int = 1024
    weight: float = 1.0
    topic: str = ""
    # Workload-class priority for graceful degradation: under overload the
    # admission controller sheds lower priorities first (0 = shed first).
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.sequence:
            raise ValueError(f"request class {self.name!r} has an empty sequence")


class OverloadError(DeliveryError):
    """A component's queue limit was exceeded; the request is shed (503).

    A :class:`DeliveryError` of kind ``"overload"`` — retryable, since the
    backlog that triggered the shed drains over time.
    """

    def __init__(self, message: str = "") -> None:
        super().__init__("overload", message)


class ShedError(DeliveryError):
    """The admission controller refused the request at the front door.

    A :class:`DeliveryError` of kind ``"shed"`` — deliberately *not*
    retryable: unlike a transient overload deeper in the chain, an admission
    shed is the node saying it will not take this work now, and retrying
    immediately is exactly the amplification that collapses goodput. PR 2's
    retry loop therefore stops on it while breakers still count it.
    """

    def __init__(self, message: str = "") -> None:
        super().__init__("shed", message, retryable=False)


@dataclass
class Request:
    """A single in-flight request."""

    request_class: RequestClass
    payload: bytes
    created_at: float
    trace: Optional[RequestTrace] = None
    response: Optional[bytes] = None
    completed_at: Optional[float] = None
    failed: bool = False
    error: Optional[DeliveryError] = None  # why it failed, when it failed
    # Milestone timeline (name, sim time); populated when the request is
    # created with ``record_timeline=True`` via enable_timeline().
    timeline: Optional[list] = None
    # Causal span tracing (repro.obs): the root span and the tracer that
    # owns it, attached by Dataplane.submit when tracing is enabled.
    span: Optional[object] = None
    tracer: Optional[object] = None
    # Synchronized cloning (repro.faults): pod instance ids already chosen
    # by this request's clone group. The resilience controller creates the
    # set and shares it with every clone, so pod pickers place the clones
    # on pairwise-distinct pods. None (the default) disables the exclusion
    # entirely — picks are byte-identical to pre-cloning builds.
    claimed_pods: Optional[set] = None

    def enable_timeline(self) -> "Request":
        self.timeline = []
        return self

    def mark(self, milestone: str, now: float) -> None:
        """Stamp a milestone (no-op unless timeline or tracing is enabled)."""
        if self.timeline is not None:
            self.timeline.append((milestone, now))
        if self.tracer is not None:
            self.tracer.on_mark(self, milestone, now)

    def span_begin(self, name: str, category: str = "op", **attrs):
        """Open an explicit child span (None and free when untraced)."""
        if self.tracer is not None:
            return self.tracer.begin(self, name, category, **attrs)
        return None

    def span_end(self, span, **attrs) -> None:
        """Close a span from :meth:`span_begin` (no-op on None)."""
        if span is not None and self.tracer is not None:
            self.tracer.finish(self, span, **attrs)

    @property
    def latency(self) -> float:
        if self.completed_at is None:
            raise ValueError("request not completed")
        return self.completed_at - self.created_at


class ProxyComponent:
    """A proxy (ingress gateway, broker, SPRIGHT gateway) with CPU placement.

    ``pinned_cores``: run on a private core set (the paper pins both the
    SPRIGHT gateway and the NGINX front-end to two cores); ``None`` floats
    the work on the node's shared cores (Istio in the boutique experiments).
    ``overhead_cpu`` is per-traversal background CPU (metrics, buffering,
    proxy bookkeeping) — charged, but off the critical path.
    """

    def __init__(
        self,
        node: "WorkerNode",
        tag: str,
        pinned_cores: Optional[int] = None,
        concurrency: int = 4096,
        overhead_cpu: float = 0.0,
        path_cpu: float = 0.0,
        queue_limit: Optional[int] = None,
    ) -> None:
        self.node = node
        self.tag = tag
        self.overhead_cpu = overhead_cpu
        self.path_cpu = path_cpu
        self.queue_limit = queue_limit
        self.shed = 0
        if pinned_cores is not None:
            self.cpu = CpuSet(
                node.env,
                cores=pinned_cores,
                freq_hz=node.config.costs.cpu_freq_hz,
                bucket_width=node.config.cpu_bucket_width,
                accounting=node.cpu.accounting,
            )
        else:
            self.cpu = node.cpu
        self.ops = KernelOps(
            node.env,
            self.cpu,
            node.config.costs,
            tag,
            node.faults,
            obs=getattr(node, "obs", None),
        )
        self._limiter = Resource(node.env, capacity=concurrency)
        self.traversals = 0

    def traverse(self, admission: bool = False):
        """One pass through the proxy: path CPU + background CPU (generator).

        With a ``queue_limit``, *admission* traversals beyond the backlog
        bound are shed (an :class:`OverloadError` the dataplane turns into a
        failed request) — a proxy returning 503 at the front door rather
        than queueing forever. Mid-chain traversals of already-admitted
        requests are never shed.
        """
        if admission and self.queue_limit is not None:
            backlog = self._limiter.count + self._limiter.queue_length
            if backlog >= self.queue_limit:
                self.shed += 1
                raise OverloadError(
                    f"{self.tag} queue limit {self.queue_limit} hit"
                )
        self.traversals += 1
        slot = self._limiter.request()
        try:
            yield slot
        except Interrupt:
            # Cancelled (timed out / raced out) while queued: withdraw the
            # claim so proxy concurrency capacity is not leaked.
            self._limiter.release(slot)
            raise
        try:
            if self.path_cpu > 0:
                yield self.cpu.execute(self.path_cpu, self.tag, op="proxy_path")
        finally:
            self._limiter.release(slot)
        if self.overhead_cpu > 0:
            # Not awaited: off the critical path.
            self.cpu.execute(self.overhead_cpu, self.tag, op="proxy_overhead")


class Dataplane(abc.ABC):
    """A deployable request-execution engine over a set of functions."""

    #: short identifier used as the CPU-tag prefix ("kn", "grpc", ...)
    plane: str = "base"

    def __init__(
        self,
        node: "WorkerNode",
        functions: list[FunctionSpec],
        kubelet: Optional[Kubelet] = None,
        cold_start: bool = False,
    ) -> None:
        self.node = node
        self.functions = {spec.name: spec for spec in functions}
        if len(self.functions) != len(functions):
            raise ValueError("duplicate function names")
        self.kubelet = kubelet or Kubelet(
            node, cold_start_enabled=cold_start, termination_lag=0.0
        )
        self.deployments: dict[str, Deployment] = {}
        self.requests_completed = 0
        self.resilience: Optional["ResilienceController"] = None
        self.admission = None  # Optional[repro.recovery.AdmissionController]
        self._deployed = False

    # -- lifecycle -------------------------------------------------------------
    def deploy(self) -> None:
        """Create deployments (and plane-specific transport); idempotent."""
        if self._deployed:
            return
        for name, spec in self.functions.items():
            deployment = self.kubelet.deployment(spec, self.fn_tag(name))
            deployment.ensure_scale(spec.min_scale)
            self.deployments[name] = deployment
            self.node.faults.register_deployment(name, deployment)
        self._setup_transport()
        self._deployed = True

    def use_resilience(self, policy: "ResiliencePolicy") -> None:
        """Attach a gateway-side resilience policy (timeouts/retries/hedging).

        A disabled policy attaches nothing, keeping the fault-free fast
        path — and its RNG draw sequence — byte-identical to a plane that
        never heard of resilience.
        """
        from ..faults import ResilienceController

        if policy.enabled():
            self.resilience = ResilienceController(self, policy)

    def use_admission(self, policy) -> None:
        """Attach gateway admission control (queue bounds + shedding).

        Mirrors :meth:`use_resilience`: an inert policy attaches nothing,
        so runs without admission control stay byte-identical.
        """
        from ..recovery import AdmissionController

        if policy.enabled():
            self.admission = AdmissionController(
                self.node.env,
                policy,
                counter=self.node.counters,
                scope=self.plane,
            )

    def _setup_transport(self) -> None:
        """Plane-specific wiring (sockets, rings, hooks); default none."""

    def fn_tag(self, name: str) -> str:
        return f"{self.plane}/fn/{name}"

    # -- pod selection with cold-start handling -----------------------------------
    def acquire_pod(self, function: str, claimed: Optional[set] = None):
        """Generator: yields until a servable pod exists, returns the pod.

        A request that lands on a zero-scaled function triggers activation
        (scale from zero) and waits out the cold start — the Fig 11 path.
        ``claimed`` is a clone group's claimed-pod set: the picker avoids
        pods already in it and records the chosen pod, so synchronized
        clones land on distinct pods. None (the default) changes nothing.
        """
        deployment = self.deployments[function]
        pod = self.select_pod(deployment, claimed)
        if pod is None:
            deployment.waiting += 1
            try:
                while pod is None:
                    if not deployment.live_pods():
                        deployment.scale_to(1)
                        deployment.note_cold_start()
                        self.node.counters.incr(f"{self.plane}/cold_starts")
                    yield deployment.any_servable_event()
                    pod = self.select_pod(deployment, claimed)
            finally:
                deployment.waiting -= 1
        if claimed is not None:
            claimed.add(pod.instance_id)
        return pod

    def select_pod(
        self, deployment: Deployment, exclude: Optional[set] = None
    ) -> Optional[Pod]:
        """Default policy: round robin (Knative); SPRIGHT overrides."""
        return deployment.pick_round_robin(exclude)

    # -- request execution ---------------------------------------------------------
    @abc.abstractmethod
    def handle_request(self, request: Request):
        """Generator executing the request; sets ``request.response``."""

    def deliver_once(self, request: Request):
        """Generator: one delivery attempt, surfacing failures as exceptions.

        The resilience layer's unit of work: raises a typed
        :class:`DeliveryError` (timeout/crash/drop/overload/...) instead of
        returning a half-marked request, so the caller can decide whether
        retrying can help.
        """
        yield from self.handle_request(request)
        if request.failed:
            raise request.error or DeliveryError(
                "crash", "request failed without a recorded error"
            )

    def submit(self, request: Request):
        """Generator wrapper: run the request and stamp completion.

        Delivery failures (queue-limit sheds, injected drops, crashed pods)
        mark the request failed with a typed ``request.error`` rather than
        crashing the run; with a resilience policy attached
        (:meth:`use_resilience`), the controller retries/hedges before
        giving up. With admission control attached (:meth:`use_admission`),
        overloaded arrivals are shed at the front door with a typed
        :class:`ShedError` before any work is done on their behalf.
        """
        if self.admission is not None:
            shed = self.admission.try_admit(request)
            if shed is not None:
                request.failed = True
                request.error = shed
                request.completed_at = self.node.env.now
                self.node.counters.incr(f"{self.plane}/shed")
                return request
        try:
            obs = getattr(self.node, "obs", None)
            tracer = obs.tracer if obs is not None else None
            if tracer is not None and request.span is None:
                tracer.start_request(
                    request,
                    f"{self.plane}:{request.request_class.name}",
                    plane=self.plane,
                    request_class=request.request_class.name,
                    bytes=len(request.payload),
                )
            if self.resilience is not None:
                yield from self.resilience.execute(request)
            else:
                try:
                    yield from self.handle_request(request)
                except DeliveryError as error:
                    request.failed = True
                    request.error = error
                    if error.kind == "overload":
                        self.node.counters.incr(f"{self.plane}/overload_drops")
                    else:
                        self.node.counters.incr(f"faults/failed/{error.kind}")
            request.completed_at = self.node.env.now
            if tracer is not None and request.span is not None:
                tracer.finish_request(request, **self._root_span_attrs(request))
            if request.failed:
                return request
            self.requests_completed += 1
            if request.trace is not None:
                request.trace.completed = True
            return request
        finally:
            if self.admission is not None:
                self.admission.on_done(request)

    def _root_span_attrs(self, request: Request) -> dict:
        """Closing attributes for the root span: outcome + audit totals."""
        attrs: dict = {"failed": request.failed}
        if request.error is not None:
            attrs["error"] = request.error.kind
        if request.trace is not None:
            from ..audit import OverheadKind

            attrs["copies"] = request.trace.total(OverheadKind.COPY)
            attrs["ctx_switches"] = request.trace.total(OverheadKind.CONTEXT_SWITCH)
            attrs["interrupts"] = request.trace.total(OverheadKind.INTERRUPT)
        return attrs
