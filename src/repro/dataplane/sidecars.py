"""Sidecar proxy models for the §2 comparison (Fig. 2).

Four pod configurations around the same NGINX HTTP server function:

* ``Null``  — no sidecar (the baseline);
* ``QP``    — Knative's queue proxy;
* ``Envoy`` — Istio's Envoy sidecar;
* ``OFW``   — OpenFaaS's of-watchdog.

Each sidecar adds two loopback crossings (2 copies, 2 context switches,
2 interrupts per §2's audit of step ④) plus its own proxy CPU. Per-request
CPU budgets are calibrated against Fig. 2's cycles/request bars at 2.2 GHz,
split into the figure's three categories (sidecar container, NGINX
container, kernel stack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..audit import Stage
from ..kernel import KernelOps
from ..simcore import CpuSet, Resource
from .legs import external_arrival, leg_localhost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import WorkerNode


@dataclass(frozen=True)
class SidecarSpec:
    """Per-request CPU budget of one pod configuration (seconds)."""

    name: str
    sidecar_path: float      # proxy work on the critical path
    sidecar_bg: float        # proxy background work (metrics, buffers)
    nginx_path: float        # NGINX request handling
    nginx_bg: float          # NGINX worker bookkeeping
    kernel_bg: float         # extra kernel-stack work the proxy induces
    has_sidecar: bool = True


# Calibrated against Fig 2: a 3x-7x RPS/latency spread between Null and the
# sidecars, with the kernel stack carrying ~50% of the sidecar CPU cycles.
NULL_SIDECAR = SidecarSpec(
    "Null", sidecar_path=0.0, sidecar_bg=0.0,
    nginx_path=55e-6, nginx_bg=120e-6, kernel_bg=150e-6, has_sidecar=False,
)
QUEUE_PROXY = SidecarSpec(
    "QP", sidecar_path=200e-6, sidecar_bg=500e-6,
    nginx_path=55e-6, nginx_bg=120e-6, kernel_bg=400e-6,
)
ENVOY = SidecarSpec(
    "Envoy", sidecar_path=350e-6, sidecar_bg=1000e-6,
    nginx_path=55e-6, nginx_bg=120e-6, kernel_bg=700e-6,
)
OF_WATCHDOG = SidecarSpec(
    "OFW", sidecar_path=140e-6, sidecar_bg=350e-6,
    nginx_path=55e-6, nginx_bg=120e-6, kernel_bg=300e-6,
)

ALL_SIDECARS = (NULL_SIDECAR, QUEUE_PROXY, ENVOY, OF_WATCHDOG)


class SidecarPod:
    """One function pod (NGINX + optional sidecar) pinned to a CPU quota.

    The pod carries the k8s-style CPU limit real deployments set (the reason
    the measured RPS plateaus); both containers share it.
    """

    def __init__(
        self,
        node: "WorkerNode",
        spec: SidecarSpec,
        pod_cores: int = 4,
        concurrency: int = 64,
    ) -> None:
        self.node = node
        self.spec = spec
        self.cpu = CpuSet(
            node.env,
            cores=pod_cores,
            freq_hz=node.config.costs.cpu_freq_hz,
            bucket_width=node.config.cpu_bucket_width,
            accounting=node.cpu.accounting,
        )
        prefix = f"sidecar/{spec.name}"
        self.tag_sidecar = f"{prefix}/sidecar"
        self.tag_nginx = f"{prefix}/nginx"
        self.tag_kernel = f"{prefix}/kernel"
        self.ops = KernelOps(node.env, self.cpu, node.config.costs, self.tag_kernel)
        self._slots = Resource(node.env, capacity=concurrency)
        self.requests_served = 0

    def handle_request(self, nbytes: int, trace=None):
        """Generator: one HTTP request through the pod; returns latency-start."""
        slot = self._slots.request()
        yield slot
        try:
            # Arrival at the pod over the kernel (client is on-node, wrk).
            yield from external_arrival(self.ops, nbytes, trace, Stage.STEP_1)

            if self.spec.has_sidecar:
                # Inbound through the sidecar: one loopback crossing, proxy work.
                yield from leg_localhost(self.ops, nbytes, trace, Stage.STEP_4)
                yield self.cpu.execute(
                    self.spec.sidecar_path / 2, self.tag_sidecar, op="sidecar_path"
                )

            # NGINX serves the request.
            yield self.cpu.execute(self.spec.nginx_path, self.tag_nginx, op="nginx_path")
            self.cpu.execute(self.spec.nginx_bg, self.tag_nginx, op="nginx_bg")
            if self.spec.kernel_bg > 0:
                self.cpu.execute(self.spec.kernel_bg, self.tag_kernel, op="kernel_bg")

            if self.spec.has_sidecar:
                # Outbound back through the sidecar.
                yield self.cpu.execute(
                    self.spec.sidecar_path / 2, self.tag_sidecar, op="sidecar_path"
                )
                yield from leg_localhost(self.ops, nbytes, trace, Stage.STEP_4)
                self.cpu.execute(
                    self.spec.sidecar_bg, self.tag_sidecar, op="sidecar_bg"
                )

            # Response towards the client.
            yield self.ops.serialize(nbytes, trace, None)
            yield self.ops.copy(nbytes, trace, None)
            yield self.ops.protocol_processing(nbytes, trace, None)
            self.requests_served += 1
        finally:
            self._slots.release(slot)

    def cycles_per_request(self) -> dict[str, float]:
        """Fig 2's right panel: cycles/request by category."""
        if self.requests_served == 0:
            raise ValueError("no requests served yet")
        accounting = self.node.cpu.accounting
        freq = self.node.config.costs.cpu_freq_hz
        return {
            "sidecar container": accounting.total_busy.get(self.tag_sidecar, 0.0)
            * freq
            / self.requests_served,
            "NGINX container": accounting.total_busy.get(self.tag_nginx, 0.0)
            * freq
            / self.requests_served,
            "kernel stack": accounting.total_busy.get(self.tag_kernel, 0.0)
            * freq
            / self.requests_served,
        }


def sidecar_by_name(name: str) -> SidecarSpec:
    for spec in ALL_SIDECARS:
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"unknown sidecar {name!r}")
