"""Security domains: private pools + SPROXY descriptor filtering (§3.4).

A chain's security domain is (a) its private shared memory pool, reachable
only with the chain's file prefix (enforced by :mod:`repro.mem.pool`), and
(b) the in-kernel filtering map consulted by the SPROXY before any
redirection: ``(sender instance << 16) | destination instance`` must be
present, or the descriptor is dropped before it can touch another pod.
"""

from __future__ import annotations

from ...kernel.ebpf import HashMap, MapRegistry

FILTER_MAP_ENTRIES = 65536


def filter_key(sender_instance: int, destination_instance: int) -> int:
    """The key layout the SPROXY filter program computes in bytecode."""
    if not 0 <= sender_instance < 2**16:
        raise ValueError(f"sender instance {sender_instance} out of u16 range")
    if not 0 <= destination_instance < 2**16:
        raise ValueError(f"destination instance {destination_instance} out of u16 range")
    return (sender_instance << 16) | destination_instance


class SecurityDomain:
    """One chain's isolation state: the filter map plus audit counters."""

    def __init__(self, map_registry: MapRegistry, chain_name: str) -> None:
        self.chain_name = chain_name
        self.filter_map = HashMap(FILTER_MAP_ENTRIES, name=f"filter-{chain_name}")
        self.filter_fd = map_registry.create(self.filter_map)
        self.rules_installed = 0
        self.denied = 0

    def allow(self, sender_instance: int, destination_instance: int) -> None:
        """kubelet-configured rule: sender may address destination."""
        self.filter_map.update(filter_key(sender_instance, destination_instance), 1)
        self.rules_installed += 1

    def revoke(self, sender_instance: int, destination_instance: int) -> None:
        key = filter_key(sender_instance, destination_instance)
        if key in self.filter_map:
            self.filter_map.delete(key)
            self.rules_installed -= 1

    def is_allowed(self, sender_instance: int, destination_instance: int) -> bool:
        """Userspace view of what the in-kernel program will decide."""
        return (
            self.filter_map.lookup(filter_key(sender_instance, destination_instance))
            is not None
        )

    def record_denial(self) -> None:
        self.denied += 1
