"""Event-driven protocol adaptation inside the SPRIGHT gateway (§3.6).

Adapters are dynamically loadable programs attached to a hook point on the
gateway datapath, invoked as plain function calls when a matching message
arrives — no separate adapter pod, no extra protocol-stack traversal.
Stateful protocols (MQTT) keep their L7 session at the gateway; the adapter
itself stays stateless. Every adapter normalizes to a CloudEvent.
"""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING, Optional

from ...protocols import (
    CloudEvent,
    CoapCode,
    CoapMessage,
    ConnackPacket,
    ConnectPacket,
    HttpRequest,
    MqttError,
    PacketType,
    PubackPacket,
    PublishPacket,
    decode_request,
    packet_type,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...kernel import KernelOps

_event_ids = itertools.count(1)


class AdapterError(Exception):
    """Unadaptable input or unknown protocol."""


class ProtocolAdapter(abc.ABC):
    """One pluggable adapter: raw protocol bytes -> CloudEvent."""

    protocol: str = ""

    @abc.abstractmethod
    def adapt(self, raw: bytes) -> tuple[CloudEvent, str]:
        """Returns (event, topic). Raises AdapterError on malformed input."""

    @abc.abstractmethod
    def build_ack(self, raw: bytes) -> bytes:
        """Protocol-level acknowledgement for the client, if any."""


class HttpAdapter(ProtocolAdapter):
    """HTTP/REST: the serverless default; body becomes the event data."""

    protocol = "http"

    def adapt(self, raw: bytes) -> tuple[CloudEvent, str]:
        try:
            request = decode_request(raw)
        except Exception as error:
            raise AdapterError(f"bad HTTP request: {error}") from error
        topic = request.path.strip("/").replace("/", ".")
        event = CloudEvent(
            id=f"http-{next(_event_ids)}",
            source=request.path,
            type="com.spright.http.request",
            data=request.body,
            datacontenttype=request.header("content-type", "application/octet-stream"),
            subject=topic,
        )
        return event, topic

    def build_ack(self, raw: bytes) -> bytes:
        return b""  # HTTP response is built by the gateway at ⑨


class MqttAdapter(ProtocolAdapter):
    """MQTT: PUBLISH payloads become events; QoS1 gets a PUBACK."""

    protocol = "mqtt"

    def adapt(self, raw: bytes) -> tuple[CloudEvent, str]:
        try:
            if packet_type(raw) != PacketType.PUBLISH:
                raise AdapterError("adapter only accepts PUBLISH packets")
            publish = PublishPacket.decode(raw)
        except MqttError as error:
            raise AdapterError(f"bad MQTT packet: {error}") from error
        event = CloudEvent(
            id=f"mqtt-{next(_event_ids)}",
            source=f"mqtt:{publish.topic}",
            type="com.spright.mqtt.publish",
            data=publish.payload,
            subject=publish.topic,
        )
        return event, publish.topic

    def build_ack(self, raw: bytes) -> bytes:
        publish = PublishPacket.decode(raw)
        if publish.qos == 0:
            return b""
        return PubackPacket(packet_id=publish.packet_id).encode()


class CoapAdapter(ProtocolAdapter):
    """CoAP: POST/PUT payloads become events, keyed by the Uri-Path."""

    protocol = "coap"

    def adapt(self, raw: bytes) -> tuple[CloudEvent, str]:
        try:
            message = CoapMessage.decode(raw)
        except Exception as error:
            raise AdapterError(f"bad CoAP message: {error}") from error
        topic = ".".join(message.uri_path)
        event = CloudEvent(
            id=f"coap-{next(_event_ids)}",
            source=message.path,
            type="com.spright.coap.request",
            data=message.payload,
            subject=topic,
        )
        return event, topic

    def build_ack(self, raw: bytes) -> bytes:
        message = CoapMessage.decode(raw)
        ack = CoapMessage(
            code=CoapCode.CREATED,
            message_id=message.message_id,
            msg_type=message.msg_type,
            token=message.token,
        )
        return ack.encode()


class MqttSessionTable:
    """Gateway-held L7 MQTT sessions (the stateful part of §3.6)."""

    def __init__(self) -> None:
        self._sessions: dict[str, ConnectPacket] = {}

    def connect(self, raw: bytes) -> bytes:
        packet = ConnectPacket.decode(raw)
        self._sessions[packet.client_id] = packet
        return ConnackPacket(reason_code=0).encode()

    def is_connected(self, client_id: str) -> bool:
        return client_id in self._sessions

    def disconnect(self, client_id: str) -> None:
        self._sessions.pop(client_id, None)

    def __len__(self) -> int:
        return len(self._sessions)


class AdapterHookPoint:
    """The gateway's protocol-adaptation hook: runtime-pluggable adapters."""

    def __init__(self) -> None:
        self._adapters: dict[str, ProtocolAdapter] = {}
        self.sessions = MqttSessionTable()
        self.invocations = 0

    def load(self, adapter: ProtocolAdapter) -> None:
        """Attach an adapter at runtime (dynamic library loading in §3.6)."""
        if adapter.protocol in self._adapters:
            raise AdapterError(f"adapter for {adapter.protocol!r} already loaded")
        self._adapters[adapter.protocol] = adapter

    def unload(self, protocol: str) -> None:
        if protocol not in self._adapters:
            raise AdapterError(f"no adapter loaded for {protocol!r}")
        del self._adapters[protocol]

    def loaded(self) -> list[str]:
        return sorted(self._adapters)

    def adapt(self, raw: bytes, protocol: str, ops: Optional["KernelOps"] = None):
        """Generator: run the adapter at the hook point, charging parse cost.

        Returns (CloudEvent, topic, ack_bytes). The whole adaptation happens
        inside the gateway component — zero additional context switches or
        stack traversals compared to a separate adapter pod.
        """
        adapter = self._adapters.get(protocol)
        if adapter is None:
            raise AdapterError(f"no adapter loaded for {protocol!r}")
        self.invocations += 1
        if ops is not None:
            yield ops.deserialize(len(raw))
        event, topic = adapter.adapt(raw)
        ack = adapter.build_ack(raw)
        if ops is not None and ack:
            yield ops.serialize(len(ack))
        return event, topic, ack
