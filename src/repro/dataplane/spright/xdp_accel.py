"""eBPF XDP/TC dataplane acceleration for traffic outside the chain (§3.5),
plus the λ-NIC SmartNIC compute engine that extends it past the host boundary.

An XDP program on the physical NIC and TC programs on the host-side veths
redirect raw frames between interfaces after a FIB lookup, skipping the
kernel protocol stack and its iptables walk. The programs are real bytecode
(:func:`repro.kernel.ebpf.programs.xdp_fib_forward` /
:func:`tc_fib_forward`) executed per packet; the saving the paper reports
(1.3x throughput, ~20% latency) comes from replacing two protocol-stack
traversals with two program executions plus a redirect.

:class:`NicComputeEngine` goes one step further (PAPERS.md's "λ-NIC:
Interactive Serverless Compute on Programmable SmartNICs"): whole short
functions whose handlers are expressible as match-action stages execute on
the NIC's own wimpy cores at the XDP layer. An offloaded invocation costs
*zero host cores* — only NIC compute time, which is bounded, so heavier
functions (or offloadable ones arriving while every NIC core is busy) fall
back to the host dataplane deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ...audit import OverheadKind, RequestTrace, Stage
from ...kernel import FiveTuple
from ...kernel.ebpf import Scratch, XDP_REDIRECT, TC_ACT_REDIRECT, programs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...kernel import KernelOps
    from ...runtime import FunctionResult, FunctionSpec, WorkerNode


@dataclass(frozen=True)
class NicComputeModel:
    """The SmartNIC's compute envelope.

    ``cores`` bounds concurrent offloaded invocations (one match-action
    pipeline instance per core); ``slowdown`` converts host-CPU service
    seconds into NIC-core seconds (wimpy RISC cores vs. the host's 2.2 GHz
    Xeon); ``offload_ceiling`` is the heaviest mean service time the NIC
    will accept — anything above it belongs on the host.
    """

    cores: float = 4.0
    slowdown: float = 2.75
    offload_ceiling: float = 60e-6

    @classmethod
    def from_costs(cls, costs) -> "NicComputeModel":
        return cls(
            cores=costs.nic_compute_cores,
            slowdown=costs.nic_compute_slowdown,
            offload_ceiling=costs.nic_offload_ceiling,
        )


class NicComputeEngine:
    """Executes offload-eligible function handlers on the NIC's cores.

    The offload decision is a pure function of the spec and current NIC
    occupancy — no RNG draw — so for a given seed the set of offloaded
    requests is always the same. Handler behaviors run against a per-function
    NIC-local context (the match-action table state, e.g. the kvstore's
    entries living in NIC SRAM), separate from any host pod's context.
    """

    def __init__(
        self, node: "WorkerNode", model: Optional[NicComputeModel] = None
    ) -> None:
        self.node = node
        self.model = model or NicComputeModel.from_costs(node.config.costs)
        self.in_flight = 0
        self.offloaded = 0
        self.budget_fallbacks = 0
        self.busy_seconds = 0.0
        self._contexts: dict[str, dict] = {}
        node.nic.offload_engine = self

    # -- offload decision ---------------------------------------------------
    def eligible(self, spec: "FunctionSpec") -> bool:
        """Match-action expressible AND light enough for the NIC cores."""
        return spec.nic_offloadable and spec.service_time <= self.model.offload_ceiling

    def try_reserve(self) -> bool:
        """Claim one NIC core slot; False = budget exhausted, use the host.

        Callers must pair a successful reserve with :meth:`release`.
        """
        if self.in_flight + 1 > self.model.cores:
            self.budget_fallbacks += 1
            self.node.counters.incr("nic/budget_fallbacks")
            return False
        self.in_flight += 1
        return True

    def release(self) -> None:
        self.in_flight -= 1

    # -- execution ----------------------------------------------------------
    def execute(self, spec: "FunctionSpec", payload: bytes):
        """Generator: run one handler on a NIC core; returns FunctionResult.

        Costs only NIC time (program execution + the handler scaled by the
        NIC-core slowdown) — nothing is charged to any host CPU tag, which
        is the entire point of the offload.
        """
        costs = self.node.config.costs
        context = self._contexts.setdefault(spec.name, {})
        result = spec.behavior(payload, context)
        service = (
            result.service_time
            if result.service_time is not None
            else self._sample_service_time(spec)
        )
        service += result.extra_service_time
        nic_time = costs.ebpf_run(spec.nic_insns) + service * self.model.slowdown
        self.busy_seconds += nic_time
        self.offloaded += 1
        self.node.counters.incr("nic/offloaded")
        yield self.node.env.timeout(nic_time)
        return result

    def _sample_service_time(self, spec: "FunctionSpec") -> float:
        if spec.service_time <= 0:
            return 0.0
        # A NIC-private RNG stream: offloading must not perturb the host
        # pods' service-time draw sequences (byte-identity of fallbacks).
        return self.node.rng.lognormal_service(
            f"nic/{spec.name}", spec.service_time, spec.service_time_cv
        )

    def nic_cpu_cores(self, duration: float) -> float:
        """Mean NIC cores busy over ``duration`` (the non-host cost)."""
        if duration <= 0:
            return 0.0
        return self.busy_seconds / duration


class XdpAccelerator:
    """Installs and runs the forwarding programs on NIC + veth hooks."""

    def __init__(self, node: "WorkerNode") -> None:
        self.node = node
        self.xdp_program = programs.xdp_fib_forward()
        self.tc_program = programs.tc_fib_forward()
        node.nic.xdp_hook.attach(self.xdp_program)
        self.redirects = 0
        self.passes = 0

    def install_route(self, dst_ip: str, ifindex: int) -> None:
        self.node.fib.add_route(dst_ip, ifindex)

    def forward(
        self,
        ops: "KernelOps",
        nbytes: int,
        dst_ip: str,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
    ):
        """Generator: one accelerated hop (replaces a stack traversal).

        Runs the XDP program against the flow; on a FIB hit the frame is
        redirected interface-to-interface — one interrupt, no protocol
        processing, no iptables, no extra copies.
        """
        costs = self.node.config.costs
        flow = FiveTuple(src_ip="10.0.0.1", dst_ip=dst_ip, src_port=40000, dst_port=80)
        scratch = Scratch(
            map_registry=self.node.map_registry,
            fib=self.node.fib,
            packet_flow=flow,
            now_ns=self.node.clock.now_ns,
        )
        run = self.node.nic.xdp_hook.fire(
            data=programs.encode_packet_ctx(nbytes, self.node.nic.ifindex),
            scratch=scratch,
        )
        yield ops.compute(costs.xdp_fixed + costs.ebpf_run(run.insns_executed))
        if run.verdict == XDP_REDIRECT:
            self.redirects += 1
            # Raw-frame move between interfaces: one softirq, no stack.
            yield ops.interrupt(trace, stage)
            yield ops.compute(costs.fib_lookup)
        else:
            # FIB miss: fall back to the ordinary kernel path.
            self.passes += 1
            yield ops.protocol_processing(nbytes, trace, stage)
            yield ops.interrupt(trace, stage, count=2)

    def tc_egress(
        self,
        ops: "KernelOps",
        nbytes: int,
        dst_ip: str,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
    ):
        """Generator: pod-egress redirect at the veth-host TC hook (②/③ Fig 7)."""
        costs = self.node.config.costs
        flow = FiveTuple(src_ip="10.0.1.2", dst_ip=dst_ip, src_port=40001, dst_port=80)
        scratch = Scratch(
            map_registry=self.node.map_registry,
            fib=self.node.fib,
            packet_flow=flow,
            now_ns=self.node.clock.now_ns,
        )
        # Fire against a scratch TC hook owned by the accelerator.
        run = self.node.vm.run(self.tc_program, data=programs.encode_packet_ctx(nbytes, 2), scratch=scratch)
        yield ops.compute(costs.tc_fixed + costs.ebpf_run(run.insns_executed))
        if run.return_value == TC_ACT_REDIRECT:
            self.redirects += 1
            yield ops.interrupt(trace, stage)
        else:
            self.passes += 1
            yield ops.protocol_processing(nbytes, trace, stage)
            yield ops.interrupt(trace, stage, count=2)
