"""eBPF XDP/TC dataplane acceleration for traffic outside the chain (§3.5).

An XDP program on the physical NIC and TC programs on the host-side veths
redirect raw frames between interfaces after a FIB lookup, skipping the
kernel protocol stack and its iptables walk. The programs are real bytecode
(:func:`repro.kernel.ebpf.programs.xdp_fib_forward` /
:func:`tc_fib_forward`) executed per packet; the saving the paper reports
(1.3x throughput, ~20% latency) comes from replacing two protocol-stack
traversals with two program executions plus a redirect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...audit import OverheadKind, RequestTrace, Stage
from ...kernel import FiveTuple
from ...kernel.ebpf import Scratch, XDP_REDIRECT, TC_ACT_REDIRECT, programs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...kernel import KernelOps
    from ...runtime import WorkerNode


class XdpAccelerator:
    """Installs and runs the forwarding programs on NIC + veth hooks."""

    def __init__(self, node: "WorkerNode") -> None:
        self.node = node
        self.xdp_program = programs.xdp_fib_forward()
        self.tc_program = programs.tc_fib_forward()
        node.nic.xdp_hook.attach(self.xdp_program)
        self.redirects = 0
        self.passes = 0

    def install_route(self, dst_ip: str, ifindex: int) -> None:
        self.node.fib.add_route(dst_ip, ifindex)

    def forward(
        self,
        ops: "KernelOps",
        nbytes: int,
        dst_ip: str,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
    ):
        """Generator: one accelerated hop (replaces a stack traversal).

        Runs the XDP program against the flow; on a FIB hit the frame is
        redirected interface-to-interface — one interrupt, no protocol
        processing, no iptables, no extra copies.
        """
        costs = self.node.config.costs
        flow = FiveTuple(src_ip="10.0.0.1", dst_ip=dst_ip, src_port=40000, dst_port=80)
        scratch = Scratch(
            map_registry=self.node.map_registry,
            fib=self.node.fib,
            packet_flow=flow,
            now_ns=self.node.clock.now_ns,
        )
        run = self.node.nic.xdp_hook.fire(
            data=programs.encode_packet_ctx(nbytes, self.node.nic.ifindex),
            scratch=scratch,
        )
        yield ops.compute(costs.xdp_fixed + costs.ebpf_run(run.insns_executed))
        if run.verdict == XDP_REDIRECT:
            self.redirects += 1
            # Raw-frame move between interfaces: one softirq, no stack.
            yield ops.interrupt(trace, stage)
            yield ops.compute(costs.fib_lookup)
        else:
            # FIB miss: fall back to the ordinary kernel path.
            self.passes += 1
            yield ops.protocol_processing(nbytes, trace, stage)
            yield ops.interrupt(trace, stage, count=2)

    def tc_egress(
        self,
        ops: "KernelOps",
        nbytes: int,
        dst_ip: str,
        trace: Optional[RequestTrace],
        stage: Optional[Stage],
    ):
        """Generator: pod-egress redirect at the veth-host TC hook (②/③ Fig 7)."""
        costs = self.node.config.costs
        flow = FiveTuple(src_ip="10.0.1.2", dst_ip=dst_ip, src_port=40001, dst_port=80)
        scratch = Scratch(
            map_registry=self.node.map_registry,
            fib=self.node.fib,
            packet_flow=flow,
            now_ns=self.node.clock.now_ns,
        )
        # Fire against a scratch TC hook owned by the accelerator.
        run = self.node.vm.run(self.tc_program, data=programs.encode_packet_ctx(nbytes, 2), scratch=scratch)
        yield ops.compute(costs.tc_fixed + costs.ebpf_run(run.insns_executed))
        if run.return_value == TC_ACT_REDIRECT:
            self.redirects += 1
            yield ops.interrupt(trace, stage)
        else:
            self.passes += 1
            yield ops.protocol_processing(nbytes, trace, stage)
            yield ops.interrupt(trace, stage, count=2)
