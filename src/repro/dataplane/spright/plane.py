"""S-SPRIGHT and D-SPRIGHT as deployable dataplanes.

Both share the external path (ingress gateway -> SPRIGHT gateway over the
kernel, Table 2's ①/②) and the zero-copy pool; they differ only in the
descriptor transport: event-driven SPROXY redirection versus polled DPDK
rings — precisely the §3.2.2 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...audit import Stage
from ...runtime import MetricsServer
from ...simcore import Event, Interrupt
from ..base import Dataplane, ProxyComponent, Request, RequestClass
from ..legs import external_arrival, leg_kernel
from .adapter import AdapterHookPoint, CoapAdapter, HttpAdapter, MqttAdapter
from .chain import SprightChainRuntime, SprightMessage
from .xdp_accel import XdpAccelerator


@dataclass
class SprightParams:
    """Shared SPRIGHT configuration."""

    gateway_cores: int = 2
    security_enabled: bool = True
    use_xdp_acceleration: bool = False   # §3.5: accelerate the external path
    ingress_path_cpu: float = 10e-6
    ingress_overhead_cpu: float = 20e-6
    pool_capacity: int = 8192
    pool_buffer_size: int = 16384
    # Memory-safety checked mode: None defers to the process-wide default
    # (the CLI's --sanitize flag); True/False forces it for this chain.
    sanitize: Optional[bool] = None


class _SprightBase(Dataplane):
    """Common deployment/request logic for both variants."""

    transport_kind = "sproxy"

    def __init__(
        self,
        node,
        functions,
        chain_name: str = "chain",
        params: Optional[SprightParams] = None,
        metrics_server: Optional[MetricsServer] = None,
        routes: Optional[dict] = None,
        **kwargs,
    ):
        super().__init__(node, functions, **kwargs)
        self.params = params or SprightParams()
        self.chain_name = chain_name
        self.metrics_server = metrics_server
        self.routes = routes or {}
        self.ingress = ProxyComponent(
            node,
            tag=f"{self.plane}/gw/ingress",
            path_cpu=self.params.ingress_path_cpu,
            overhead_cpu=self.params.ingress_overhead_cpu,
        )
        self.runtime: Optional[SprightChainRuntime] = None
        self.xdp: Optional[XdpAccelerator] = None
        # §3.6: protocol adaptation hook on the gateway datapath, with the
        # three stock adapters pre-loaded (more can be loaded at runtime).
        self.adapter_hook = AdapterHookPoint()
        self.adapter_hook.load(HttpAdapter())
        self.adapter_hook.load(MqttAdapter())
        self.adapter_hook.load(CoapAdapter())

    def _setup_transport(self) -> None:
        self.runtime = SprightChainRuntime(
            self.node,
            chain_name=self.chain_name,
            plane=self.plane,
            transport_kind=self.transport_kind,
            metrics_server=self.metrics_server,
            gateway_cores=self.params.gateway_cores,
            security_enabled=self.params.security_enabled,
            pool_capacity=self.params.pool_capacity,
            pool_buffer_size=self.params.pool_buffer_size,
            sanitize=self.params.sanitize,
        )
        if self.routes:
            self.runtime.routing.load_routes(self.routes)
        for name, deployment in self.deployments.items():
            self.runtime.attach_deployment(name, deployment)
        if self.params.use_xdp_acceleration:
            self.xdp = XdpAccelerator(self.node)
            self.xdp.install_route(
                "10.0.1.2", self.node.nic.ifindex + 1
            )  # gateway's veth-host

    # -- request path ---------------------------------------------------------------
    def handle_request(self, request: Request):
        runtime = self.runtime
        assert runtime is not None, "deploy() must run before handle_request()"
        trace = request.trace
        nbytes = len(request.payload)
        gateway = runtime.gateway

        request.mark("ingress", self.node.env.now)
        # ①: client -> cluster ingress gateway.
        span = request.span_begin("leg:external", "leg", bytes=nbytes)
        yield from external_arrival(self.ingress.ops, nbytes, trace, Stage.STEP_1)
        yield from self.ingress.traverse()
        request.span_end(span)

        # ②: ingress -> SPRIGHT gateway. With XDP/TC acceleration the frame
        # is redirected between veths below the protocol stack (§3.5);
        # otherwise it crosses the full kernel path.
        span = request.span_begin(
            "leg:xdp" if self.xdp is not None else "leg:kernel",
            "leg",
            bytes=nbytes,
            to="gateway",
        )
        if self.xdp is not None:
            yield from self.xdp.forward(
                self.ingress.ops, nbytes, "10.0.1.2", trace, Stage.STEP_2
            )
            # The gateway itself still terminates TCP/HTTP for the client.
            yield gateway.ops.protocol_processing(nbytes, trace, Stage.STEP_2)
            yield gateway.ops.copy(nbytes, trace, Stage.STEP_2)
            yield gateway.ops.context_switch(trace, Stage.STEP_2)
        else:
            yield from leg_kernel(
                gateway.ops, nbytes, trace, Stage.STEP_2, ops_tx=self.ingress.ops
            )
        yield from gateway.traverse()
        request.span_end(span)

        # The gateway consolidates protocol processing: payload lands in the
        # chain's private pool exactly once (the copy already audited in ②).
        handle = runtime.pool.alloc(site=f"{self.plane}/gw/{self.chain_name}")
        runtime.pool.write(handle, request.payload)
        span = request.span_begin("shm:alloc", "shm", bytes=nbytes)
        request.span_end(span)
        message = SprightMessage(
            handle=handle,
            trace=trace,
            request=request,
            done=Event(self.node.env),
            remaining=list(request.request_class.sequence[1:]),
            topic=request.request_class.topic,
        )
        request.mark("gateway", self.node.env.now)
        head = request.request_class.sequence[0]
        try:
            yield from runtime.dispatch(message, head, self.deployments.get(head))

            # DFR: all further hops bypass the gateway; we simply wait for
            # the response descriptor to come back (⑧).
            response = yield message.done
            if message.failed_error is not None:
                # The chain could not deliver (descriptor drop, pod crash,
                # ...); the buffer was already released by the runtime.
                raise message.failed_error

            # ⑨: construct the HTTP response to the external client (costed,
            # outside the audited pipeline like the other planes).
            span = request.span_begin("leg:response", "leg", bytes=len(response))
            response_bundle = gateway.ops.bundle()
            response_bundle.serialize(len(response), trace, None)
            response_bundle.copy(len(response), trace, None)
            response_bundle.protocol_processing(len(response), trace, None)
            yield response_bundle.commit()
            request.span_end(span)
        except Interrupt:
            # Cancelled by the resilience layer (timeout / hedge raced out).
            # If the chain still holds the message, buffer ownership moves
            # to it — the next worker checkpoint frees it; otherwise (never
            # delivered, or the response already came back) free here.
            message.cancelled = True
            if message.done.triggered or not message.in_chain:
                runtime.release_message(message)
            raise
        runtime.release_message(message)
        request.mark("response", self.node.env.now)
        request.response = response
        return request

    def handle_raw(
        self,
        raw: bytes,
        protocol: str,
        request_class: RequestClass,
    ):
        """Generator: adapt raw protocol bytes at the gateway, then serve.

        The adapter runs *inside* the gateway (no separate adapter pod): the
        payload it extracts goes straight to shared memory, independent of
        the L7 protocol it arrived on. Returns (request, ack_bytes).
        """
        assert self.runtime is not None, "deploy() must run before handle_raw()"
        gateway_ops = self.runtime.gateway.ops
        event, topic, ack = yield from self.adapter_hook.adapt(
            raw, protocol, ops=gateway_ops
        )
        request = Request(
            request_class=request_class,
            payload=event.data,
            created_at=self.node.env.now,
        )
        if topic:
            request.request_class = RequestClass(
                name=request_class.name,
                sequence=request_class.sequence,
                payload_size=request_class.payload_size,
                response_size=request_class.response_size,
                weight=request_class.weight,
                topic=topic,
            )
        yield from self.submit(request)
        return request, ack

    def select_pod(self, deployment, exclude=None):
        """SPRIGHT load-balances by residual capacity (§3.2.3)."""
        return deployment.pick_residual_capacity(exclude)


class SSprightDataplane(_SprightBase):
    """S-SPRIGHT: event-driven SPROXY descriptor delivery."""

    plane = "sspright"
    transport_kind = "sproxy"


class DSprightDataplane(_SprightBase):
    """D-SPRIGHT: DPDK RTE-ring descriptor delivery (poll mode)."""

    plane = "dspright"
    transport_kind = "ring"
