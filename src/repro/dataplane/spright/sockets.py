"""SPROXY socket endpoints: eBPF SK_MSG redirection between pods (§3.2.1).

Each pod's socket carries an SK_MSG hook with the SPROXY programs attached
(metrics, optional filter, redirect). Sending a descriptor executes those
programs for real in the simulated eBPF VM: the instruction count of the
actual run is what gets charged to the CPU — event-driven work, paid only
when a descriptor flows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...kernel.ebpf import (
    ArrayMap,
    HookPoint,
    ProgramType,
    Scratch,
    SK_PASS,
    SockMap,
    programs,
)
from ...mem import PacketDescriptor
from ...simcore import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...audit import RequestTrace, Stage
    from ...kernel import KernelOps
    from ...runtime import WorkerNode


class SproxySocket:
    """A pod's socket interface, extended with the SPROXY at startup."""

    def __init__(
        self,
        node: "WorkerNode",
        owner_tag: str,
        instance_id: int,
        sockmap: SockMap,
        metrics_map: ArrayMap,
    ) -> None:
        self.node = node
        self.owner_tag = owner_tag
        self.instance_id = instance_id
        self.sockmap = sockmap
        self.metrics_map = metrics_map
        self.hook = HookPoint(f"sk_msg@{owner_tag}", ProgramType.SK_MSG, node.vm)
        self.inbox: Store = Store(node.env)
        self.descriptors_sent = 0
        self.descriptors_dropped = 0

    def attach_sproxy(self, filter_fd: Optional[int] = None) -> None:
        """Attach the metric program plus the (filtered) redirect program."""
        self.hook.attach(programs.sproxy_l7_metrics(self.metrics_map.fd))
        if filter_fd is not None:
            self.hook.attach(
                programs.sproxy_filtered_redirect(filter_fd, self.sockmap.fd)
            )
        else:
            self.hook.attach(programs.sproxy_redirect(self.sockmap.fd))

    # Called from *inside the kernel* by bpf_msg_redirect_map.
    def deliver_descriptor(self, item: object) -> None:
        self.inbox.try_put(item)

    def send(
        self,
        descriptor: PacketDescriptor,
        item: object,
        ops: "KernelOps",
        trace: Optional["RequestTrace"],
        stage: Optional["Stage"],
    ):
        """Send a descriptor out of this socket (generator, sender context).

        ``item`` is what the target's inbox receives (the descriptor plus
        side-band message state). Returns True if redirected, False if the
        SPROXY dropped it (unauthorized or unknown destination).
        """
        costs = self.node.config.costs
        ctx = programs.encode_descriptor_ctx(
            next_fn_id=descriptor.next_fn,
            shm_offset=descriptor.shm_offset,
            payload_len=descriptor.length,
            sender_id=self.instance_id,
            generation=descriptor.generation,
        )
        scratch = Scratch(
            map_registry=self.node.map_registry, now_ns=self.node.clock.now_ns
        )
        # send() syscall enters the kernel; the SK_MSG programs intercept.
        run = self.hook.fire(data=ctx, scratch=scratch)
        bundle = ops.bundle()
        bundle.syscall()
        bundle.context_switch(trace, stage)
        bundle.compute(costs.ebpf_run(run.insns_executed))
        bundle.interrupt(trace, stage)  # sender-side completion softirq
        if run.verdict != SK_PASS or run.scratch.redirect_endpoint is None:
            yield bundle.commit()
            self.descriptors_dropped += 1
            self.node.counters.incr("spright/descriptors_dropped")
            return False
        bundle.compute(costs.sockmap_redirect)
        yield bundle.commit()
        run.scratch.redirect_endpoint.deliver_descriptor(item)
        self.descriptors_sent += 1
        return True

    def receive(self, ops: "KernelOps", trace, stage):
        """Receiver-side wakeup costs for one delivered descriptor."""
        bundle = ops.bundle()
        bundle.interrupt(trace, stage)       # data-ready notification
        bundle.context_switch(trace, stage)  # wake the function thread
        yield bundle.commit()
