"""SPRIGHT: the paper's contribution — gateway, SPROXY/EPROXY, DFR, security."""

from .adapter import (
    AdapterError,
    AdapterHookPoint,
    CoapAdapter,
    HttpAdapter,
    MqttAdapter,
    MqttSessionTable,
    ProtocolAdapter,
)
from .chain import (
    ChainTransport,
    RingTransport,
    SpinCharger,
    SprightChainRuntime,
    SprightMessage,
    SproxyTransport,
)
from .lambda_nic import LambdaNicDataplane
from .plane import DSprightDataplane, SprightParams, SSprightDataplane
from .routing import DfrRoutingTable, GATEWAY_INSTANCE_ID, RoutingError
from .security import SecurityDomain, filter_key
from .sockets import SproxySocket
from .xdp_accel import NicComputeEngine, NicComputeModel, XdpAccelerator

__all__ = [
    "AdapterError",
    "AdapterHookPoint",
    "ChainTransport",
    "CoapAdapter",
    "DfrRoutingTable",
    "DSprightDataplane",
    "GATEWAY_INSTANCE_ID",
    "HttpAdapter",
    "LambdaNicDataplane",
    "MqttAdapter",
    "MqttSessionTable",
    "NicComputeEngine",
    "NicComputeModel",
    "ProtocolAdapter",
    "RingTransport",
    "RoutingError",
    "SecurityDomain",
    "SpinCharger",
    "SprightChainRuntime",
    "SprightMessage",
    "SprightParams",
    "SproxySocket",
    "SproxyTransport",
    "SSprightDataplane",
    "XdpAccelerator",
    "filter_key",
]
