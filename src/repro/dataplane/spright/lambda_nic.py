"""λ-NIC: the fifth dataplane — serverless functions on the SmartNIC itself.

PAPERS.md's "λ-NIC: Interactive Serverless Compute on Programmable
SmartNICs" observes that most serverless functions are short and small
enough to run entirely on a programmable NIC's cores. This plane extends
S-SPRIGHT with a :class:`~.xdp_accel.NicComputeEngine`: when *every*
function in a request's call sequence is offload-eligible
(match-action expressible + under the NIC's service-time ceiling) and a NIC
core is free, the request never crosses the PCIe boundary — rx DMA, XDP
parse, the handlers back-to-back on NIC cores, tx DMA. Zero copies, zero
context switches, zero interrupts, and — the headline — **zero host-core
cost**. Anything heavier, or arriving while all NIC cores are busy, falls
back to the ordinary S-SPRIGHT host path (same shared-memory chain, same
costs), so the NIC is an accelerator, not a cliff.
"""

from __future__ import annotations

from typing import Optional

from ..base import Request
from .plane import SSprightDataplane
from .xdp_accel import NicComputeEngine, NicComputeModel


class LambdaNicDataplane(SSprightDataplane):
    """S-SPRIGHT + SmartNIC offload of whole short functions."""

    plane = "lambdanic"

    def __init__(self, *args, nic_model: Optional[NicComputeModel] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self._nic_model = nic_model
        self.nic: Optional[NicComputeEngine] = None

    def _setup_transport(self) -> None:
        super()._setup_transport()
        self.nic = NicComputeEngine(self.node, self._nic_model)

    # -- request path -------------------------------------------------------
    def handle_request(self, request: Request):
        nic = self.nic
        assert nic is not None, "deploy() must run before handle_request()"
        specs = [self.functions[name] for name in request.request_class.sequence]
        if all(nic.eligible(spec) for spec in specs) and nic.try_reserve():
            try:
                yield from self._serve_at_nic(request, specs)
            finally:
                nic.release()
            return request
        # Heavy function in the sequence, or NIC compute budget exhausted:
        # the host plane serves it — the λ-NIC fallback contract.
        self.node.counters.incr(f"{self.plane}/host_fallbacks")
        result = yield from super().handle_request(request)
        return result

    def _serve_at_nic(self, request: Request, specs):
        """Generator: the whole call sequence on NIC cores (no host CPU)."""
        env = self.node.env
        costs = self.node.config.costs
        request.mark("nic_ingress", env.now)
        span = request.span_begin(
            "nic:offload", "nic", fns=len(specs), bytes=len(request.payload)
        )
        # Frame lands in NIC SRAM: rx DMA + XDP parse/steer.
        yield env.timeout(costs.nic_dma + costs.xdp_fixed)
        payload = request.payload
        for spec in specs:
            result = yield from self.nic.execute(spec, payload)
            payload = result.payload
        # Response leaves straight from the NIC: tx DMA only.
        yield env.timeout(costs.nic_dma)
        request.span_end(span, offloaded=True)
        self.node.counters.incr(f"{self.plane}/offloaded")
        request.response = payload
        request.mark("nic_response", env.now)
