"""The SPRIGHT chain runtime: gateway, function workers, and transports.

This is the paper's §3 assembled: a per-chain SPRIGHT gateway consolidating
protocol processing (§3.1), zero-copy payloads in the chain's private
hugepage pool (§3.2.1), descriptor passing by either the event-driven SPROXY
(S-SPRIGHT) or DPDK-style polled rings (D-SPRIGHT) (§3.2.2), DFR with
residual-capacity load balancing (§3.2.3), EPROXY/SPROXY metrics feeding the
metrics server (§3.3), and per-chain security domains (§3.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ...audit import RequestTrace, Stage
from ...kernel.ebpf import ArrayMap, HookPoint, ProgramType, Scratch, SockMap, programs
from ...mem import (
    BufferHandle,
    PacketDescriptor,
    PollingConsumer,
    PoolSanitizer,
    RteRing,
    SharedMemoryManager,
    ShmScavenger,
    default_sanitize,
)
from ...runtime import Deployment, MetricsServer, PodMetrics, RESPONSE
from ...runtime.pod import Pod
from ...simcore import DeliveryError, Event, Interrupt, Store
from ..base import ProxyComponent, Request
from .routing import DfrRoutingTable, GATEWAY_INSTANCE_ID
from .security import SecurityDomain
from .sockets import SproxySocket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...runtime import WorkerNode


@dataclass
class SprightMessage:
    """Side-band state travelling with a descriptor through the chain.

    The payload itself stays in shared memory; only the 24-byte descriptor
    crosses sockets/rings. ``remaining`` drives sequence-style workloads
    (Table 3); when it is None the worker consults the DFR routing table by
    topic instead (§3.2.3's publish/subscribe model).
    """

    handle: BufferHandle
    trace: Optional[RequestTrace]
    request: Optional[Request]
    done: Event
    remaining: Optional[list[str]] = None
    topic: str = ""
    hop_index: int = 0
    sender_instance: int = GATEWAY_INSTANCE_ID
    response: bytes = b""
    pending_stage: Optional[Stage] = None  # stage of the hop in flight
    descriptor: Optional[PacketDescriptor] = None  # wire form of the hop in flight
    # Failure/cancellation lifecycle (fault injection, resilience layer):
    cancelled: bool = False  # requester gave up; the chain frees the buffer
    freed: bool = False      # single-free guard (requester XOR chain frees)
    in_chain: bool = False   # a descriptor for it reached some inbox/ring
    failed_error: Optional[DeliveryError] = None  # set when delivery failed

    def next_stage(self, to_gateway: bool) -> Optional[Stage]:
        """Audit stage for the next hop (response hops are not staged)."""
        if to_gateway:
            return None
        mapping = {0: Stage.STEP_3, 1: Stage.STEP_4, 2: Stage.STEP_5}
        return mapping.get(self.hop_index)


class SpinCharger:
    """Tops a tag's CPU up to N always-busy cores (DPDK poll mode).

    D-SPRIGHT components spin whether or not traffic flows; rather than
    simulating billions of empty poll iterations, this process back-fills
    each accounting bucket so the tag shows >= ``cores`` busy cores.
    """

    def __init__(self, node: "WorkerNode", tag: str, cores: float = 1.0) -> None:
        self.node = node
        self.tag = tag
        self.cores = cores
        self._stopped = False
        self.process = node.env.process(self._run(), name=f"spin-{tag}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        accounting = self.node.cpu.accounting
        width = accounting.bucket_width
        bucket = 0
        while not self._stopped:
            yield self.node.env.timeout(width)
            busy = accounting.usage_percent(self.tag, bucket) / 100.0
            spin = self.cores * width - busy * width
            # Record in <= one-bucket chunks so N spinning cores charge N
            # core-seconds *within this bucket* (record() would otherwise
            # spread a multi-core charge across later buckets).
            while spin > 1e-12:
                chunk = min(width, spin)
                accounting.record(self.tag, bucket * width, chunk, op="poll_spin")
                spin -= chunk
            bucket += 1


class ChainTransport(abc.ABC):
    """Descriptor channel between chain members (SPROXY or RTE rings)."""

    @abc.abstractmethod
    def make_endpoint(self, owner_tag: str, instance_id: int) -> object:
        """Create the per-member receive endpoint."""

    @abc.abstractmethod
    def send(self, sender_endpoint, descriptor, message, ops, trace, stage):
        """Generator: move a descriptor to its destination. Returns bool."""

    @abc.abstractmethod
    def receive_costs(self, endpoint, ops, trace, stage):
        """Generator: receiver-side costs for one descriptor."""

    @abc.abstractmethod
    def wait_for_item(self, endpoint):
        """Generator: block until an item is available; returns it."""

    def on_pod_registered(self, instance_id: int, endpoint) -> None:
        """Transport bookkeeping when a pod joins."""

    def on_pod_deregistered(self, instance_id: int) -> None:
        """Transport bookkeeping when a pod leaves."""


class SproxyTransport(ChainTransport):
    """S-SPRIGHT: eBPF SK_MSG sockets + sockmap, fully event-driven."""

    def __init__(
        self, node: "WorkerNode", chain_name: str, security: Optional[SecurityDomain]
    ) -> None:
        self.node = node
        self.chain_name = chain_name
        self.security = security
        self.sockmap = SockMap(max_entries=1024, name=f"sockmap-{chain_name}")
        node.map_registry.create(self.sockmap)
        self.metrics_map = ArrayMap(max_entries=2, name=f"l7metrics-{chain_name}")
        node.map_registry.create(self.metrics_map)

    def make_endpoint(self, owner_tag: str, instance_id: int) -> SproxySocket:
        socket = SproxySocket(
            self.node, owner_tag, instance_id, self.sockmap, self.metrics_map
        )
        filter_fd = self.security.filter_fd if self.security else None
        socket.attach_sproxy(filter_fd=filter_fd)
        return socket

    def on_pod_registered(self, instance_id: int, endpoint) -> None:
        self.sockmap.update(instance_id, endpoint)

    def on_pod_deregistered(self, instance_id: int) -> None:
        if instance_id in self.sockmap:
            self.sockmap.delete(instance_id)

    def send(self, sender_endpoint, descriptor, message, ops, trace, stage):
        delivered = yield from sender_endpoint.send(
            descriptor, message, ops, trace, stage
        )
        if delivered:
            message.in_chain = True
        elif self.security is not None:
            self.security.record_denial()
        return delivered

    def receive_costs(self, endpoint, ops, trace, stage):
        yield from endpoint.receive(ops, trace, stage)

    def wait_for_item(self, endpoint):
        item = yield endpoint.inbox.get()
        return item


class RingEndpoint:
    """A D-SPRIGHT member's RTE ring, with a wakeup event for the sim."""

    def __init__(self, node: "WorkerNode", ring: RteRing) -> None:
        self.node = node
        self.ring = ring

    def deliver_descriptor(self, item: object) -> bool:
        return self.ring.enqueue(item)


class RingTransport(ChainTransport):
    """D-SPRIGHT: polled DPDK rings; near-zero hop latency, spinning CPUs."""

    def __init__(
        self,
        node: "WorkerNode",
        manager: SharedMemoryManager,
        poll_interval: float = 0.5e-6,
    ) -> None:
        self.node = node
        self.manager = manager
        self.poll_interval = poll_interval
        self._endpoints: dict[int, RingEndpoint] = {}

    def make_endpoint(self, owner_tag: str, instance_id: int) -> RingEndpoint:
        ring = self.manager.create_ring(f"{owner_tag}#{instance_id}", size=4096)
        # Fault injection: forced overflows make this enqueue behave as if
        # the ring were full (inert-injector fast path inside the hook).
        ring.fault_hook = self.node.faults.ring_overflow
        return RingEndpoint(self.node, ring)

    def on_pod_registered(self, instance_id: int, endpoint) -> None:
        self._endpoints[instance_id] = endpoint

    def on_pod_deregistered(self, instance_id: int) -> None:
        self._endpoints.pop(instance_id, None)

    def send(self, sender_endpoint, descriptor, message, ops, trace, stage):
        costs = self.node.config.costs
        target = self._endpoints.get(descriptor.next_fn)
        if target is None:
            self.node.counters.incr("spright/descriptors_dropped")
            return False
        yield ops.compute(costs.ring_enqueue)
        accepted = target.deliver_descriptor(message)
        if accepted:
            message.in_chain = True
        else:
            self.node.counters.incr("spright/ring_overflows")
        return accepted

    def receive_costs(self, endpoint, ops, trace, stage):
        faults = self.node.faults
        if faults.active:
            # Descriptor stall: the consumer's dequeue is delayed (a slow
            # or preempted poll core) without losing the descriptor.
            stall = faults.ring_stall(endpoint.ring.name)
            if stall > 0:
                yield self.node.env.timeout(stall)
        yield ops.compute(self.node.config.costs.ring_dequeue)

    def wait_for_item(self, endpoint):
        while True:
            ok, item = endpoint.ring.dequeue()
            if ok:
                return item
            yield endpoint.ring.not_empty_event(self.node.env)
            yield self.node.env.timeout(self.poll_interval)


class SprightChainRuntime:
    """One deployed chain: gateway + pool + transport + function workers."""

    def __init__(
        self,
        node: "WorkerNode",
        chain_name: str,
        plane: str,
        transport_kind: str,
        metrics_server: Optional[MetricsServer] = None,
        gateway_cores: int = 2,
        security_enabled: bool = True,
        pool_capacity: int = 8192,
        pool_buffer_size: int = 16384,
        sanitize: Optional[bool] = None,
    ) -> None:
        if transport_kind not in ("sproxy", "ring"):
            raise ValueError(f"unknown transport {transport_kind!r}")
        self.node = node
        self.chain_name = chain_name
        self.plane = plane
        self.transport_kind = transport_kind
        self.metrics_server = metrics_server

        # §3.4 startup flow ①②: a dedicated shared memory manager creates
        # the chain's private pool under its unguessable file prefix.
        self.manager = SharedMemoryManager(node.pools, chain_name)
        self.manager.initialize(
            buffer_size=pool_buffer_size, capacity=pool_capacity
        )
        self.pool = self.manager.attach(self.manager.file_prefix)
        # Checked mode: the sanitizer watches the chain's pool, counting
        # violations into the node counters (``sanitizer/*``) and reporting
        # buffers leaked at teardown with their allocation sites.
        if sanitize is None:
            sanitize = default_sanitize()
        self.sanitizer: Optional[PoolSanitizer] = None
        if sanitize:
            self.sanitizer = PoolSanitizer(counter=node.counters)
            self.pool.attach_sanitizer(self.sanitizer)
        # Recovery: per-pod buffer ownership so a crashed pod's in-flight
        # buffers can be reclaimed (generation bump -> stale descriptors
        # fault cleanly) instead of leaking from the chain's pool.
        self.scavenger = ShmScavenger(self.pool, counter=node.counters)

        self.security = (
            SecurityDomain(node.map_registry, chain_name) if security_enabled else None
        )
        if transport_kind == "sproxy":
            self.transport: ChainTransport = SproxyTransport(
                node, chain_name, self.security
            )
        else:
            self.transport = RingTransport(node, self.manager)

        # §3.4 startup flow ③: the dedicated SPRIGHT gateway (2 pinned cores,
        # matching the paper's fair-comparison configuration).
        self.gateway = ProxyComponent(
            node,
            tag=f"{plane}/gw/{chain_name}",
            pinned_cores=gateway_cores,
            path_cpu=4e-6,
        )
        self.gateway_endpoint = self.transport.make_endpoint(
            f"{plane}/gw/{chain_name}", GATEWAY_INSTANCE_ID
        )
        self.transport.on_pod_registered(GATEWAY_INSTANCE_ID, self.gateway_endpoint)

        # EPROXY: TC-attached L3 metric program on the gateway's veth.
        self.l3_metrics = ArrayMap(max_entries=2, name=f"l3metrics-{chain_name}")
        node.map_registry.create(self.l3_metrics)
        self.eproxy_hook = HookPoint(
            f"tc@gw-{chain_name}", ProgramType.TC, node.vm
        )
        self.eproxy_hook.attach(programs.eproxy_l3_metrics(self.l3_metrics.fd))

        self.routing = DfrRoutingTable(node, chain_name)
        self._endpoints: dict[int, object] = {}
        self._function_of_instance: dict[int, str] = {}
        self._spinners: dict[int, SpinCharger] = {}
        self._gateway_spinner: Optional[SpinCharger] = None
        if transport_kind == "ring":
            self._gateway_spinner = SpinCharger(
                node, self.gateway.tag, cores=gateway_cores
            )
        node.env.process(self._gateway_worker(), name=f"gw-{chain_name}")
        if metrics_server is not None:
            node.env.process(self._metrics_agent(), name=f"metrics-{chain_name}")

    # -- pod wiring (called via Deployment callbacks) ---------------------------
    def attach_deployment(self, function_name: str, deployment: Deployment) -> None:
        deployment.pod_ready_callbacks.append(
            lambda pod, name=function_name: self._on_pod_ready(name, pod)
        )
        deployment.pod_terminated_callbacks.append(
            lambda pod, name=function_name: self._on_pod_gone(name, pod)
        )
        for pod in deployment.servable_pods():
            self._on_pod_ready(function_name, pod)

    def _on_pod_ready(self, function_name: str, pod: Pod) -> None:
        endpoint = self.transport.make_endpoint(pod.cpu_tag, pod.instance_id)
        self._endpoints[pod.instance_id] = endpoint
        self._function_of_instance[pod.instance_id] = function_name
        self.transport.on_pod_registered(pod.instance_id, endpoint)
        self.routing.register_instance(function_name, pod)
        if self.security is not None:
            # kubelet-configured rules (§3.4): chain members may talk to each
            # other and to the gateway; nothing outside the chain can.
            self.security.allow(GATEWAY_INSTANCE_ID, pod.instance_id)
            self.security.allow(pod.instance_id, GATEWAY_INSTANCE_ID)
            for other_id in self._function_of_instance:
                if other_id != pod.instance_id:
                    self.security.allow(other_id, pod.instance_id)
                    self.security.allow(pod.instance_id, other_id)
        if self.transport_kind == "ring":
            self._spinners[pod.instance_id] = SpinCharger(
                self.node, pod.cpu_tag, cores=1.0
            )
        self.node.env.process(
            self._function_worker(function_name, pod, endpoint),
            name=f"worker-{pod.cpu_tag}#{pod.instance_id}",
        )

    def _on_pod_gone(self, function_name: str, pod: Pod) -> None:
        self.routing.deregister_instance(function_name, pod)
        self.transport.on_pod_deregistered(pod.instance_id)
        self._endpoints.pop(pod.instance_id, None)
        self._function_of_instance.pop(pod.instance_id, None)
        # D-SPRIGHT: the dead pod's poll core stops spinning once the pod is
        # actually torn down; without this, a supervisor-terminated pod kept
        # charging a full core to its CPU tag forever.
        spinner = self._spinners.pop(pod.instance_id, None)
        if spinner is not None:
            spinner.stop()

    # -- gateway ingress path (called by the dataplane) ---------------------------
    def dispatch(self, message: SprightMessage, head_function: str, deployment):
        """Generator: gateway invokes the head function of the chain (① Fig 4)."""
        # EPROXY L3 metrics fire on the gateway's veth RX.
        run = self.eproxy_hook.fire(
            data=programs.encode_packet_ctx(message.handle.size, 1),
            scratch=Scratch(map_registry=self.node.map_registry),
        )
        span = None
        if message.request is not None:
            span = message.request.span_begin(
                "ebpf:eproxy", "ebpf", insns=run.insns_executed
            )
        yield self.gateway.cpu.execute(
            self.node.config.costs.ebpf_run(run.insns_executed),
            self.gateway.tag,
            op="ebpf_run",
        )
        if message.request is not None:
            message.request.span_end(span)
        sent = yield from self._send_to_function(
            self.gateway_endpoint,
            self.gateway.ops,
            message,
            head_function,
            deployment,
        )
        return sent

    def _send_to_function(self, endpoint, ops, message, function_name, deployment):
        if message.freed:
            # The buffer was reclaimed (crashed owner) while this hop was
            # being prepared; the descriptor must not re-enter the chain.
            return False
        claimed = message.request.claimed_pods if message.request is not None else None
        pod = self.routing.pick_instance(function_name, claimed)
        if pod is None and deployment is not None:
            deployment.waiting += 1
            try:
                while pod is None:
                    if not deployment.live_pods():
                        deployment.scale_to(1)
                        deployment.note_cold_start()
                        self.node.counters.incr(f"{self.plane}/cold_starts")
                    yield deployment.any_servable_event()
                    pod = self.routing.pick_instance(function_name, claimed)
            finally:
                deployment.waiting -= 1
        while pod is None:
            yield self.node.env.timeout(0.01)
            pod = self.routing.pick_instance(function_name, claimed)
        if claimed is not None:
            claimed.add(pod.instance_id)
        descriptor = PacketDescriptor(
            next_fn=pod.instance_id,
            shm_offset=message.handle.offset,
            length=message.handle.size,
            generation=message.handle.generation,
        )
        stage = message.next_stage(to_gateway=False)
        message.hop_index += 1
        message.pending_stage = stage
        message.descriptor = descriptor
        span = None
        if message.request is not None:
            span = message.request.span_begin(
                f"hop:{function_name}",
                "shm",
                bytes=descriptor.length,
                transport=self.transport_kind,
            )
        sent = yield from self.transport.send(
            endpoint, descriptor, message, ops, message.trace, stage
        )
        if not sent:
            sent = yield from self._repair_and_resend(endpoint, ops, message, pod)
        if message.request is not None:
            message.request.span_end(span, delivered=sent)
        if not sent:
            self._fail_message(
                message,
                DeliveryError(
                    "descriptor_drop",
                    f"descriptor to {function_name} undeliverable",
                ),
            )
        else:
            # The buffer is now parked in the target pod's inbox/ring: that
            # pod owns it until it forwards or the buffer is freed.
            self.scavenger.assign(pod.instance_id, message.handle, message)
        return sent

    def _repair_and_resend(self, endpoint, ops, message, pod):
        """Self-healing after an eBPF map eviction (fault injection).

        If the target pod is alive but its sockmap entry vanished, the
        runtime re-registers the socket — the SPRIGHT controller's reaction
        to map churn — and resends the descriptor once.
        """
        if not isinstance(self.transport, SproxyTransport):
            return False
        if pod.instance_id in self.transport.sockmap or not pod.is_servable:
            return False
        target = self._endpoints.get(pod.instance_id)
        if target is None:
            return False
        self.transport.on_pod_registered(pod.instance_id, target)
        self.node.counters.incr("spright/sockmap_repairs")
        sent = yield from self.transport.send(
            endpoint,
            message.descriptor,
            message,
            ops,
            message.trace,
            message.pending_stage,
        )
        return sent

    def _send_to_gateway(self, endpoint, ops, message):
        if message.freed:
            return False
        descriptor = PacketDescriptor(
            next_fn=GATEWAY_INSTANCE_ID,
            shm_offset=message.handle.offset,
            length=message.handle.size,
            generation=message.handle.generation,
        )
        message.hop_index += 1
        message.pending_stage = None
        message.descriptor = descriptor
        span = None
        if message.request is not None:
            span = message.request.span_begin(
                "hop:response",
                "shm",
                bytes=descriptor.length,
                transport=self.transport_kind,
            )
        sent = yield from self.transport.send(
            endpoint, descriptor, message, ops, message.trace, None
        )
        if message.request is not None:
            message.request.span_end(span, delivered=sent)
        if not sent:
            self._fail_message(
                message,
                DeliveryError("descriptor_drop", "response descriptor undeliverable"),
            )
        else:
            # Ownership moves to the gateway (never a reclaim target); the
            # requester frees the buffer after reading the response.
            self.scavenger.assign(GATEWAY_INSTANCE_ID, message.handle, message)
        return sent

    # -- crash recovery (called by the pod supervisor) ----------------------------
    def reclaim_orphans(self, pod: Pod) -> int:
        """Reclaim every shared-memory buffer a crashed pod still owned.

        Each orphan's slot generation is bumped (stale descriptors now fault
        cleanly instead of aliasing a recycled buffer) and its waiting
        requester is woken with a typed crash error — otherwise the closed
        loop would hang forever on ``done`` events nobody will succeed.
        Returns the number of buffers reclaimed.
        """
        reclaimed = self.scavenger.reclaim(
            pod.instance_id, site=f"{self.chain_name}/crash#{pod.instance_id}"
        )
        for _handle, token in reclaimed:
            if not isinstance(token, SprightMessage):
                continue
            token.freed = True
            if token.failed_error is None:
                token.failed_error = DeliveryError(
                    "crash",
                    f"buffer reclaimed from crashed pod "
                    f"{pod.cpu_tag}#{pod.instance_id}",
                )
            if not token.done.triggered:
                token.done.succeed(None)
        return len(reclaimed)

    def verify_registration(self, pod: Pod) -> bool:
        """Post-restart check: is the replacement pod wired into the plane?

        The ready callbacks normally do all of this; the supervisor calls it
        after each restart as a belt-and-braces repair — if the sockmap entry
        is missing (e.g. a map eviction raced the restart) it is re-inserted
        through the same path as :meth:`_repair_and_resend`.
        """
        endpoint = self._endpoints.get(pod.instance_id)
        if endpoint is None:
            return False
        if isinstance(self.transport, SproxyTransport):
            if pod.instance_id not in self.transport.sockmap:
                self.transport.on_pod_registered(pod.instance_id, endpoint)
                self.node.counters.incr("spright/sockmap_repairs")
        return self.routing.instance(pod.instance_id) is pod

    # -- failure/cancellation lifecycle ------------------------------------------
    def release_message(self, message: SprightMessage) -> None:
        """Free the message's pool buffer exactly once (requester or chain)."""
        if not message.freed:
            message.freed = True
            self.scavenger.release(message.handle)
            self.pool.free(message.handle)

    def _fail_message(self, message: SprightMessage, error: DeliveryError) -> None:
        """Delivery failed mid-chain: release the buffer and wake the
        requester with the typed error (surfaced via ``failed_error`` —
        failing the ``done`` event would crash abandoned hedges)."""
        message.failed_error = error
        self.release_message(message)
        self.node.counters.incr("faults/chain_failures")
        if not message.done.triggered:
            message.done.succeed(None)

    # -- workers -------------------------------------------------------------------
    def _function_worker(self, function_name: str, pod: Pod, endpoint):
        """Dispatch loop for one pod's descriptors (② Fig 4).

        Each descriptor is handled in its own process so the pod's
        concurrency limit — not the dispatch loop — bounds parallelism,
        mirroring the event-driven invocation model.
        """
        ops = self.node.ops(pod.cpu_tag)
        while pod.is_servable or pod.phase.value in ("starting", "pending"):
            try:
                message = yield from self.transport.wait_for_item(endpoint)
            except Interrupt:
                return
            assert isinstance(message, SprightMessage)
            self.node.env.process(
                self._handle_message(function_name, pod, endpoint, ops, message)
            )

    def _handle_message(self, function_name: str, pod: Pod, endpoint, ops, message):
        """Serve one descriptor: wake, read in place, run, route, forward."""
        # Receiver-side wakeup costs count toward the in-flight hop.
        span = None
        if message.request is not None:
            span = message.request.span_begin("shm:wakeup", "shm", fn=function_name)
        yield from self.transport.receive_costs(
            endpoint, ops, message.trace, message.pending_stage
        )
        if message.request is not None:
            message.request.span_end(span)
        if message.cancelled or message.freed:
            # The requester gave up while the descriptor was in flight (the
            # chain now owns, and drops, the buffer) — or the scavenger
            # already reclaimed it from a crashed owner.
            self.release_message(message)
            return
        # Zero-copy: the function reads the payload in place, resolving the
        # wire descriptor's (offset, generation) identity through the pool.
        payload = self._resolve_payload(message)
        if message.request is not None:
            message.request.mark(f"deliver:{function_name}", self.node.env.now)
        try:
            result = yield from pod.serve(payload)
        except DeliveryError as error:
            # The pod crashed mid-request (fault injection): surface the
            # typed failure to the requester instead of crashing the worker.
            if message.request is not None:
                message.request.mark(f"crash:{function_name}", self.node.env.now)
            self._fail_message(message, error)
            return
        if message.request is not None:
            message.request.mark(f"served:{function_name}", self.node.env.now)
        if message.cancelled or message.freed:
            # freed: the scavenger reclaimed the buffer while this pod was
            # serving (its owner crashed); writing back would be a
            # use-after-free against a bumped generation.
            self.release_message(message)
            return
        # In-place update of the buffer with the function's output.
        self.pool.write(message.handle, result.payload)
        message.topic = result.topic or message.topic
        message.sender_instance = pod.instance_id

        # DFR step 1: where next? Sequence-driven or routing-table-driven.
        if message.remaining is not None:
            next_function = (
                message.remaining.pop(0) if message.remaining else RESPONSE
            )
        else:
            next_function = self.routing.next_function(function_name, message.topic)
        if next_function == RESPONSE or self.routing.is_response(next_function):
            yield from self._send_to_gateway(endpoint, ops, message)
        else:
            yield from self._send_to_function(
                endpoint, ops, message, next_function, None
            )

    def _gateway_worker(self):
        """Gateway-side consumer: responses coming back from the chain (⑧)."""
        ops = self.gateway.ops
        while True:
            message = yield from self.transport.wait_for_item(self.gateway_endpoint)
            assert isinstance(message, SprightMessage)
            self.node.env.process(self._finish_response(ops, message))

    def _resolve_payload(self, message: SprightMessage) -> bytes:
        """Receive-side read: verify the descriptor before touching memory.

        Both transports deliver the 24-byte descriptor alongside the
        side-band message; resolution rejects stale ``(offset, generation)``
        pairs and boundary-straddling ranges (ABA/use-after-free defence).
        """
        if message.descriptor is not None:
            return self.pool.resolve_descriptor(message.descriptor)
        return self.pool.read(message.handle)

    def _finish_response(self, ops, message: SprightMessage):
        span = None
        if message.request is not None:
            span = message.request.span_begin("shm:response", "shm")
        yield from self.transport.receive_costs(
            self.gateway_endpoint, ops, message.trace, None
        )
        if message.request is not None:
            message.request.span_end(span)
        if message.cancelled or message.freed:
            # Nobody is waiting for this response anymore (timeout/hedge
            # loss, or a crash-reclaimed buffer): the chain drops the buffer
            # instead of the requester.
            self.release_message(message)
            return
        message.response = self._resolve_payload(message)
        if not message.done.triggered:
            message.done.succeed(message.response)

    def _metrics_agent(self, interval: float = 2.0):
        """The gateway's built-in agent: eBPF metric maps -> metrics server."""
        last_count = 0
        while True:
            yield self.node.env.timeout(interval)
            metrics_map = self._l7_metrics_map()
            if metrics_map is None:
                continue
            count = metrics_map.lookup(programs.METRIC_SLOT_COUNT) or 0
            rate = (count - last_count) / interval
            last_count = count
            in_flight = sum(
                pod.in_flight
                for instance_id, pod in self.routing._by_instance_id.items()
            )
            self.metrics_server.report(
                PodMetrics(
                    function=self.chain_name,
                    timestamp=self.node.env.now,
                    request_rate=rate,
                    concurrency=in_flight,
                )
            )
            # The scrape itself is cheap but not free.
            self.gateway.cpu.execute(5e-6, self.gateway.tag, op="metrics_scrape")

    def _l7_metrics_map(self) -> Optional[ArrayMap]:
        if isinstance(self.transport, SproxyTransport):
            return self.transport.metrics_map
        return self.l3_metrics

    def teardown(self) -> None:
        for spinner in self._spinners.values():
            spinner.stop()
        if self._gateway_spinner is not None:
            self._gateway_spinner.stop()
        self.manager.teardown()
