"""Direct Function Routing: the two-step route resolution of §3.2.3.

Step 1 (userspace, table kept in shared memory): ``(current function,
topic)`` -> next function *name* via the chain's routing table, configured
by the SPRIGHT controller from the user-defined sequence.

Step 2 (kernel): function name -> pod *instance* chosen by residual-capacity
load balancing; the instance ID is packed into the packet descriptor and the
in-kernel sockmap resolves it to a socket at redirect time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...runtime import DEFAULT_TOPIC, RESPONSE
from ...runtime.pod import Pod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...runtime import WorkerNode

GATEWAY_INSTANCE_ID = 0


class RoutingError(Exception):
    """Route misses and registration conflicts."""


class DfrRoutingTable:
    """Chain-scoped routing state: topic routes + live instance registry."""

    def __init__(self, node: "WorkerNode", chain_name: str) -> None:
        self.node = node
        self.chain_name = chain_name
        self._routes: dict[tuple[str, str], str] = {}
        self._instances: dict[str, list[Pod]] = {}
        self._by_instance_id: dict[int, Pod] = {}
        self.lookups = 0

    # -- controller-side configuration --------------------------------------
    def set_route(self, current: str, topic: str, next_function: str) -> None:
        self._routes[(current, topic)] = next_function

    def load_routes(self, routes: dict[tuple[str, str], str]) -> None:
        """Bulk-configure from a ChainSpec's route map (controller startup)."""
        for (current, topic), destination in routes.items():
            self.set_route(current, topic, destination)

    def register_instance(self, function: str, pod: Pod) -> None:
        self._instances.setdefault(function, []).append(pod)
        self._by_instance_id[pod.instance_id] = pod

    def deregister_instance(self, function: str, pod: Pod) -> None:
        pods = self._instances.get(function, [])
        if pod in pods:
            pods.remove(pod)
        self._by_instance_id.pop(pod.instance_id, None)

    # -- data-path resolution ----------------------------------------------------
    def next_function(self, current: str, topic: str = DEFAULT_TOPIC) -> str:
        """Step 1: the userspace routing-table lookup."""
        self.lookups += 1
        destination = self._routes.get((current, topic))
        if destination is None and topic != DEFAULT_TOPIC:
            destination = self._routes.get((current, DEFAULT_TOPIC))
        if destination is None:
            raise RoutingError(
                f"no route from {current!r} topic {topic!r} in chain {self.chain_name!r}"
            )
        return destination

    def pick_instance(self, function: str, exclude=None) -> Optional[Pod]:
        """Step 2 (LB): max residual service capacity among servable pods.

        Pods that stopped answering probes (hung, about to be marked down)
        are deprioritized: when any responsive instance exists, only
        responsive instances are candidates — otherwise a hung-but-healthy
        pod keeps winning on stale residual capacity and every retry/hedge
        lands back on it. Fault-free the filter is an exact no-op.

        ``exclude`` is a clone group's claimed-pod set (see
        ``Request.claimed_pods``): claimed instances are skipped so
        synchronized clones land on distinct pods, falling back to the full
        candidate list when every instance is claimed.
        """
        pods = [pod for pod in self._instances.get(function, []) if pod.is_servable]
        responsive = [pod for pod in pods if pod.responsive]
        if responsive:
            pods = responsive
        if exclude:
            unclaimed = [pod for pod in pods if pod.instance_id not in exclude]
            if unclaimed:
                pods = unclaimed
        if not pods:
            return None
        now = self.node.env.now
        return max(pods, key=lambda pod: pod.residual_capacity(now))

    def instance(self, instance_id: int) -> Optional[Pod]:
        return self._by_instance_id.get(instance_id)

    def is_response(self, destination: str) -> bool:
        return destination == RESPONSE
