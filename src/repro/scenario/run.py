"""Scenario execution: load -> override -> resolve -> dispatch -> report.

``spright-repro run <scenario> [--set key=value …]`` lands here. The
dispatch table maps each experiment family to the **same**
``run_config`` entry point the flag CLI calls, so a scenario's stdout is
byte-identical to the equivalent flag invocation (CI diffs the baseline
boutique scenario against ``tests/goldens/fig910-smoke.txt``).

Process-wide toggles from the ``observability`` section (trace, profile,
sanitize) are saved and restored around the run, so embedding
``run_scenario`` in a longer program (or a test suite) cannot leak state
into later experiments. Scenario metadata — name and derived seed — goes
to *stderr* and to the live dashboard (when one is attached), never to
stdout.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable, Optional

from .. import obs
from ..mem import default_sanitize, set_default_sanitize
from .parser import parse_scenario_text
from .resolve import ResolvedScenario, apply_overrides, resolve
from .schema import ScenarioError, validation_errors

#: Where bare scenario names resolve: ``spright-repro run clone-sweep``
#: looks for ``scenarios/clone-sweep.{json,yaml,yml}`` under the cwd.
SCENARIO_DIR = "scenarios"
_EXTENSIONS = (".json", ".yaml", ".yml")


def _entry_points() -> dict[str, Callable[[dict], str]]:
    """Experiment family -> run_config entry point (imported lazily so
    ``import repro.scenario`` stays cheap for schema-only consumers)."""
    from ..experiments import (
        ablations,
        audits,
        boutique_exp,
        cloning_exp,
        cluster_exp,
        faults_exp,
        fig2,
        fig5,
        motion_exp,
        parking_exp,
        recovery_exp,
        trace_exp,
        traffic_exp,
        xdp_exp,
    )

    return {
        "tables": audits.run_config,
        "fig2": fig2.run_config,
        "fig5": fig5.run_config,
        "boutique": boutique_exp.run_config,
        "motion": motion_exp.run_config,
        "parking": parking_exp.run_config,
        "xdp": xdp_exp.run_config,
        "ablations": ablations.run_config,
        "faults": faults_exp.run_config,
        "recovery": recovery_exp.run_config,
        "trace": trace_exp.run_config,
        "traffic": traffic_exp.run_config,
        "cluster": cluster_exp.run_config,
        "cloning": cloning_exp.run_config,
    }


def find_scenario(spec: str) -> Path:
    """A path as given, or a named scenario under ``scenarios/``."""
    path = Path(spec)
    if path.is_file():
        return path
    if not path.suffix:
        for extension in _EXTENSIONS:
            candidate = Path(SCENARIO_DIR) / f"{spec}{extension}"
            if candidate.is_file():
                return candidate
    raise ScenarioError(
        f"no scenario file {spec!r} (looked for the path itself and "
        f"{SCENARIO_DIR}/{spec}{{{','.join(_EXTENSIONS)}}})"
    )


def load_document(spec: str) -> dict:
    path = find_scenario(spec)
    return parse_scenario_text(path.read_text(), source=str(path))


def load_scenario(spec: str, overrides=()) -> ResolvedScenario:
    """Parse + override + validate + resolve, without running anything."""
    doc = load_document(spec)
    if overrides:
        doc = apply_overrides(doc, overrides)
    return resolve(doc)


def check_scenario(spec: str, overrides=()) -> list:
    """Validation errors for one file (parse errors surface as one entry)."""
    try:
        doc = load_document(spec)
        if overrides:
            doc = apply_overrides(doc, overrides)
    except ScenarioError as exc:
        return [("/", str(exc))]
    errors = validation_errors(doc)
    if errors:
        return errors
    try:
        resolve(doc)
    except ScenarioError as exc:
        path = getattr(exc, "path", "/")
        return [(path, getattr(exc, "message", str(exc)))]
    return []


def execute(resolved: ResolvedScenario) -> str:
    """Run a resolved scenario and return its report (what stdout gets).

    The observability section's process-wide toggles are scoped to this
    call; the active live dashboard (if any) learns the scenario name.
    """
    entry = _entry_points().get(resolved.experiment)
    if entry is None:  # pragma: no cover - schema enum prevents this
        raise ScenarioError(f"no entry point for {resolved.experiment!r}")
    observability = resolved.observability
    saved_sanitize = default_sanitize()
    saved_observe = obs.default_observe()
    sink = obs.default_live_sink()
    if sink is not None:
        sink.set_scenario(resolved.name)
    try:
        if "sanitize" in observability:
            set_default_sanitize(observability["sanitize"])
        if observability.get("trace") or observability.get("profile"):
            obs.set_default_observe(
                trace=bool(observability.get("trace")),
                profile=bool(observability.get("profile")),
            )
        if observability.get("serve") and sink is None:
            from ..cli import dashboard_session

            with dashboard_session() as (serve_sink, _server):
                serve_sink.set_scenario(resolved.name)
                report = entry(resolved.config)
                serve_sink.finalize()
        else:
            report = entry(resolved.config)
    finally:
        set_default_sanitize(saved_sanitize)
        obs.set_default_observe(*saved_observe)
    out = observability.get("out")
    if out:
        write_report(resolved, report, Path(out))
    return report


def run_scenario(spec: str, overrides=()) -> tuple[ResolvedScenario, str]:
    """The ``spright-repro run`` body: load, resolve, execute."""
    resolved = load_scenario(spec, overrides)
    print(
        f"scenario {resolved.name}: experiment={resolved.experiment} "
        f"seed={resolved.seed}",
        file=sys.stderr,
    )
    return resolved, execute(resolved)


def write_report(
    resolved: ResolvedScenario, report: str, directory: Path
) -> list[Path]:
    """Persist the report as ``<name>.txt`` + ``<name>.json`` under ``directory``."""
    from ..stats import write_json

    directory.mkdir(parents=True, exist_ok=True)
    text_path = directory / f"{resolved.name}.txt"
    text_path.write_text(report + "\n")
    json_path = directory / f"{resolved.name}.json"
    write_json(
        json_path,
        {
            "scenario": resolved.name,
            "experiment": resolved.experiment,
            "seed": resolved.seed,
            "config": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in resolved.config.items()
            },
            "report": report,
        },
    )
    return [text_path, json_path]


def iter_library(directory: Optional[str] = None) -> list[Path]:
    """Every scenario file in the checked-in library, sorted by name."""
    root = Path(directory or SCENARIO_DIR)
    if not root.is_dir():
        return []
    return sorted(
        path for path in root.iterdir() if path.suffix.lower() in _EXTENSIONS
    )
