"""Scenario file parsing: strict JSON plus a minimal YAML subset.

Zero new dependencies. ``.json`` files go through the stdlib ``json``
module unchanged; ``.yaml``/``.yml`` files go through a deliberately
small line-oriented parser covering the subset the scenario grammar
needs:

* mappings (``key: value``) nested by space indentation;
* block lists (``- item``), including list items that open a mapping
  (``- kind: pod_crash`` with continuation keys indented past the dash);
* flow collections (``[a, b]``, ``{key: value}``) with JSON-ish nesting;
* scalars: ``null``/``~``, ``true``/``false``, integers, floats
  (including scientific notation), single-/double-quoted strings, and
  bare strings;
* full-line and trailing ``#`` comments (quote-aware).

Anchors, aliases, multi-document streams, multi-line strings, and tabs
are rejected with a :class:`ScenarioParseError` naming the line. The
subset is regression-tested in ``tests/test_scenario.py``; scenario
authors who need more structure can always write JSON.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from .schema import ScenarioError


class ScenarioParseError(ScenarioError):
    """A scenario file could not be parsed; carries file/line context."""

    def __init__(self, message: str, line: Optional[int] = None, source: str = ""):
        self.line = line
        self.source = source
        where = source or "scenario"
        if line is not None:
            where += f":{line}"
        super().__init__(f"{where}: {message}")


_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_KEY_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


def parse_scalar(text: str):
    """One YAML-subset scalar (already stripped, comments removed)."""
    if text in ("null", "~", ""):
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text) and text not in ("+", "-"):
        return float(text)
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        if text[0] == '"':
            try:
                return json.loads(text)
            except json.JSONDecodeError:
                raise ScenarioParseError(f"bad double-quoted string {text}")
        return text[1:-1].replace("''", "'")
    return text


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, respecting quoted strings."""
    quote = None
    for index, char in enumerate(line):
        if quote:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "#" and (index == 0 or line[index - 1] in (" ", "\t")):
            return line[:index].rstrip()
    return line.rstrip()


def _parse_flow(text: str, lineno: int, source: str):
    """A flow collection or scalar: ``[..]``, ``{..}``, or one scalar."""
    text = text.strip()
    if not text.startswith(("[", "{")):
        return parse_scalar(text)
    value, rest = _parse_flow_value(text, lineno, source)
    if rest.strip():
        raise ScenarioParseError(
            f"trailing characters after flow collection: {rest.strip()!r}",
            lineno,
            source,
        )
    return value


def _parse_flow_value(text: str, lineno: int, source: str):
    text = text.lstrip()
    if not text:
        raise ScenarioParseError("empty flow value", lineno, source)
    if text[0] == "[":
        items, rest = [], text[1:].lstrip()
        while True:
            if not rest:
                raise ScenarioParseError("unterminated '['", lineno, source)
            if rest[0] == "]":
                return items, rest[1:]
            value, rest = _parse_flow_value(rest, lineno, source)
            items.append(value)
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()
            elif not rest.startswith("]"):
                raise ScenarioParseError(
                    "expected ',' or ']' in flow list", lineno, source
                )
    if text[0] == "{":
        mapping, rest = {}, text[1:].lstrip()
        while True:
            if not rest:
                raise ScenarioParseError("unterminated '{'", lineno, source)
            if rest[0] == "}":
                return mapping, rest[1:]
            colon = _find_flow_colon(rest, lineno, source)
            key = parse_scalar(rest[:colon].strip())
            value, rest = _parse_flow_value(rest[colon + 1 :], lineno, source)
            mapping[key] = value
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()
            elif not rest.startswith("}"):
                raise ScenarioParseError(
                    "expected ',' or '}' in flow mapping", lineno, source
                )
    if text[0] in ("'", '"'):
        quote = text[0]
        index = 1
        while index < len(text):
            if text[index] == quote:
                return parse_scalar(text[: index + 1]), text[index + 1 :]
            index += 1
        raise ScenarioParseError("unterminated quoted string", lineno, source)
    # bare scalar: runs to the next structural character
    index = 0
    while index < len(text) and text[index] not in ",]}":
        index += 1
    return parse_scalar(text[:index].strip()), text[index:]


def _find_flow_colon(text: str, lineno: int, source: str) -> int:
    quote = None
    for index, char in enumerate(text):
        if quote:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == ":":
            return index
        elif char in ",]}":
            break
    raise ScenarioParseError("expected 'key: value' in flow mapping", lineno, source)


class _MiniYaml:
    """Line-oriented recursive-descent parser for the YAML subset."""

    def __init__(self, text: str, source: str):
        self.source = source
        self.lines: list[tuple[int, str, int]] = []  # (indent, content, lineno)
        for lineno, raw in enumerate(text.splitlines(), start=1):
            if "\t" in raw[: len(raw) - len(raw.lstrip())]:
                raise ScenarioParseError(
                    "tabs are not allowed in indentation", lineno, source
                )
            stripped = _strip_comment(raw)
            if not stripped.strip():
                continue
            if stripped.strip() in ("---", "..."):
                raise ScenarioParseError(
                    "multi-document YAML is not supported", lineno, source
                )
            indent = len(stripped) - len(stripped.lstrip(" "))
            self.lines.append((indent, stripped.strip(), lineno))
        self.index = 0

    def parse(self):
        if not self.lines:
            raise ScenarioParseError("empty scenario file", None, self.source)
        value = self._parse_block(self.lines[0][0])
        if self.index < len(self.lines):
            indent, _, lineno = self.lines[self.index]
            raise ScenarioParseError(
                f"unexpected dedent/indent (column {indent})", lineno, self.source
            )
        return value

    # -- block parsing --------------------------------------------------------
    def _peek(self):
        return self.lines[self.index] if self.index < len(self.lines) else None

    def _parse_block(self, indent: int):
        entry = self._peek()
        assert entry is not None
        if entry[1] == "-" or entry[1].startswith("- "):
            return self._parse_list(indent)
        return self._parse_mapping(indent)

    def _parse_list(self, indent: int) -> list:
        items = []
        while True:
            entry = self._peek()
            if entry is None or entry[0] != indent:
                if entry is not None and entry[0] > indent:
                    raise ScenarioParseError(
                        "unexpected indentation inside list", entry[2], self.source
                    )
                return items
            _, content, lineno = entry
            if not (content == "-" or content.startswith("- ")):
                raise ScenarioParseError(
                    "expected a '-' list item", lineno, self.source
                )
            rest = content[1:].strip()
            self.index += 1
            if not rest:
                nxt = self._peek()
                if nxt is not None and nxt[0] > indent:
                    items.append(self._parse_block(nxt[0]))
                else:
                    items.append(None)
            elif _is_mapping_line(rest):
                # "- key: value": the item is a mapping whose first line is
                # the remainder; continuation keys sit indented past the dash.
                self.lines.insert(self.index, (indent + 2, rest, lineno))
                items.append(self._parse_mapping(indent + 2))
            else:
                items.append(_parse_flow(rest, lineno, self.source))

    def _parse_mapping(self, indent: int) -> dict:
        mapping: dict = {}
        while True:
            entry = self._peek()
            if entry is None or entry[0] < indent:
                return mapping
            if entry[0] > indent:
                raise ScenarioParseError(
                    "unexpected indentation", entry[2], self.source
                )
            _, content, lineno = entry
            if content == "-" or content.startswith("- "):
                return mapping
            key, rest = _split_mapping_line(content, lineno, self.source)
            if key in mapping:
                raise ScenarioParseError(
                    f"duplicate key {key!r}", lineno, self.source
                )
            self.index += 1
            if rest:
                mapping[key] = _parse_flow(rest, lineno, self.source)
            else:
                nxt = self._peek()
                if nxt is not None and nxt[0] > indent:
                    mapping[key] = self._parse_block(nxt[0])
                else:
                    mapping[key] = None


def _is_mapping_line(text: str) -> bool:
    if text.startswith(("[", "{", "'", '"')):
        return False
    colon = text.find(":")
    if colon <= 0:
        return False
    after = text[colon + 1 :]
    return after == "" or after.startswith(" ")


def _split_mapping_line(content: str, lineno: int, source: str):
    if not _is_mapping_line(content):
        raise ScenarioParseError(
            f"expected 'key: value', got {content!r}", lineno, source
        )
    colon = content.find(":")
    key = content[:colon].strip()
    if not _KEY_RE.match(key):
        raise ScenarioParseError(f"invalid key {key!r}", lineno, source)
    return key, content[colon + 1 :].strip()


def parse_yaml(text: str, source: str = "scenario") -> dict:
    """Parse the YAML subset; the top level must be a mapping."""
    value = _MiniYaml(text, source).parse()
    if not isinstance(value, dict):
        raise ScenarioParseError(
            "top-level scenario value must be a mapping", None, source
        )
    return value


def parse_json(text: str, source: str = "scenario") -> dict:
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioParseError(exc.msg, exc.lineno, source) from exc
    if not isinstance(value, dict):
        raise ScenarioParseError(
            "top-level scenario value must be an object", None, source
        )
    return value


def parse_scenario_text(text: str, source: str = "scenario") -> dict:
    """Dispatch on extension; unknown extensions sniff the first character."""
    lowered = source.lower()
    if lowered.endswith(".json"):
        return parse_json(text, source)
    if lowered.endswith((".yaml", ".yml")):
        return parse_yaml(text, source)
    if text.lstrip().startswith("{"):
        return parse_json(text, source)
    return parse_yaml(text, source)
