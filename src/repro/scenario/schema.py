"""The scenario document schema + a hand-rolled JSON-schema-style validator.

The validator is deliberately tiny (the same spirit as the checked-in
``tests/schemas/`` validators): it supports exactly the subset of JSON
Schema the scenario grammar needs — ``type``, ``enum``, ``required``,
``properties``, ``additionalProperties: false``, ``items``, numeric
bounds, string bounds, and ``oneOf`` — and reports every violation with a
JSON-pointer-style path (``/workload/scale``) so a typo in a 40-line
scenario file points at the offending key, not at the file.

Everything here is pure data-in/data-out: no file IO, no experiment
imports. The enumerations are spelled out as literals (planes, policies,
patterns, fault kinds …) and regression-tested against the live
registries in ``tests/test_scenario_validation.py`` so they cannot drift
silently.
"""

from __future__ import annotations

from typing import Optional


class ScenarioError(ValueError):
    """Base class for every scenario-subsystem error."""


class ScenarioValidationError(ScenarioError):
    """A scenario document violated the schema.

    ``path`` is a JSON-pointer-style location (``/faults/plan``); when the
    validator found several violations the first is raised and the full
    list rides along in ``errors`` as ``(path, message)`` pairs.
    """

    def __init__(self, path: str, message: str, errors: Optional[list] = None):
        self.path = path or "/"
        self.message = message
        self.errors = errors if errors is not None else [(self.path, message)]
        super().__init__(f"{self.path}: {message}")


class ScenarioOverrideError(ScenarioError):
    """A ``--set`` override was malformed or conflicts with another."""

    def __init__(self, key: str, message: str):
        self.key = key
        self.message = message
        super().__init__(f"--set {key}: {message}")


#: Literal enumerations. tests/test_scenario_validation.py asserts these
#: agree with experiments.common.PLANES, traffic policies, etc.
SCHEMA_ID = "spright.scenario/1"
PLANE_NAMES = ("knative", "grpc", "s-spright", "d-spright", "lambda-nic")
EXPERIMENT_NAMES = (
    "tables",
    "fig2",
    "fig5",
    "boutique",
    "motion",
    "parking",
    "xdp",
    "ablations",
    "faults",
    "recovery",
    "trace",
    "traffic",
    "cluster",
    "cloning",
)
WORKLOAD_KINDS = ("boutique", "motion", "parking", "synthetic-fleet")
KEEPALIVE_POLICIES = ("fixed", "kpa", "histogram", "pinned")
ARRIVAL_PATTERNS = ("flat", "diurnal", "bursty")
PLACEMENT_POLICIES = ("all", "bin_pack", "spread", "chain_locality")
FAULT_KINDS = (
    "packet_drop",
    "packet_corrupt",
    "ring_overflow",
    "ring_stall",
    "pod_crash",
    "pod_hang",
    "pod_slow",
    "map_evict",
)

_POSITIVE_NUMBER = {"type": "number", "exclusiveMinimum": 0}
_OPTIONAL_DELAY = {"oneOf": [_POSITIVE_NUMBER, {"type": "null"}]}

FAULT_SPEC_SCHEMA = {
    "type": "object",
    "required": ["kind"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string", "enum": FAULT_KINDS},
        "at": {"type": "number", "minimum": 0},
        "duration": {"oneOf": [{"type": "number", "minimum": 0}, {"type": "null"}]},
        "probability": {"type": "number", "minimum": 0, "maximum": 1},
        "target": {"type": "string"},
        "magnitude": {"type": "number", "minimum": 0},
    },
}

INLINE_PLAN_SCHEMA = {
    "type": "object",
    "required": ["faults"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "faults": {"type": "array", "items": FAULT_SPEC_SCHEMA},
    },
}

#: The scenario grammar. Section applicability per experiment lives in
#: resolve.EXPERIMENT_SPECS; this schema is the shape contract.
SCENARIO_SCHEMA = {
    "type": "object",
    "required": ["name", "experiment"],
    "additionalProperties": False,
    "properties": {
        "schema": {"type": "string", "enum": (SCHEMA_ID,)},
        "name": {"type": "string", "minLength": 1},
        "description": {"type": "string"},
        "experiment": {"type": "string", "enum": EXPERIMENT_NAMES},
        # 2022 is the repo-wide legacy seed (byte-identical to the flag
        # CLI); "auto" derives a deterministic seed from the scenario name.
        "seed": {"oneOf": [{"type": "integer", "minimum": 0}, {"enum": ("auto",)}]},
        "workload": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "kind": {"type": "string", "enum": WORKLOAD_KINDS},
                "scale": {"type": "number", "exclusiveMinimum": 0, "maximum": 1.0},
                "duration": _POSITIVE_NUMBER,
                "functions": {"type": "integer", "minimum": 1},
                "max_concurrency": {"type": "integer", "minimum": 1},
                "processes": {"type": "integer", "minimum": 1},
            },
        },
        "planes": {
            "type": "array",
            "minItems": 1,
            "uniqueItems": True,
            "items": {"type": "string", "enum": PLANE_NAMES},
        },
        "cluster": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "nodes": {"type": "integer", "minimum": 1},
                "placement": {"type": "string", "enum": PLACEMENT_POLICIES},
            },
        },
        "faults": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                # a named plan ("loss-crash" …), "none", a JSON file path,
                # or an inline plan object
                "plan": {"oneOf": [{"type": "string"}, INLINE_PLAN_SCHEMA]},
            },
        },
        "resilience": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "retries": {"type": "integer", "minimum": 0},
                "timeout": _OPTIONAL_DELAY,
                "hedge_delay": _OPTIONAL_DELAY,
                # default "optimal": the PR 9 measured per-plane optimum
                # (s-spright/d-spright d=2, knative/grpc d=1)
                "clone_factor": {
                    "oneOf": [{"type": "integer", "minimum": 1}, {"enum": ("optimal",)}]
                },
            },
        },
        "keepalive": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "policies": {
                    "type": "array",
                    "minItems": 1,
                    "uniqueItems": True,
                    "items": {"type": "string", "enum": KEEPALIVE_POLICIES},
                },
                "patterns": {
                    "type": "array",
                    "minItems": 1,
                    "uniqueItems": True,
                    "items": {"type": "string", "enum": ARRIVAL_PATTERNS},
                },
            },
        },
        "admission": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "overload": {"type": "boolean"},
            },
        },
        "slo": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "threshold_s": _POSITIVE_NUMBER,
            },
        },
        "observability": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "trace": {"type": "boolean"},
                "profile": {"type": "boolean"},
                "sanitize": {"type": "boolean"},
                "serve": {"type": "boolean"},
                "out": {"type": "string", "minLength": 1},
            },
        },
    },
}


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _type_name(value) -> str:
    for name, check in _TYPE_CHECKS.items():
        if check(value):
            return name
    return type(value).__name__


def validate(value, schema: dict, path: str = "") -> list:
    """All schema violations as ``(json_pointer, message)`` pairs."""
    errors: list = []

    if "oneOf" in schema:
        branch_errors = []
        for branch in schema["oneOf"]:
            errs = validate(value, branch, path)
            if not errs:
                return []
            branch_errors.append((branch, errs))
        # When exactly one branch accepts this value's basic shape, its
        # detailed errors beat the generic "matched none of the forms"
        # (an inline fault plan with a typo'd key should point at the key).
        matching = [
            errs
            for branch, errs in branch_errors
            if branch.get("type") in _TYPE_CHECKS
            and _TYPE_CHECKS[branch["type"]](value)
        ]
        if len(matching) == 1:
            return matching[0]
        shapes = " | ".join(
            branch.get("type") or f"enum{tuple(branch['enum'])}"
            for branch in schema["oneOf"]
        )
        errors.append(
            (path or "/", f"matched none of the allowed forms ({shapes})")
        )
        return errors

    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        # integers are acceptable numbers
        if not (expected == "number" and _TYPE_CHECKS["integer"](value)):
            errors.append(
                (path or "/", f"expected {expected}, got {_type_name(value)}")
            )
            return errors

    if "enum" in schema and value not in schema["enum"]:
        choices = ", ".join(repr(choice) for choice in schema["enum"])
        errors.append((path or "/", f"{value!r} is not one of ({choices})"))
        return errors

    if isinstance(value, bool):
        return errors

    if isinstance(value, (int, float)):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append((path or "/", f"{value!r} is below minimum {schema['minimum']}"))
        if "maximum" in schema and value > schema["maximum"]:
            errors.append((path or "/", f"{value!r} is above maximum {schema['maximum']}"))
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            errors.append(
                (path or "/", f"{value!r} must be > {schema['exclusiveMinimum']}")
            )

    if isinstance(value, str) and "minLength" in schema:
        if len(value) < schema["minLength"]:
            errors.append((path or "/", "must not be empty"))

    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in value:
                errors.append((path or "/", f"missing required key {key!r}"))
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in properties:
                    known = ", ".join(sorted(properties))
                    errors.append(
                        (f"{path}/{key}", f"unknown key (expected one of: {known})")
                    )
        for key, subschema in properties.items():
            if key in value:
                errors.extend(validate(value[key], subschema, f"{path}/{key}"))

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                (path or "/", f"needs at least {schema['minItems']} item(s)")
            )
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(
                (path or "/", f"allows at most {schema['maxItems']} item(s)")
            )
        if schema.get("uniqueItems"):
            seen = set()
            for index, item in enumerate(value):
                marker = repr(item)
                if marker in seen:
                    errors.append((f"{path}/{index}", f"duplicate item {item!r}"))
                seen.add(marker)
        if "items" in schema:
            for index, item in enumerate(value):
                errors.extend(validate(item, schema["items"], f"{path}/{index}"))

    return errors


def validation_errors(doc) -> list:
    """Schema violations for a parsed scenario document (may be empty)."""
    if not isinstance(doc, dict):
        return [("/", f"scenario must be a mapping, got {_type_name(doc)}")]
    return validate(doc, SCENARIO_SCHEMA)


def validate_scenario(doc) -> dict:
    """Validate ``doc`` against the scenario schema; return it unchanged.

    Raises :class:`ScenarioValidationError` for the first violation, with
    the full list attached as ``.errors``.
    """
    errors = validation_errors(doc)
    if errors:
        path, message = errors[0]
        raise ScenarioValidationError(path, message, errors=errors)
    return doc
