"""Declarative scenario engine: named files instead of argparse piles.

A *scenario* is a small JSON or YAML-subset document that composes the
repo's building blocks — workload + arrival pattern, dataplanes, cluster
topology and placement, fault plan, resilience/cloning policy, keep-alive
policy, admission/SLO targets, observability — into a named, validated,
reproducible experiment::

    spright-repro run scenarios/boutique-baseline.json
    spright-repro run clone-sweep --set workload.duration=5
    spright-repro run --validate-only scenarios/*

Design contract (see DESIGN.md "Scenario engine"):

* **zero dependencies** — strict stdlib JSON plus a minimal hand-rolled
  YAML subset (:mod:`repro.scenario.parser`);
* **validated with precise paths** — a hand-rolled JSON-schema-style
  validator (:mod:`repro.scenario.schema`) rejects unknown keys, wrong
  types, and bad enum members with JSON-pointer-style error paths;
* **byte-identical to flags** — scenarios resolve
  (:mod:`repro.scenario.resolve`) into the same ``run_config`` entry
  points the flag CLI calls, so the checked-in goldens double as scenario
  regression fixtures;
* **deterministic seeds** — ``seed: auto`` derives the seed from the
  scenario *name*; the default stays the repo-wide legacy seed 2022;
* **resolution order** — file < ``--set`` overrides, and conflicting
  overrides are typed errors, never silent last-writer-wins.
"""

from .parser import (
    ScenarioParseError,
    parse_json,
    parse_scalar,
    parse_scenario_text,
    parse_yaml,
)
from .resolve import (
    EXPERIMENT_SPECS,
    LEGACY_SEED,
    ResolvedScenario,
    SEEDABLE,
    apply_overrides,
    derive_seed,
    resolve,
)
from .run import (
    SCENARIO_DIR,
    check_scenario,
    execute,
    find_scenario,
    iter_library,
    load_document,
    load_scenario,
    run_scenario,
    write_report,
)
from .schema import (
    ARRIVAL_PATTERNS,
    EXPERIMENT_NAMES,
    FAULT_KINDS,
    KEEPALIVE_POLICIES,
    PLACEMENT_POLICIES,
    PLANE_NAMES,
    SCENARIO_SCHEMA,
    SCHEMA_ID,
    ScenarioError,
    ScenarioOverrideError,
    ScenarioValidationError,
    WORKLOAD_KINDS,
    validate_scenario,
    validation_errors,
)

__all__ = [
    "ARRIVAL_PATTERNS",
    "EXPERIMENT_NAMES",
    "EXPERIMENT_SPECS",
    "FAULT_KINDS",
    "KEEPALIVE_POLICIES",
    "LEGACY_SEED",
    "PLACEMENT_POLICIES",
    "PLANE_NAMES",
    "ResolvedScenario",
    "SCENARIO_DIR",
    "SCENARIO_SCHEMA",
    "SCHEMA_ID",
    "SEEDABLE",
    "ScenarioError",
    "ScenarioOverrideError",
    "ScenarioParseError",
    "ScenarioValidationError",
    "WORKLOAD_KINDS",
    "apply_overrides",
    "check_scenario",
    "derive_seed",
    "execute",
    "find_scenario",
    "iter_library",
    "load_document",
    "load_scenario",
    "parse_json",
    "parse_scalar",
    "parse_scenario_text",
    "parse_yaml",
    "resolve",
    "run_scenario",
    "validate_scenario",
    "validation_errors",
    "write_report",
]
