"""Resolution: validated scenario document -> experiment entry-point config.

A scenario names one experiment family (the same set the flag CLI
exposes) and composes sections — workload, planes, cluster topology,
fault plan, resilience/cloning policy, keep-alive policy, admission/SLO
targets, observability. This module:

* checks cross-field consistency the shape schema cannot (a ``keepalive``
  section on a ``boutique`` scenario, two planes on a ``trace`` scenario,
  a custom seed on a fixed-seed experiment), with the same
  JSON-pointer-style error paths as the validator;
* applies ``--set key=value`` overrides (resolution order: file <
  overrides; conflicting or type-confused overrides are typed errors);
* derives the deterministic per-scenario seed (``seed: auto`` hashes the
  scenario *name*, so renaming a scenario is the only way to change its
  draw sequence);
* emits the exact config dict the experiment's ``run_config`` entry point
  consumes — the same entry point the flag CLI calls, which is what makes
  a scenario's output byte-identical to the equivalent flag invocation.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Optional

from .parser import ScenarioParseError, _parse_flow, parse_scalar
from .schema import (
    ScenarioOverrideError,
    ScenarioValidationError,
    validate_scenario,
)

#: The repo-wide legacy seed: what every experiment defaults to, and what
#: the flag CLI cannot change — scenarios that must stay byte-identical to
#: a flag invocation pin (or default to) this.
LEGACY_SEED = 2022

#: Experiments whose runners accept a seed; the rest bake LEGACY_SEED in.
SEEDABLE = (
    "boutique",
    "motion",
    "parking",
    "faults",
    "recovery",
    "trace",
    "traffic",
    "cluster",
    "cloning",
)


def derive_seed(name: str) -> int:
    """Deterministic 31-bit seed from the scenario name (sha256-based)."""
    digest = hashlib.sha256(f"spright.scenario:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass
class ResolvedScenario:
    """A runnable scenario: experiment + canonical config + run options."""

    name: str
    experiment: str
    config: dict
    seed: int
    observability: dict = field(default_factory=dict)
    description: str = ""
    doc: dict = field(default_factory=dict)


# -- section plumbing ----------------------------------------------------------
def _fail(path: str, message: str):
    raise ScenarioValidationError(path, message)


def _workload(doc: dict) -> dict:
    return doc.get("workload") or {}


def _expect_kind(doc: dict, *allowed: str) -> Optional[str]:
    kind = _workload(doc).get("kind")
    if kind is not None and kind not in allowed:
        _fail(
            "/workload/kind",
            f"{kind!r} does not run under experiment "
            f"{doc['experiment']!r} (expected {' or '.join(map(repr, allowed))})",
        )
    return kind


def _take(cfg: dict, section: dict, *keys: str, rename: Optional[dict] = None):
    rename = rename or {}
    for key in keys:
        if key in section:
            cfg[rename.get(key, key)] = section[key]


def _resolve_tables(doc: dict) -> dict:
    return {}


def _resolve_fig2(doc: dict) -> dict:
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration")
    return cfg


def _resolve_fig5(doc: dict) -> dict:
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration", "max_concurrency")
    return cfg


def _resolve_boutique(doc: dict) -> dict:
    _expect_kind(doc, "boutique")
    cfg: dict = {}
    _take(cfg, _workload(doc), "scale", "duration")
    return cfg


def _resolve_motion(doc: dict) -> dict:
    _expect_kind(doc, "motion")
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration")
    return cfg


def _resolve_parking(doc: dict) -> dict:
    _expect_kind(doc, "parking")
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration")
    return cfg


def _resolve_xdp(doc: dict) -> dict:
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration")
    return cfg


def _resolve_ablations(doc: dict) -> dict:
    return {}


def _resolve_faults(doc: dict) -> dict:
    _expect_kind(doc, "boutique")
    cfg: dict = {}
    _take(cfg, _workload(doc), "scale", "duration")
    if "planes" in doc:
        cfg["planes"] = tuple(doc["planes"])
    faults = doc.get("faults") or {}
    if "plan" in faults:
        cfg["fault_plan"] = faults["plan"]
    resilience = doc.get("resilience") or {}
    _take(
        cfg,
        resilience,
        "retries",
        "hedge_delay",
        "clone_factor",
        "timeout",
        rename={"timeout": "request_timeout"},
    )
    return cfg


def _resolve_recovery(doc: dict) -> dict:
    _expect_kind(doc, "boutique")
    cfg: dict = {}
    _take(cfg, _workload(doc), "scale", "duration")
    if "planes" in doc:
        cfg["planes"] = tuple(doc["planes"])
    admission = doc.get("admission") or {}
    if "overload" in admission:
        cfg["include_overload"] = admission["overload"]
    return cfg


def _resolve_trace(doc: dict) -> dict:
    kind = _expect_kind(doc, "boutique", "motion")
    cfg: dict = {}
    if kind is not None:
        cfg["workload"] = kind
    _take(cfg, _workload(doc), "scale", "duration")
    planes = doc.get("planes")
    if planes is not None:
        if len(planes) != 1:
            _fail("/planes", "experiment 'trace' runs exactly one plane")
        if planes[0] == "lambda-nic":
            _fail("/planes/0", "experiment 'trace' does not support 'lambda-nic'")
        cfg["plane"] = planes[0]
    return cfg


def _resolve_traffic(doc: dict) -> dict:
    _expect_kind(doc, "synthetic-fleet")
    cfg: dict = {}
    _take(cfg, _workload(doc), "functions", "duration", "processes")
    if "planes" in doc:
        cfg["planes"] = tuple(doc["planes"])
    keepalive = doc.get("keepalive") or {}
    if "policies" in keepalive:
        cfg["policies"] = tuple(keepalive["policies"])
    if "patterns" in keepalive:
        cfg["patterns"] = tuple(keepalive["patterns"])
    slo = doc.get("slo") or {}
    if "threshold_s" in slo:
        cfg["slo_threshold"] = slo["threshold_s"]
    return cfg


def _resolve_cluster(doc: dict) -> dict:
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration")
    if "planes" in doc:
        cfg["planes"] = tuple(doc["planes"])
    cluster = doc.get("cluster") or {}
    _take(cfg, cluster, "nodes", "placement")
    return cfg


def _resolve_cloning(doc: dict) -> dict:
    cfg: dict = {}
    _take(cfg, _workload(doc), "duration")
    return cfg


#: Per-experiment contract: which optional sections it consumes, and the
#: resolver producing its run_config() dict. Sections outside the allowed
#: set are rejected with a path — a keepalive block on a boutique scenario
#: is a bug in the scenario, not dead weight to carry silently.
EXPERIMENT_SPECS = {
    "tables": ((), _resolve_tables),
    "fig2": (("workload",), _resolve_fig2),
    "fig5": (("workload",), _resolve_fig5),
    "boutique": (("workload",), _resolve_boutique),
    "motion": (("workload",), _resolve_motion),
    "parking": (("workload",), _resolve_parking),
    "xdp": (("workload",), _resolve_xdp),
    "ablations": ((), _resolve_ablations),
    "faults": (("workload", "planes", "faults", "resilience"), _resolve_faults),
    "recovery": (("workload", "planes", "admission"), _resolve_recovery),
    "trace": (("workload", "planes"), _resolve_trace),
    "traffic": (("workload", "planes", "keepalive", "slo"), _resolve_traffic),
    "cluster": (("workload", "planes", "cluster"), _resolve_cluster),
    "cloning": (("workload",), _resolve_cloning),
}

#: Sections every scenario may carry regardless of experiment.
_UNIVERSAL_SECTIONS = (
    "schema",
    "name",
    "description",
    "experiment",
    "seed",
    "observability",
)


def resolve(doc: dict) -> ResolvedScenario:
    """Validate + cross-check + flatten one scenario document."""
    validate_scenario(doc)
    experiment = doc["experiment"]
    allowed, resolver = EXPERIMENT_SPECS[experiment]
    for section in doc:
        if section not in _UNIVERSAL_SECTIONS and section not in allowed:
            _fail(
                f"/{section}",
                f"section not consumed by experiment {experiment!r} "
                f"(allowed: {', '.join(allowed) or 'none'})",
            )

    seed_spec = doc.get("seed", LEGACY_SEED)
    seed = derive_seed(doc["name"]) if seed_spec == "auto" else int(seed_spec)
    config = resolver(doc)
    if experiment in SEEDABLE:
        config["seed"] = seed
    elif seed != LEGACY_SEED:
        _fail(
            "/seed",
            f"experiment {experiment!r} runs at the fixed seed "
            f"{LEGACY_SEED}; drop the seed key or pin it to {LEGACY_SEED}",
        )

    return ResolvedScenario(
        name=doc["name"],
        experiment=experiment,
        config=config,
        seed=seed,
        observability=dict(doc.get("observability") or {}),
        description=doc.get("description", ""),
        doc=doc,
    )


# -- --set overrides -----------------------------------------------------------
def _parse_override_value(key: str, raw: str):
    raw = raw.strip()
    try:
        return _parse_flow(raw, None, f"--set {key}") if raw.startswith(("[", "{")) else parse_scalar(raw)
    except ScenarioParseError as exc:
        raise ScenarioOverrideError(key, f"unparseable value {raw!r}") from exc


def apply_overrides(doc: dict, assignments) -> dict:
    """Return a deep-copied document with ``--set key=value`` merged in.

    Resolution order is **file < overrides**. Typed failure modes:

    * no ``=`` or an empty key — malformed override;
    * the same dotted path set twice — conflicting overrides;
    * one override path nested under another (``faults`` *and*
      ``faults.plan``) — conflicting overrides;
    * a path segment that traverses a non-mapping value — type conflict,
      reported with the JSON-pointer of the scalar it hit.
    """
    doc = copy.deepcopy(doc)
    seen: dict[tuple, str] = {}
    for raw in assignments or ():
        key, eq, value_text = raw.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ScenarioOverrideError(raw, "override must look like section.key=value")
        parts = tuple(key.split("."))
        if any(not part for part in parts):
            raise ScenarioOverrideError(key, "override path has an empty segment")
        for other in seen:
            if parts == other:
                raise ScenarioOverrideError(
                    key, f"conflicting override: {key!r} is already set"
                )
            overlap = parts[: len(other)] == other or other[: len(parts)] == parts
            if overlap:
                raise ScenarioOverrideError(
                    key,
                    f"conflicting override: nested under or above "
                    f"{'.'.join(other)!r}",
                )
        seen[parts] = value_text
        value = _parse_override_value(key, value_text)
        target = doc
        for depth, part in enumerate(parts[:-1]):
            existing = target.get(part)
            if existing is None:
                existing = target[part] = {}
            if not isinstance(existing, dict):
                pointer = "/" + "/".join(parts[: depth + 1])
                raise ScenarioOverrideError(
                    key, f"cannot descend into non-mapping value at {pointer}"
                )
            target = existing
        target[parts[-1]] = value
    return doc
