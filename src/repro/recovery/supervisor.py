"""The pod supervisor: detect crashes/hangs, restart, reclaim, re-program.

This is the self-healing control loop the simulated node was missing: PR 2
made pods *crashable* but nothing ever brought one back, so a crash-storm
left deployments permanently degraded and their in-flight shared-memory
buffers leaked. The supervisor closes the detect -> restart -> reclaim ->
re-program loop:

* **detect** — a periodic sweep (plus the fault injector's synchronous
  crash notification) spots pods that refuse probes. Crashes
  (``healthy=False, responsive=False``) are acted on immediately; hangs
  (responsive=False but still nominally healthy) are given
  ``hang_grace`` seconds to recover before being treated as dead, and a
  :class:`~repro.runtime.health.HealthProber`'s down-set is honored when
  one is wired in;
* **restart** — the dead pod is terminated and replaced through
  :meth:`Deployment.restart_pod` after a capped-exponential per-function
  backoff (jittered from the ``recovery/backoff`` RNG stream), with the
  replacement's cold-start cost sampled from ``recovery/restart`` — a
  first-class restart latency, not a free respawn;
* **reclaim** — once the dead pod is gone, every shared-memory buffer still
  assigned to it is pulled back through the chain runtime's
  :class:`~repro.mem.ShmScavenger` hook (``recovery/orphans_reclaimed``);
* **re-program** — the replacement is gated behind readiness (deployment
  callbacks re-create its socket/ring, sockmap entry, and DFR route), and a
  post-ready verification pass re-registers anything a concurrent map
  eviction undid, extending the ``spright/sockmap_repairs`` path.

Every decision is deterministic per seed, and the supervisor only exists
when an experiment explicitly attaches one — runs without it are
byte-identical to builds without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import Deployment, WorkerNode
    from ..runtime.health import HealthProber
    from ..runtime.pod import Pod
    from ..simcore import RandomStreams

#: RNG stream names (module-level so tests and docs agree on the spelling)
BACKOFF_STREAM = "recovery/backoff"
RESTART_COST_STREAM = "recovery/restart"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for the pod supervisor's control loop."""

    check_interval: float = 0.25    # detection sweep period (seconds)
    hang_grace: float = 1.0         # unresponsive this long => treat as dead
    backoff_base: float = 0.1       # first restart backoff (seconds)
    backoff_cap: float = 5.0        # exponential growth ceiling
    backoff_jitter: float = 0.1     # +- fraction of the delay
    backoff_reset: float = 30.0     # quiet period that clears the backoff
    restart_cost_mean: float = 0.5  # replacement pod cold-start mean (seconds)
    restart_cost_cv: float = 0.25   # ... and its coefficient of variation
    max_restarts: Optional[int] = None  # per function; None = unlimited

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if self.hang_grace < 0:
            raise ValueError("hang_grace must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")

    def restart_backoff(self, rng: "RandomStreams", attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based), jittered.

        ``delay = min(base * 2**(attempt-1), cap)`` scaled by a uniform
        factor in ``[1 - jitter, 1 + jitter]`` from the ``recovery/backoff``
        stream — deterministic per seed, mirroring the resilience layer's
        retry backoff so the two are tested the same way.
        """
        delay = min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
        if self.backoff_jitter > 0 and delay > 0:
            delay *= rng.uniform(
                BACKOFF_STREAM, 1.0 - self.backoff_jitter, 1.0 + self.backoff_jitter
            )
        return delay

    def restart_cost(self, rng: "RandomStreams") -> float:
        """The replacement pod's modeled cold-start delay (lognormal)."""
        if self.restart_cost_mean <= 0:
            return 0.0
        return rng.lognormal_service(
            RESTART_COST_STREAM, self.restart_cost_mean, self.restart_cost_cv
        )


@dataclass
class _Watched:
    """Supervisor-side state for one deployment."""

    function: str
    deployment: "Deployment"
    # chain-runtime hooks: reclaim orphans of a dead instance (returns a
    # count) and verify a replacement's transport registration post-ready.
    reclaimers: list = field(default_factory=list)
    verifiers: list = field(default_factory=list)
    attempts: int = 0
    last_restart_at: Optional[float] = None
    restarts: int = 0


class PodSupervisor:
    """Per-node crash-recovery control loop over watched deployments."""

    def __init__(
        self,
        node: "WorkerNode",
        policy: Optional[SupervisorPolicy] = None,
        prober: Optional["HealthProber"] = None,
    ) -> None:
        self.node = node
        self.policy = policy or SupervisorPolicy()
        self.prober = prober
        self._watched: list[_Watched] = []
        self._handled: set[int] = set()          # instance ids being restarted
        self._unresponsive_since: dict[int, float] = {}
        self.mttr_samples: list[float] = []      # detect -> replacement-ready
        self.restored_at: list[float] = []       # sim times replacements came up
        self.restarts = 0
        self.gave_up = 0
        self._started = False

    # -- wiring ----------------------------------------------------------------
    def watch(
        self,
        function: str,
        deployment: "Deployment",
        reclaimer: Optional[Callable[["Pod"], int]] = None,
        verifier: Optional[Callable[["Pod"], None]] = None,
    ) -> None:
        """Supervise one deployment.

        ``reclaimer(dead_pod) -> int`` frees shared-memory orphans of the
        dead instance (the SPRIGHT chain wires its scavenger here);
        ``verifier(new_pod)`` re-checks transport registration once the
        replacement is ready.
        """
        state = _Watched(function=function, deployment=deployment)
        if reclaimer is not None:
            state.reclaimers.append(reclaimer)
        if verifier is not None:
            state.verifiers.append(verifier)
        self._watched.append(state)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.node.env.process(self._loop(), name="pod-supervisor")
        # Fast path: the injector tells us about crashes synchronously so
        # detection latency is bounded by the check interval, not by probe
        # thresholds (the sweep still catches hangs and probe-detected
        # deaths).
        self.node.faults.add_crash_listener(self._on_injected_crash)

    # -- detection ----------------------------------------------------------------
    def _on_injected_crash(self, pod: "Pod") -> None:
        state = self._state_for(pod)
        if state is not None and self._should_restart(pod):
            self._begin_restart(state, pod)

    def _state_for(self, pod: "Pod") -> Optional[_Watched]:
        for state in self._watched:
            if pod in state.deployment.pods:
                return state
        return None

    def _should_restart(self, pod: "Pod") -> bool:
        if pod.instance_id in self._handled:
            return False
        if pod.phase.value not in ("running",):
            return False
        return self._looks_dead(pod)

    def _looks_dead(self, pod: "Pod") -> bool:
        now = self.node.env.now
        if not pod.healthy and not pod.responsive:
            return True  # crashed (pod.fail())
        if self.prober is not None and self.prober.is_down(pod):
            return True  # probe threshold tripped
        if not pod.responsive:
            # Hung: unresponsive but nominally healthy. Grant hang_grace for
            # the fault to clear (short injected hangs recover on their own)
            # before declaring the pod dead.
            since = self._unresponsive_since.setdefault(pod.instance_id, now)
            return now - since >= self.policy.hang_grace
        self._unresponsive_since.pop(pod.instance_id, None)
        return False

    def _loop(self):
        while True:
            yield self.node.env.timeout(self.policy.check_interval)
            for state in self._watched:
                for pod in list(state.deployment.pods):
                    if self._should_restart(pod):
                        self._begin_restart(state, pod)

    # -- restart ------------------------------------------------------------------
    def _begin_restart(self, state: _Watched, pod: "Pod") -> None:
        self._handled.add(pod.instance_id)
        self._unresponsive_since.pop(pod.instance_id, None)
        self.node.counters.incr("recovery/crashes_detected")
        self.node.env.process(
            self._restart(state, pod), name=f"restart-{pod.cpu_tag}"
        )

    def _restart(self, state: _Watched, pod: "Pod"):
        policy = self.policy
        detected_at = self.node.env.now
        # Kill the dead pod; deployment callbacks deregister its sockmap
        # entry / ring and DFR route as it terminates.
        yield pod.terminate()
        # With the instance gone nothing can legitimately touch its buffers:
        # reclaim every orphan it still owned (generation-bumped so stale
        # descriptors fault cleanly).
        for reclaimer in state.reclaimers:
            reclaimer(pod)
        if policy.max_restarts is not None and state.restarts >= policy.max_restarts:
            self.gave_up += 1
            self.node.counters.incr("recovery/gave_up")
            return
        # Capped-exponential backoff per function, escalating across rapid
        # successive restarts and decaying after a quiet period.
        now = self.node.env.now
        if (
            state.last_restart_at is not None
            and now - state.last_restart_at > policy.backoff_reset
        ):
            state.attempts = 0
        state.attempts += 1
        state.last_restart_at = now
        delay = policy.restart_backoff(self.node.rng, state.attempts)
        if delay > 0:
            yield self.node.env.timeout(delay)
        # The replacement pays a modeled cold-start cost; readiness gating
        # comes from the pod lifecycle itself (STARTING until the delay
        # elapses), so traffic only routes to it once it is actually up.
        replacement = state.deployment.restart_pod(
            startup_delay=policy.restart_cost(self.node.rng)
        )
        state.restarts += 1
        self.restarts += 1
        self.node.counters.incr("recovery/restarts")
        yield replacement.ready
        for verifier in state.verifiers:
            verifier(replacement)
        self.mttr_samples.append(self.node.env.now - detected_at)
        self.restored_at.append(self.node.env.now)
        self.node.counters.incr("recovery/restored")
        self._handled.discard(pod.instance_id)

    # -- reporting ------------------------------------------------------------------
    def mttr_mean(self) -> float:
        if not self.mttr_samples:
            return 0.0
        return sum(self.mttr_samples) / len(self.mttr_samples)

    def mttr_max(self) -> float:
        return max(self.mttr_samples, default=0.0)
