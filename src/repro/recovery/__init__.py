"""Self-healing control plane: crash recovery, orphan reclamation, admission.

Three cooperating pieces (each inert unless explicitly attached, keeping
runs without them byte-identical):

* :class:`PodSupervisor` — detects crashed/hung pods, restarts them with
  capped-exponential backoff and a modeled cold-start cost, and drives
  shared-memory orphan reclamation + transport re-registration;
* :class:`AdmissionController` — gateway front door: bounded per-function
  queues, token-bucket rate limiting, and CoDel-style queue-delay shedding
  with priority-ordered graceful degradation;
* the :class:`~repro.mem.ShmScavenger` ledger (in ``repro.mem``) that the
  supervisor's reclaim step drains.
"""

from .admission import AdmissionController, AdmissionPolicy
from .supervisor import (
    BACKOFF_STREAM,
    PodSupervisor,
    RESTART_COST_STREAM,
    SupervisorPolicy,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BACKOFF_STREAM",
    "PodSupervisor",
    "RESTART_COST_STREAM",
    "SupervisorPolicy",
]
