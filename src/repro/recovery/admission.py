"""Gateway admission control: bounded queues, token bucket, CoDel-style shed.

The paper's claim that SPRIGHT sustains high load with bounded resources
(§5, Figs 9-11) presumes something says *no* at the front door; without it,
an open-loop overload drives queues (and retry amplification from PR 2's
resilience layer) to collapse goodput. This module is that front door,
shared by all four dataplane gateways and the cluster ingress:

* **bounded per-function admission queues** — at most ``queue_limit``
  admitted-but-unfinished requests per entry function; excess arrivals are
  shed immediately (a 503, not an unbounded queue);
* **token bucket** — a deterministic ``rate_limit``/``burst`` refill
  (computed from sim time, no background process) caps the sustained
  admission rate;
* **queue-delay shedding (CoDel-style)** — the controller tracks the
  *minimum* request sojourn time over ``delay_window`` intervals; when even
  the luckiest request exceeded ``target_delay``, standing queues have
  formed and the controller escalates its degradation level, shedding the
  lowest-priority request classes first (graceful degradation); sustained
  good intervals de-escalate one level at a time.

Shed requests fail with :class:`ShedError` (kind ``"shed"``, *not*
retryable) so PR 2's retry policies refuse to amplify the overload and its
breakers still count the failure. Everything is deterministic — the
controller draws no RNG and writes no counters until it actually sheds — so
runs without an attached policy are byte-identical to builds without this
module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..dataplane.base import Request, ShedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore import Environment
    from ..stats import Counter


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for gateway admission control. The default is fully inert."""

    queue_limit: Optional[int] = None      # per-function in-flight bound
    rate_limit: Optional[float] = None     # sustained admissions/second
    burst: float = 32.0                    # token bucket depth
    target_delay: Optional[float] = None   # CoDel-style sojourn target (s)
    delay_window: float = 0.5              # interval over which min sojourn is tracked
    max_degrade_level: int = 3             # priority tiers sheddable at worst

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ValueError("rate_limit must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.target_delay is not None and self.target_delay <= 0:
            raise ValueError("target_delay must be positive")
        if self.delay_window <= 0:
            raise ValueError("delay_window must be positive")
        if self.max_degrade_level < 0:
            raise ValueError("max_degrade_level must be >= 0")

    def enabled(self) -> bool:
        return (
            self.queue_limit is not None
            or self.rate_limit is not None
            or self.target_delay is not None
        )


class AdmissionController:
    """One gateway's admission state; consulted synchronously per request.

    ``try_admit`` returns None (admitted) or a :class:`ShedError`; the
    caller must pair every admit with ``on_done`` when the request finishes
    (success or failure) so queue occupancy and sojourn tracking stay
    truthful.
    """

    def __init__(
        self,
        env: "Environment",
        policy: AdmissionPolicy,
        counter: Optional["Counter"] = None,
        scope: str = "",
    ) -> None:
        self.env = env
        self.policy = policy
        self.counter = counter
        self.scope = scope
        self._in_flight: dict[str, int] = {}
        self._admitted_at: dict[int, float] = {}
        self._tokens = float(policy.burst)
        self._last_refill = env.now
        # CoDel state: min sojourn seen in the current window.
        self._window_start = env.now
        self._window_min: Optional[float] = None
        self.degrade_level = 0
        self.shed_count = 0
        self.shed_by_class: dict[str, int] = {}
        self.admitted = 0

    # -- admission decision -------------------------------------------------------
    def try_admit(self, request: Request) -> Optional[ShedError]:
        policy = self.policy
        cls = request.request_class
        entry = cls.sequence[0]
        if self.degrade_level > 0 and cls.priority < self.degrade_level:
            return self._shed(
                request,
                f"degradation level {self.degrade_level} sheds "
                f"priority-{cls.priority} class {cls.name!r}",
            )
        if policy.queue_limit is not None:
            if self._in_flight.get(entry, 0) >= policy.queue_limit:
                return self._shed(
                    request,
                    f"admission queue for {entry!r} full "
                    f"({policy.queue_limit} in flight)",
                )
        if policy.rate_limit is not None and not self._take_token():
            return self._shed(request, "admission rate limit exceeded")
        self._in_flight[entry] = self._in_flight.get(entry, 0) + 1
        self._admitted_at[id(request)] = self.env.now
        self.admitted += 1
        return None

    def on_done(self, request: Request) -> None:
        """Request finished (any outcome): free its slot, feed the sojourn."""
        admitted_at = self._admitted_at.pop(id(request), None)
        if admitted_at is None:
            return  # shed (or admitted by someone else): no slot held
        entry = request.request_class.sequence[0]
        count = self._in_flight.get(entry, 0)
        if count > 0:
            self._in_flight[entry] = count - 1
        self._observe_sojourn(self.env.now - admitted_at)

    # -- internals ------------------------------------------------------------------
    def _take_token(self) -> bool:
        policy = self.policy
        now = self.env.now
        if now > self._last_refill:
            self._tokens = min(
                float(policy.burst),
                self._tokens + (now - self._last_refill) * policy.rate_limit,
            )
            self._last_refill = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def _observe_sojourn(self, sojourn: float) -> None:
        """CoDel-style control law on completed requests' sojourn times."""
        if self.policy.target_delay is None:
            return
        now = self.env.now
        if self._window_min is None or sojourn < self._window_min:
            self._window_min = sojourn
        if now - self._window_start < self.policy.delay_window:
            return
        # Window closed: even the *minimum* sojourn above target means a
        # standing queue, not a transient burst -> degrade one level.
        if self._window_min is not None:
            if self._window_min > self.policy.target_delay:
                if self.degrade_level < self.policy.max_degrade_level:
                    self.degrade_level += 1
                    if self.counter is not None:
                        self.counter.incr("recovery/degrade_ups")
            elif self.degrade_level > 0:
                self.degrade_level -= 1
                if self.counter is not None:
                    self.counter.incr("recovery/degrade_downs")
        self._window_start = now
        self._window_min = None

    def _shed(self, request: Request, why: str) -> ShedError:
        self.shed_count += 1
        name = request.request_class.name
        self.shed_by_class[name] = self.shed_by_class.get(name, 0) + 1
        if self.counter is not None:
            self.counter.incr("recovery/shed")
            self.counter.incr(f"recovery/shed/{name}")
        prefix = f"{self.scope}: " if self.scope else ""
        return ShedError(prefix + why)

    def in_flight(self, entry: str) -> int:
        return self._in_flight.get(entry, 0)
