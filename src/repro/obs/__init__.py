"""Unified observability: span tracing, metrics registry, CPU profiling.

Every :class:`~repro.runtime.WorkerNode` owns an :class:`Observability`
bundle. The metrics registry is always on (it backs ``node.counters``);
the tracer and profiler are opt-in — enabled per node, or process-wide via
:func:`set_default_observe` (what the CLI's ``--trace``/``--profile`` flags
and the ``spright-repro trace`` command set) or the ``SPRIGHT_REPRO_TRACE``
/ ``SPRIGHT_REPRO_PROFILE`` environment variables.

Disabled observability is free *and exact*: no RNG draws, no simulation
events, no extra CPU charges — default runs are byte-identical to a build
without this package. Even with tracing/profiling on, the simulation's
event sequence is untouched; only passive records accumulate, so a traced
run's tables equal an untraced run's byte for byte.
"""

from __future__ import annotations

import os
import weakref
from typing import TYPE_CHECKING, Optional

from . import export, live, slo
from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    LegacyCounters,
    MetricsRegistry,
    log_bucket_bounds,
    sanitize_metric_name,
)
from .profiler import CpuProfiler
from .span import Span, Tracer, coverage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore import CpuAccounting, Environment


def _env_flag(raw: Optional[str]) -> bool:
    return raw is not None and raw.strip().lower() not in ("", "0", "false", "no", "off")


_default_trace = _env_flag(os.environ.get("SPRIGHT_REPRO_TRACE"))
_default_profile = _env_flag(os.environ.get("SPRIGHT_REPRO_PROFILE"))

#: Process-wide LiveSink every new Observability bundle auto-attaches to —
#: how the CLI's --serve flag sees the nodes an experiment creates without
#: the experiment knowing a dashboard exists.
_default_live_sink: Optional["live.LiveSink"] = None


def set_default_live_sink(sink: Optional["live.LiveSink"]) -> None:
    """Install (or clear, with ``None``) the process-wide live sink."""
    global _default_live_sink
    _default_live_sink = sink


def default_live_sink() -> Optional["live.LiveSink"]:
    return _default_live_sink

#: Observability bundles with tracing/profiling enabled this process, in
#: creation order — how the CLI finds what to export after a ``--trace`` run.
_SESSIONS: list = []


def set_default_observe(
    trace: Optional[bool] = None, profile: Optional[bool] = None
) -> None:
    """Set the process-wide tracing/profiling defaults (None = leave as is)."""
    global _default_trace, _default_profile
    if trace is not None:
        _default_trace = bool(trace)
    if profile is not None:
        _default_profile = bool(profile)


def default_observe() -> tuple[bool, bool]:
    """The process-wide (trace, profile) defaults new nodes pick up."""
    return (_default_trace, _default_profile)


def active_sessions() -> list["Observability"]:
    """Live Observability bundles that enabled tracing or profiling."""
    alive = []
    for ref in _SESSIONS:
        session = ref()
        if session is not None:
            alive.append(session)
    return alive


def reset_sessions() -> None:
    """Forget recorded sessions (test isolation)."""
    _SESSIONS.clear()


class Observability:
    """One node's observability bundle: registry + optional tracer/profiler."""

    def __init__(self, env: "Environment", label: Optional[str] = None) -> None:
        self.env = env
        self.label = label
        self.registry = MetricsRegistry()
        self.counters = LegacyCounters(self.registry)
        self.tracer: Optional[Tracer] = None
        self.profiler: Optional[CpuProfiler] = None
        self._kernel_counters: dict = {}
        self._registered = False
        if _default_live_sink is not None:
            _default_live_sink.attach(self)

    # -- enabling ------------------------------------------------------------
    def enable_tracing(self) -> Tracer:
        if self.tracer is None:
            self.tracer = Tracer(self.env)
            self._register()
        return self.tracer

    def enable_profiling(self, accounting: "CpuAccounting") -> CpuProfiler:
        if self.profiler is None:
            self.profiler = CpuProfiler()
            accounting.profiler = self.profiler
            self._register()
        return self.profiler

    def _register(self) -> None:
        if not self._registered:
            self._registered = True
            _SESSIONS.append(weakref.ref(self))

    @property
    def detailed(self) -> bool:
        """True when per-operation detail (tracer or profiler) is on."""
        return self.tracer is not None or self.profiler is not None

    # -- kernel-op accounting (Tables 1/2 reconciliation) ---------------------
    def count_kernel_op(self, tag: str, kind, amount: int = 1) -> None:
        """Mirror an audited kernel op into ``ops/<plane>/<kind>`` counters.

        Called by :class:`repro.kernel.KernelOps` under exactly the same
        condition as the audit-trace count, so each registry counter equals
        the sum of that kind over every :class:`RequestTrace` — the basis of
        the OpenMetrics <-> Table 1/2 reconciliation.
        """
        plane = tag.split("/", 1)[0]
        key = (plane, kind)
        metric = self._kernel_counters.get(key)
        if metric is None:
            metric = self.registry.counter(f"ops/{plane}/{kind.name.lower()}")
            self._kernel_counters[key] = metric
        metric.incr(amount)


__all__ = [
    "CounterMetric",
    "CpuProfiler",
    "GaugeMetric",
    "HistogramMetric",
    "LegacyCounters",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "active_sessions",
    "coverage",
    "default_live_sink",
    "default_observe",
    "export",
    "live",
    "log_bucket_bounds",
    "reset_sessions",
    "sanitize_metric_name",
    "set_default_live_sink",
    "set_default_observe",
    "slo",
]
