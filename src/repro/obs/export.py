"""Exporters: Chrome/Perfetto trace_event JSON and artifact writing.

The span tree serializes to the Trace Event Format (the ``traceEvents``
JSON object Perfetto and ``chrome://tracing`` load directly): each request
becomes one thread track (``tid`` = request index), every span a complete
("X") event with microsecond timestamps, and metadata ("M") events name the
process and each request track. OpenMetrics text comes from
:meth:`repro.obs.metrics.MetricsRegistry.render_openmetrics`; folded stacks
from :meth:`repro.obs.profiler.CpuProfiler.folded`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from .metrics import CounterMetric, GaugeMetric, sanitize_metric_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .span import Span, Tracer

PROCESS_NAME = "spright-repro"
PID = 1


# -- OpenMetrics text exposition ----------------------------------------------

def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics exposition format.

    The spec admits exactly three escapes inside a quoted label value:
    backslash (``\\``), newline (``\\n``), and double-quote (``\\"``) — and
    the backslash must be escaped first or the other two double-escape.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def format_labels(labels: Optional[dict] = None, extra: str = "") -> str:
    """``{a="x",b="y"}`` (or ``""`` when empty); values escaped, keys sorted.

    ``extra`` is a pre-rendered trailing label (the histogram ``le``) that
    must stay last so bucket lines keep the conventional shape.
    """
    parts = [
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted((labels or {}).items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_openmetrics(
    registry, prefix: str = "spright", labels: Optional[dict] = None
) -> str:
    """A registry as OpenMetrics text: typed families, sorted sample names,
    spec-escaped label values, ``_sum``/``_count`` on every histogram, and
    the mandatory ``# EOF`` terminator.

    ``labels`` are constant labels stamped on every sample — how a
    multi-node dashboard distinguishes ``node="worker-1"`` from
    ``node="worker-2"`` in one merged scrape.
    """
    lines: list[str] = []
    plain = format_labels(labels)
    for name in registry.names():
        metric = registry.find(name)
        flat = sanitize_metric_name(name, prefix)
        if isinstance(metric, CounterMetric):
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat}_total{plain} {_fmt_number(metric.value)}")
        elif isinstance(metric, GaugeMetric):
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat}{plain} {_fmt_number(metric.value)}")
        else:
            lines.append(f"# TYPE {flat} histogram")
            for bound, cumulative in metric.cumulative():
                le = "+Inf" if bound == float("inf") else format(bound, "g")
                label_set = format_labels(labels, extra=f'le="{le}"')
                lines.append(f"{flat}_bucket{label_set} {cumulative}")
            lines.append(f"{flat}_sum{plain} {_fmt_number(metric.total)}")
            lines.append(f"{flat}_count{plain} {metric.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _fmt_number(value) -> str:
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


def trace_event_payload(tracer: "Tracer", process_name: str = PROCESS_NAME) -> dict:
    """The tracer's finished spans as a Trace Event Format object."""
    spans = tracer.finished_spans()
    by_sid = {span.sid: span for span in spans}
    root_cache: dict[int, Optional["Span"]] = {}

    def root_of(span: "Span") -> Optional["Span"]:
        cached = root_cache.get(span.sid)
        if cached is not None or span.sid in root_cache:
            return cached
        node = span
        while node.parent is not None:
            parent = by_sid.get(node.parent)
            if parent is None:
                root_cache[span.sid] = None  # ancestor unfinished: skip
                return None
            node = parent
        root_cache[span.sid] = node
        return node

    tids: dict[int, int] = {}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        root = root_of(span)
        if root is None:
            continue
        tid = tids.get(root.sid)
        if tid is None:
            tid = len(tids) + 1
            tids[root.sid] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": PID,
                    "tid": tid,
                    "args": {"name": f"req-{tid} {root.name}"},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, span.duration) * 1e6,
                "pid": PID,
                "tid": tid,
                "args": dict(span.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": process_name,
            "spanCount": len(spans),
            "requestCount": len(tids),
        },
    }


def trace_event_json(tracer: "Tracer", process_name: str = PROCESS_NAME) -> str:
    return json.dumps(trace_event_payload(tracer, process_name), indent=1)


def write_artifacts(
    directory,
    tracer: Optional["Tracer"] = None,
    registry=None,
    profiler=None,
    basename: str = "spright",
) -> list[Path]:
    """Write trace JSON / OpenMetrics text / folded stacks; return the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    if tracer is not None:
        path = directory / f"{basename}.trace.json"
        path.write_text(trace_event_json(tracer) + "\n")
        written.append(path)
    if registry is not None:
        path = directory / f"{basename}.metrics.txt"
        path.write_text(registry.render_openmetrics())
        written.append(path)
    if profiler is not None:
        path = directory / f"{basename}.folded.txt"
        path.write_text(profiler.folded())
        written.append(path)
    return written
