"""Hierarchical metrics registry: counters, gauges, deterministic histograms.

One namespaced API replaces the stringly-typed counter dicts that used to
live in ``dataplane/base.py``, ``mem/sanitizer.py``, ``faults/injector.py``
and ``kernel/netdev.py``: every node owns a :class:`MetricsRegistry`, and
``node.counters`` is a :class:`LegacyCounters` facade over it so existing
``incr``/``get``/``as_dict`` call sites keep working unchanged.

Metric names are ``/``-separated paths (``faults/injected/drop``,
``ops/sspright/copy``, ``autoscale/fn-1/concurrency``); the OpenMetrics
exporter flattens them to ``_``-separated sample names. Histograms use fixed
log-spaced bucket bounds so their shape never depends on the data seen —
exports stay deterministic for a given seed.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence, Union

Number = Union[int, float]

_OPENMETRICS_SAFE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "spright") -> str:
    """``faults/injected/drop`` -> ``spright_faults_injected_drop``."""
    flat = _OPENMETRICS_SAFE.sub("_", name)
    return f"{prefix}_{flat}" if prefix else flat


def log_bucket_bounds(
    start: float = 1e-6, factor: float = 2.0, count: int = 26
) -> tuple[float, ...]:
    """Fixed log-spaced bounds (default: 1 us .. ~33 s in doublings)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**index for index in range(count))


class CounterMetric:
    """A monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def incr(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; amount must be >= 0")
        self.value += amount


class GaugeMetric:
    """A value that goes up and down (autoscaling signals, queue depths)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, delta: Number) -> None:
        self.value += delta


class HistogramMetric:
    """Fixed-bound histogram; bounds are set at creation, never adapted."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else log_bucket_bounds()
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with (+inf, count)."""
        out = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


Metric = Union[CounterMetric, GaugeMetric, HistogramMetric]


class MetricsRegistry:
    """Get-or-create store for namespaced metrics (one per node)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get_or_create(name, GaugeMetric)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> HistogramMetric:
        if bounds is not None:
            return self._get_or_create(name, HistogramMetric, bounds)
        return self._get_or_create(name, HistogramMetric)

    def find(self, name: str) -> Optional[Metric]:
        """Non-creating lookup."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def counters(self) -> Iterable[CounterMetric]:
        """All counters, in registration order (matches legacy dict order)."""
        return (m for m in self._metrics.values() if isinstance(m, CounterMetric))

    def counter_values(self) -> dict[str, int]:
        return {m.name: int(m.value) for m in self.counters()}

    def sum_counters(self, prefix: str, suffix: str = "") -> int:
        """Sum every counter named ``<prefix>/...<suffix>``.

        The reconciliation idiom: ``sum_counters("autoscale", "cold_starts")``
        totals per-function cold starts to compare against a dataplane's own
        counter, without enumerating function names by hand.
        """
        total = 0
        for metric in self.counters():
            name = metric.name
            if not name.startswith(prefix + "/"):
                continue
            if suffix and not name.endswith("/" + suffix):
                continue
            total += int(metric.value)
        return total

    # -- OpenMetrics text exposition ----------------------------------------
    def render_openmetrics(
        self, prefix: str = "spright", labels: Optional[dict] = None
    ) -> str:
        """The registry as OpenMetrics text (sorted, ``# EOF``-terminated).

        Delegates to :func:`repro.obs.export.render_openmetrics`, the one
        conformant renderer (spec label escaping, histogram ``_sum`` and
        ``_count``, ``# EOF``); ``labels`` stamps constant labels on every
        sample. Imported lazily to keep this module dependency-free.
        """
        from .export import render_openmetrics

        return render_openmetrics(self, prefix=prefix, labels=labels)


class LegacyCounters:
    """``stats.Counter``-shaped facade over a registry's counter metrics.

    Keeps every existing ``node.counters.incr(...)`` call site working while
    routing the counts into the registry (and thus the OpenMetrics export).
    ``get`` is non-creating and ``as_dict`` preserves first-increment order,
    matching the ``defaultdict`` semantics of the class it replaces.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def incr(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).incr(amount)

    def get(self, name: str) -> int:
        metric = self.registry.find(name)
        if isinstance(metric, CounterMetric):
            return int(metric.value)
        return 0

    def as_dict(self) -> dict[str, int]:
        return self.registry.counter_values()
