"""Live observability plane: SSE streaming of a running simulation.

Three pieces, layered so each is testable alone:

* :func:`sse_frame` / :func:`stream_frames` / :class:`SseBroker` — the
  Server-Sent-Events wire: framing (``event:`` / ``data:`` / blank line),
  heartbeat comments, bounded per-client queues with drop-oldest backpressure,
  and clean teardown on client disconnect.

* :class:`LiveSink` — the bridge between the simulation and the outside
  world. It registers a **passive observer** on each attached node's
  :class:`~repro.simcore.Environment` (see ``Environment.add_observer``):
  after every processed event the sink gets a chance to snapshot, throttled
  to one snapshot per ``interval`` simulated seconds (plus an optional
  wall-clock floor). Snapshots read the node's
  :class:`~repro.obs.metrics.MetricsRegistry`, tracer span trees, the
  ``traffic/*`` economics namespace, and the :class:`~repro.obs.slo.SloBoard`
  — and *only read*: the sink draws no RNG, schedules no events, and
  therefore leaves a live-attached run byte-identical to a headless one
  (CI-asserted).

* :class:`DashboardServer` — a zero-dependency stdlib
  ``ThreadingHTTPServer`` serving the static dashboard page, JSON snapshot
  endpoints (``/metrics.json``, ``/spans.json``, ``/economics.json``,
  ``/slo.json``, ``/events.json``), an OpenMetrics scrape (``/metrics``,
  node-labeled), and the ``/events`` SSE stream the page subscribes to.

Thread model: the simulation runs on one thread and produces snapshots;
HTTP handler threads only ever read the most recent snapshot (an
atomically swapped dict) or drain their own queue — no handler thread
touches live simulation state.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional
from urllib.parse import urlsplit

from ..stats.tracing import span_waterfall_rows
from .metrics import CounterMetric, GaugeMetric, HistogramMetric
from .slo import SloBoard, SloTarget, histogram_quantile

STATIC_DIR = Path(__file__).parent / "static"

#: Counter namespaces whose per-tick deltas surface as dashboard events.
EVENT_PREFIXES = ("recovery/", "admission/", "faults/", "sanitizer/")

#: End-of-stream sentinel a broker pushes when closing.
_CLOSE = None


# -- SSE wire format ----------------------------------------------------------

def sse_frame(data: str, event: Optional[str] = None, id: Optional[str] = None) -> str:
    """One Server-Sent-Events frame: optional event/id, multi-line data.

    Every line of ``data`` gets its own ``data:`` field (the SSE spec's
    multi-line encoding) and the frame is terminated by the mandatory
    blank line.
    """
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    if id is not None:
        lines.append(f"id: {id}")
    for line in (data.split("\n") if data else [""]):
        lines.append(f"data: {line}")
    return "\n".join(lines) + "\n\n"


def heartbeat_comment() -> str:
    """An SSE comment frame: keeps idle connections alive, clients ignore it."""
    return ": heartbeat\n\n"


def stream_frames(
    frames: "queue_module.Queue",
    write: Callable[[bytes], object],
    flush: Optional[Callable[[], object]] = None,
    heartbeat_s: float = 10.0,
    max_frames: Optional[int] = None,
) -> int:
    """Pump frames from a queue to a client until disconnect or close.

    Waits up to ``heartbeat_s`` for the next frame; on timeout a heartbeat
    comment goes out instead so proxies do not reap the connection. A
    ``None`` sentinel (broker close) or any connection error (client went
    away mid-stream) ends the loop. Returns the number of *data* frames
    written — the unit tests' observable.
    """
    written = 0
    while max_frames is None or written < max_frames:
        try:
            frame = frames.get(timeout=heartbeat_s)
        except queue_module.Empty:
            frame = heartbeat_comment()
        if frame is _CLOSE:
            break
        try:
            write(frame.encode("utf-8"))
            if flush is not None:
                flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            break
        if not frame.startswith(":"):
            written += 1
    return written


class SseBroker:
    """Fan-out of rendered SSE frames to any number of client queues."""

    def __init__(self, queue_depth: int = 64) -> None:
        self.queue_depth = queue_depth
        self._clients: list[queue_module.Queue] = []
        self._lock = threading.Lock()
        self.frames_published = 0

    def subscribe(self) -> "queue_module.Queue":
        client: queue_module.Queue = queue_module.Queue(maxsize=self.queue_depth)
        with self._lock:
            self._clients.append(client)
        return client

    def unsubscribe(self, client: "queue_module.Queue") -> None:
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)

    @property
    def client_count(self) -> int:
        with self._lock:
            return len(self._clients)

    def publish(self, data: str, event: Optional[str] = None) -> None:
        """Render one frame and enqueue it for every client.

        A slow client never blocks the simulation: when its queue is full
        the oldest frame is dropped to make room (live views want the
        newest state, not a complete history).
        """
        frame = sse_frame(data, event=event)
        with self._lock:
            clients = list(self._clients)
        self.frames_published += 1
        for client in clients:
            while True:
                try:
                    client.put_nowait(frame)
                    break
                except queue_module.Full:
                    try:
                        client.get_nowait()
                    except queue_module.Empty:
                        pass

    def close(self) -> None:
        """Wake every streaming loop with the end-of-stream sentinel."""
        with self._lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.put_nowait(_CLOSE)
            except queue_module.Full:
                try:
                    client.get_nowait()
                    client.put_nowait(_CLOSE)
                except (queue_module.Empty, queue_module.Full):
                    pass


# -- the sink -----------------------------------------------------------------

class LiveSink:
    """Passive, throttled snapshot producer over attached node bundles.

    ``interval`` throttles in **simulated** seconds; ``wall_interval``
    adds an optional wall-clock floor so a simulation running much faster
    than real time does not build thousands of snapshots per wall second
    (0 disables the floor — what deterministic tests use).
    """

    def __init__(
        self,
        interval: float = 0.25,
        wall_interval: float = 0.1,
        spans_window: int = 16,
        events_window: int = 200,
        slo_board: Optional[SloBoard] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.wall_interval = wall_interval
        self.spans_window = spans_window
        self.events_window = events_window
        self.broker = SseBroker()
        self.slo = slo_board or SloBoard()
        self._bundles: list = []
        self._envs: list = []
        self._last_sim: Optional[float] = None
        self._last_wall: float = 0.0
        self._counter_shadow: list[dict[str, float]] = []
        self._events: list[dict] = []
        self._events_dropped = 0
        self._latest: Optional[dict] = None
        self._swap = threading.Lock()
        self.snapshots_built = 0
        self.scenario: Optional[str] = None

    def set_scenario(self, name: Optional[str]) -> None:
        """Name the running scenario; shown as a dashboard tile."""
        self.scenario = name

    # -- attachment ----------------------------------------------------------
    def attach(self, bundle) -> None:
        """Watch one node's Observability bundle; hook its env observer."""
        if bundle in self._bundles:
            return
        self._bundles.append(bundle)
        self._counter_shadow.append({})
        env = bundle.env
        if env not in self._envs:
            self._envs.append(env)
            env.add_observer(self._on_event)

    def detach_all(self) -> None:
        for env in self._envs:
            env.remove_observer(self._on_event)
        self._envs.clear()

    def watch_recorder(self, target: SloTarget, recorder, group: str = ""):
        """Stream a LatencyRecorder's completions into an SLO monitor."""
        return self.slo.watch_recorder(target, recorder, group)

    # -- ticking -------------------------------------------------------------
    def _on_event(self, now: float) -> None:
        """Environment observer: throttle, then snapshot + publish."""
        if self._last_sim is not None and now - self._last_sim < self.interval:
            return
        if self.wall_interval > 0.0:
            wall = time.perf_counter()
            if wall - self._last_wall < self.wall_interval:
                return
            self._last_wall = wall
        self._last_sim = now
        self.tick(now)

    def tick(self, now: float) -> dict:
        """Build a snapshot at sim time ``now`` and publish it over SSE."""
        snapshot = self.snapshot(now)
        self.broker.publish(
            json.dumps(snapshot, separators=(",", ":")), event="snapshot"
        )
        return snapshot

    def finalize(self, now: Optional[float] = None) -> dict:
        """Final snapshot at run end, published as a ``complete`` event."""
        if now is None:
            now = self._envs[0].now if self._envs else 0.0
        snapshot = self.snapshot(now)
        snapshot["complete"] = True
        self.broker.publish(
            json.dumps(snapshot, separators=(",", ":")), event="complete"
        )
        return snapshot

    # -- snapshot builders ---------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> dict:
        """The full dashboard payload; caches as :attr:`latest`."""
        if now is None:
            now = self._envs[0].now if self._envs else 0.0
        self.slo.tick(now)
        self._derive_events(now)
        snapshot = {
            "schema": "spright.live/1",
            "scenario": self.scenario,
            "now": now,
            "events_processed": sum(
                env.events_processed for env in self._envs
            ),
            "metrics": self.metrics_snapshot(now),
            "spans": self.spans_snapshot(now),
            "economics": self.economics_snapshot(now),
            "slo": self.slo_snapshot(now),
            "events": {"recent": self._events[-25:]},
        }
        with self._swap:
            self._latest = snapshot
            self.snapshots_built += 1
        return snapshot

    @property
    def latest(self) -> Optional[dict]:
        with self._swap:
            return self._latest

    def section(self, name: str) -> dict:
        """One snapshot section; builds a fresh snapshot only when none
        exists yet (before the first simulated event — no race possible)."""
        snapshot = self.latest
        if snapshot is None:
            snapshot = self.snapshot()
        if name == "all":
            return snapshot
        payload = dict(snapshot[name])
        payload.setdefault("schema", f"spright.live.{name}/1")
        payload.setdefault("now", snapshot["now"])
        return payload

    def _labels(self) -> list[str]:
        labels = []
        for index, bundle in enumerate(self._bundles):
            labels.append(getattr(bundle, "label", None) or f"node-{index}")
        return labels

    def metrics_snapshot(self, now: float) -> dict:
        nodes = []
        for label, bundle in zip(self._labels(), self._bundles):
            registry = bundle.registry
            counters: dict[str, float] = {}
            gauges: dict[str, float] = {}
            histograms: dict[str, dict] = {}
            for name in registry.names():
                metric = registry.find(name)
                if isinstance(metric, CounterMetric):
                    counters[name] = metric.value
                elif isinstance(metric, GaugeMetric):
                    gauges[name] = metric.value
                elif isinstance(metric, HistogramMetric):
                    histograms[name] = {
                        "count": metric.count,
                        "sum": metric.total,
                        "p50": _finite(histogram_quantile(metric, 0.50)),
                        "p90": _finite(histogram_quantile(metric, 0.90)),
                        "p99": _finite(histogram_quantile(metric, 0.99)),
                    }
            nodes.append(
                {
                    "name": label,
                    "counters": counters,
                    "gauges": gauges,
                    "histograms": histograms,
                }
            )
        return {"schema": "spright.live.metrics/1", "now": now, "nodes": nodes}

    def spans_snapshot(self, now: float) -> dict:
        """Rolling waterfalls of the most recently finished requests."""
        waterfalls = []
        for label, bundle in zip(self._labels(), self._bundles):
            tracer = bundle.tracer
            if tracer is None:
                continue
            finished = tracer.finished_spans()
            by_parent: dict[int, list] = {}
            roots = []
            for span in finished:
                if span.parent is None:
                    roots.append(span)
                else:
                    by_parent.setdefault(span.parent, []).append(span)
            for root in roots[-self.spans_window:]:
                children = by_parent.get(root.sid, [])
                # Event markers hang off the root; leg/shm spans hang off
                # phases — the waterfall wants phases + root-level events.
                waterfalls.append(
                    {
                        "node": label,
                        "request": root.name,
                        "start_s": root.start,
                        "duration_s": root.duration,
                        "rows": span_waterfall_rows(root, children),
                    }
                )
        return {
            "schema": "spright.live.spans/1",
            "now": now,
            "waterfalls": waterfalls[-self.spans_window:],
        }

    def economics_snapshot(self, now: float) -> dict:
        from ..traffic.economics import rows_from_registry

        rows: list[dict] = []
        for label, bundle in zip(self._labels(), self._bundles):
            for row in rows_from_registry(bundle.registry):
                row["node"] = label
                rows.append(row)
        return {"schema": "spright.live.economics/1", "now": now, "rows": rows}

    def slo_snapshot(self, now: float) -> dict:
        histograms: dict[str, HistogramMetric] = {}
        for bundle in self._bundles:
            for name in bundle.registry.names():
                metric = bundle.registry.find(name)
                if isinstance(metric, HistogramMetric) and name.startswith(
                    "latency/"
                ):
                    # latency/<target> histograms pair with same-named targets.
                    histograms.setdefault(name.split("/", 1)[1], metric)
        return {
            "schema": "spright.live.slo/1",
            "now": now,
            "targets": [
                status.as_dict() for status in self.slo.status(now, histograms)
            ],
        }

    def _derive_events(self, now: float) -> None:
        """Turn counter deltas under the event prefixes into feed rows."""
        for index, bundle in enumerate(self._bundles):
            shadow = self._counter_shadow[index]
            for metric in bundle.registry.counters():
                name = metric.name
                if not name.startswith(EVENT_PREFIXES):
                    continue
                previous = shadow.get(name, 0)
                if metric.value != previous:
                    shadow[name] = metric.value
                    self._events.append(
                        {
                            "t": now,
                            "kind": name.split("/", 1)[0],
                            "name": name,
                            "delta": metric.value - previous,
                            "total": metric.value,
                        }
                    )
        if len(self._events) > self.events_window:
            self._events_dropped += len(self._events) - self.events_window
            del self._events[: len(self._events) - self.events_window]

    def events_snapshot(self) -> dict:
        return {
            "schema": "spright.live.events/1",
            "dropped": self._events_dropped,
            "events": list(self._events),
        }

    # -- OpenMetrics ---------------------------------------------------------
    def openmetrics(self, prefix: str = "spright") -> str:
        """One merged node-labeled exposition over every attached bundle."""
        from .export import render_openmetrics

        parts = []
        for label, bundle in zip(self._labels(), self._bundles):
            text = render_openmetrics(
                bundle.registry, prefix=prefix, labels={"node": label}
            )
            parts.append(text[: -len("# EOF\n")])
        return "".join(parts) + "# EOF\n"


def _finite(value: float) -> Optional[float]:
    return None if value != value else value


# -- the HTTP server ----------------------------------------------------------

JSON_SECTIONS = {
    "/metrics.json": "metrics",
    "/spans.json": "spans",
    "/economics.json": "economics",
    "/slo.json": "slo",
}


class _DashboardHandler(BaseHTTPRequestHandler):
    """Routes; the server class injects ``sink`` and ``heartbeat_s``."""

    sink: LiveSink
    heartbeat_s: float
    server_version = "spright-live/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *_args) -> None:  # quiet: the report owns stdout
        pass

    def _send(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict) -> None:
        self._send(
            json.dumps(payload, indent=1).encode("utf-8") + b"\n",
            "application/json; charset=utf-8",
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path
        try:
            if path in ("/", "/index.html"):
                page = STATIC_DIR / "dashboard.html"
                self._send(page.read_bytes(), "text/html; charset=utf-8")
            elif path in JSON_SECTIONS:
                self._send_json(self.sink.section(JSON_SECTIONS[path]))
            elif path == "/events.json":
                self._send_json(self.sink.events_snapshot())
            elif path == "/snapshot.json":
                self._send_json(self.sink.section("all"))
            elif path == "/metrics":
                self._send(
                    self.sink.openmetrics().encode("utf-8"),
                    "application/openmetrics-text; version=1.0.0; charset=utf-8",
                )
            elif path == "/events":
                self._serve_sse()
            else:
                self._send(b"not found\n", "text/plain; charset=utf-8", 404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _serve_sse(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        # SSE is an unbounded stream: no Content-Length, close delimits.
        self.send_header("Connection", "close")
        self.end_headers()
        client = self.sink.broker.subscribe()
        try:
            latest = self.sink.latest
            if latest is not None:
                self.wfile.write(
                    sse_frame(
                        json.dumps(latest, separators=(",", ":")),
                        event="snapshot",
                    ).encode("utf-8")
                )
                self.wfile.flush()
            stream_frames(
                client,
                self.wfile.write,
                self.wfile.flush,
                heartbeat_s=self.heartbeat_s,
            )
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            self.sink.broker.unsubscribe(client)


class DashboardServer:
    """The dashboard's threaded HTTP server (daemon threads, port 0 = any)."""

    def __init__(
        self,
        sink: LiveSink,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 10.0,
    ) -> None:
        self.sink = sink
        handler = type(
            "BoundDashboardHandler",
            (_DashboardHandler,),
            {"sink": sink, "heartbeat_s": heartbeat_s},
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "DashboardServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="spright-dashboard", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.sink.broker.close()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
