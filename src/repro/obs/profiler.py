"""Simulated-CPU profiler: every charged cost attributed to a stack.

Hooks :class:`repro.simcore.cpu.CpuAccounting` — the single funnel all CPU
charges pass through — and attributes each charge to a stack made of the
component's CPU tag segments (plane, component, pod) plus the operation
name supplied by the charging site (``copy``, ``context_switch``,
``ebpf_run``, ``service``, ...). Bundled charges carry their per-operation
breakdown so one coalesced CPU event still profiles as its constituents.

The profiler never alters what is recorded in the accounting ledger, so a
profiled run's CPU%% tables are identical to an unprofiled run's. Output is
folded-stack text (``plane;component;op <nanoseconds>``), the input format
of every flamegraph renderer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

#: A charge's operation attribution: a single op name, or a pre-broken-down
#: list of (op name, seconds) components from an OpBundle commit.
OpAttribution = Union[None, str, Sequence[tuple[str, float]]]

UNTYPED = "untyped"


class CpuProfiler:
    """Accumulates seconds per (tag segments..., operation) stack."""

    def __init__(self) -> None:
        self.samples: dict[tuple[str, ...], float] = {}
        self.total = 0.0

    def record(self, tag: str, op: OpAttribution, seconds: float) -> None:
        if seconds <= 0:
            return
        self.total += seconds
        frames = tuple(tag.split("/"))
        if op is None or isinstance(op, str):
            self._add(frames, op or UNTYPED, seconds)
        else:
            for name, part in op:
                self._add(frames, name, part)

    def _add(self, frames: tuple[str, ...], op: str, seconds: float) -> None:
        key = frames + (op,)
        self.samples[key] = self.samples.get(key, 0.0) + seconds

    # -- views ---------------------------------------------------------------
    def folded(self) -> str:
        """Folded-stack flamegraph text, weights in integer nanoseconds."""
        lines = []
        for key in sorted(self.samples):
            nanos = int(round(self.samples[key] * 1e9))
            if nanos > 0:
                lines.append(";".join(key) + f" {nanos}")
        return "\n".join(lines) + ("\n" if lines else "")

    def by_plane(self) -> dict[str, float]:
        """Seconds per top-level stack frame (the plane tag prefix)."""
        out: dict[str, float] = {}
        for key, seconds in self.samples.items():
            out[key[0]] = out.get(key[0], 0.0) + seconds
        return dict(sorted(out.items()))

    def by_operation(self) -> dict[str, float]:
        """Seconds per leaf operation, across all components."""
        out: dict[str, float] = {}
        for key, seconds in self.samples.items():
            out[key[-1]] = out.get(key[-1], 0.0) + seconds
        return dict(sorted(out.items()))

    def top_stacks(self, count: int = 10) -> list[tuple[str, float]]:
        ordered = sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(";".join(key), seconds) for key, seconds in ordered[:count]]
