"""Causal span tracing: parent/child spans over the simulated request path.

The tracer layers structure onto the flat ``(name, stamp)`` milestone
timeline: every traced request gets a **root span** covering its whole
lifetime, the gaps between consecutive milestones become contiguous **phase
spans** (children of the root, named after the milestone that closes them),
and dataplanes open explicit child spans (kernel legs, eBPF program runs,
shared-memory ring operations) inside the current phase. Because phases
tile the root exactly, the span tree always covers the request's wall time.

Determinism: tracing makes zero RNG draws and schedules zero simulation
events — it only records timestamps the simulation produced anyway — so a
traced run's tables are byte-identical to an untraced run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simcore import Environment


#: Milestones that describe discrete events (fault/resilience activity)
#: rather than pipeline progress; they additionally become zero-duration
#: "event" spans parented on the root, so Perfetto shows them as markers.
EVENT_MILESTONES = ("retry:", "hedge:", "breaker:", "crash:", "failed")


@dataclass
class Span:
    """One node of a request's span tree."""

    sid: int
    name: str
    category: str                 # request | phase | leg | ebpf | shm | event
    start: float
    parent: Optional[int]         # parent sid; None for the root
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


class _RequestState:
    """Per-request tracer bookkeeping, keyed by the root span's sid."""

    __slots__ = ("root", "phase", "open_spans")

    def __init__(self, root: Span, phase: Span) -> None:
        self.root = root
        self.phase = phase
        self.open_spans: list[Span] = []


class Tracer:
    """Produces span trees for requests; attach via ``Dataplane.submit``."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.spans: list[Span] = []        # every span, in creation order
        self._states: dict[int, _RequestState] = {}
        self.requests_started = 0
        self.requests_finished = 0

    # -- span construction ---------------------------------------------------
    def _new_span(
        self, name: str, category: str, start: float, parent: Optional[int]
    ) -> Span:
        span = Span(
            sid=len(self.spans) + 1,
            name=name,
            category=category,
            start=start,
            parent=parent,
        )
        self.spans.append(span)
        return span

    def _span(self, sid: Optional[int]) -> Optional[Span]:
        if sid is None:
            return None
        return self.spans[sid - 1]

    def _state_for(self, request) -> Optional[_RequestState]:
        root = getattr(request, "span", None)
        if root is None:
            return None
        return self._states.get(root.sid)

    # -- request lifecycle ---------------------------------------------------
    def start_request(self, request, name: str, **attrs) -> Span:
        """Open the root span (and the first phase) for a request."""
        root = self._new_span(name, "request", request.created_at, None)
        root.attrs.update(attrs)
        request.span = root
        request.tracer = self
        phase = self._new_span("", "phase", request.created_at, root.sid)
        self._states[root.sid] = _RequestState(root, phase)
        self.requests_started += 1
        return root

    def on_mark(self, request, milestone: str, now: float) -> None:
        """A timeline milestone: close the open phase, open the next one.

        Out-of-order stamps (a milestone earlier than the previous one) are
        clamped to the phase start and flagged, mirroring the waterfall's
        treatment; the next phase then begins at the clamped boundary so
        phases stay contiguous and non-overlapping.
        """
        state = self._state_for(request)
        if state is None:
            return
        phase = state.phase
        end = now
        if end < phase.start:
            end = phase.start
            phase.attrs["out_of_order"] = True
        phase.name = milestone
        phase.end = end
        if milestone.startswith(EVENT_MILESTONES):
            marker = self._new_span(milestone, "event", now, state.root.sid)
            marker.end = now
        state.phase = self._new_span("", "phase", end, state.root.sid)

    def begin(self, request, name: str, category: str = "op", **attrs) -> Optional[Span]:
        """Open an explicit child span inside the current phase."""
        state = self._state_for(request)
        if state is None:
            return None
        span = self._new_span(name, category, self.env.now, state.phase.sid)
        span.attrs.update(attrs)
        state.open_spans.append(span)
        return span

    def finish(self, request, span: Optional[Span], **attrs) -> None:
        """Close an explicit span; reparent if its phase closed underneath it.

        Under hedging, two delivery attempts interleave their milestones on
        one request, so a leg span of attempt A can outlive the phase that
        was open when it began. Walking up to the nearest still-containing
        ancestor (ultimately the root, which stays open for the request's
        whole lifetime) preserves the child-within-parent invariant.
        """
        if span is None:
            return
        span.end = self.env.now
        span.attrs.update(attrs)
        state = self._state_for(request)
        if state is not None and span in state.open_spans:
            state.open_spans.remove(span)
        self._reparent(span)

    def _reparent(self, span: Span) -> None:
        parent = self._span(span.parent)
        while (
            parent is not None
            and parent.parent is not None
            and parent.end is not None
            and span.end is not None
            and span.end > parent.end
        ):
            span.parent = parent.parent
            parent = self._span(parent.parent)

    def finish_request(self, request, **attrs) -> None:
        """Close the root span; finalize the trailing phase and orphans."""
        root = getattr(request, "span", None)
        if root is None:
            return
        state = self._states.pop(root.sid, None)
        if state is None:
            return
        now = self.env.now
        root.end = now
        root.attrs.update(attrs)
        phase = state.phase
        if phase.end is None:
            if now <= phase.start and not phase.name:
                # Zero-length unnamed tail (completion coincided with the
                # final milestone): not a real phase, exclude from exports.
                phase.end = phase.start
                phase.attrs["dropped"] = True
            else:
                phase.name = phase.name or "tail"
                phase.end = now
        for span in state.open_spans:
            # Abandoned mid-flight (cancelled hedge, horizon cut): close at
            # the root's end so the tree stays well-formed, and say so.
            span.end = now
            span.attrs["cancelled"] = True
            self._reparent(span)
        state.open_spans.clear()
        self.requests_finished += 1

    # -- views ---------------------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """Exportable spans: closed, not dropped (in creation order)."""
        return [
            span
            for span in self.spans
            if span.end is not None and not span.attrs.get("dropped")
        ]

    def roots(self) -> list[Span]:
        return [span for span in self.finished_spans() if span.parent is None]

    def children_index(self) -> dict[int, list[Span]]:
        """parent sid -> direct children, over finished spans."""
        index: dict[int, list[Span]] = {}
        for span in self.finished_spans():
            if span.parent is not None:
                index.setdefault(span.parent, []).append(span)
        return index


def coverage(root: Span, children: dict[int, list[Span]]) -> float:
    """Fraction of the root's wall time tiled by its phase children."""
    duration = root.duration
    if duration <= 0:
        return 1.0
    covered = 0.0
    for child in children.get(root.sid, ()):
        if child.category != "phase" or child.end is None:
            continue
        lo = max(child.start, root.start)
        hi = min(child.end, root.end if root.end is not None else child.end)
        if hi > lo:
            covered += hi - lo
    return covered / duration
