"""Streaming SLO monitors: multi-window burn-rate alerts + p99 targets.

The monitors follow the SRE-workbook shape: an :class:`SloTarget` states an
objective (fraction of requests that must be *good*) and an optional
latency threshold that defines goodness; a :class:`BurnRateMonitor` keeps a
rolling record of (time, good, total) counts and evaluates **paired
windows** — an alert fires only when both the short and the long window
burn error budget faster than the pair's factor, which keeps alerts both
fast (short window reacts quickly) and robust (long window filters blips).

Burn rate is ``error_rate / error_budget``: a burn rate of 1.0 spends
exactly the SLO's allowance; 14.4 spends a 30-day budget in 2 hours.

Everything here is passive and allocation-light: monitors only read counts
they are handed (typically by :class:`repro.obs.live.LiveSink` ticks or an
experiment loop) and never touch the simulation. Time is **simulated
seconds** — windows are sim-time windows.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

#: The classic SRE paired windows, scaled for simulation horizons: (short
#: window s, long window s, burn-rate factor). Defaults are much shorter
#: than the workbook's 5m/1h+30m/6h because simulated runs last seconds to
#: hours, not months; pass explicit windows for long-horizon experiments.
DEFAULT_WINDOWS: tuple[tuple[float, float, float], ...] = (
    (5.0, 60.0, 14.4),
    (30.0, 360.0, 6.0),
)


def histogram_quantile(hist, quantile: float) -> float:
    """Estimate a quantile from a fixed-bound histogram metric.

    Standard Prometheus-style linear interpolation inside the bucket that
    crosses the target rank; the +Inf bucket reports the highest finite
    bound (there is nothing better to say about it). Returns ``nan`` for an
    empty histogram.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if hist.count == 0:
        return float("nan")
    rank = quantile * hist.count
    running = 0
    previous_bound = 0.0
    for bound, bucket in zip(hist.bounds, hist.counts):
        if bucket:
            if running + bucket >= rank:
                inside = max(0.0, rank - running)
                return previous_bound + (bound - previous_bound) * (
                    inside / bucket
                )
            running += bucket
        previous_bound = bound
    return hist.bounds[-1] if hist.bounds else float("nan")


@dataclass(frozen=True)
class SloTarget:
    """One objective: ``objective`` of requests good, good = under threshold."""

    name: str
    objective: float = 0.99           # fraction of requests that must be good
    latency_threshold_s: float = 0.25  # a request is good iff latency <= this
    windows: tuple[tuple[float, float, float], ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        for short, long, factor in self.windows:
            if not 0 < short < long or factor <= 0:
                raise ValueError(f"bad window triple {(short, long, factor)!r}")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass
class BurnRateAlert:
    """One paired-window alert evaluation."""

    target: str
    short_window_s: float
    long_window_s: float
    factor: float
    short_burn: float
    long_burn: float
    firing: bool


class BurnRateMonitor:
    """Rolling (time, good, total) record evaluated against paired windows."""

    def __init__(self, target: SloTarget) -> None:
        self.target = target
        # Cumulative samples: (now, good_total, total). Monotonic in all
        # three components; pruned to the longest configured window.
        self._samples: deque[tuple[float, int, int]] = deque()
        self._horizon = max(long for _, long, _ in target.windows)
        self.total = 0
        self.good = 0

    # -- feeding -------------------------------------------------------------
    def record(self, now: float, good: int, bad: int) -> None:
        """Add ``good``/``bad`` request completions observed at ``now``."""
        if good < 0 or bad < 0:
            raise ValueError("good/bad deltas must be non-negative")
        if good == 0 and bad == 0:
            return
        self.good += good
        self.total += good + bad
        self._samples.append((now, self.good, self.total))
        cutoff = now - self._horizon
        while len(self._samples) > 1 and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def record_latency(self, now: float, latency_s: float) -> None:
        good = latency_s <= self.target.latency_threshold_s
        self.record(now, int(good), int(not good))

    # -- evaluation ----------------------------------------------------------
    def _window_counts(self, now: float, window_s: float) -> tuple[int, int]:
        """(good, total) accumulated inside (now - window_s, now]."""
        if not self._samples:
            return (0, 0)
        cutoff = now - window_s
        times = [sample[0] for sample in self._samples]
        index = bisect_left(times, cutoff)
        if index == 0:
            base_good, base_total = 0, 0
            first = self._samples[0]
            if first[0] <= cutoff:
                base_good, base_total = first[1], first[2]
        else:
            _, base_good, base_total = self._samples[index - 1]
        return (self.good - base_good, self.total - base_total)

    def burn_rate(self, now: float, window_s: float) -> float:
        """``error_rate / error_budget`` over the trailing window (0 if idle)."""
        good, total = self._window_counts(now, window_s)
        if total == 0:
            return 0.0
        error_rate = (total - good) / total
        return error_rate / self.target.error_budget

    def alerts(self, now: float) -> list[BurnRateAlert]:
        out = []
        for short, long, factor in self.target.windows:
            short_burn = self.burn_rate(now, short)
            long_burn = self.burn_rate(now, long)
            out.append(
                BurnRateAlert(
                    target=self.target.name,
                    short_window_s=short,
                    long_window_s=long,
                    factor=factor,
                    short_burn=short_burn,
                    long_burn=long_burn,
                    firing=short_burn >= factor and long_burn >= factor,
                )
            )
        return out

    def firing(self, now: float) -> bool:
        return any(alert.firing for alert in self.alerts(now))

    def attainment(self) -> float:
        if self.total == 0:
            return float("nan")
        return self.good / self.total


@dataclass
class SloStatus:
    """One target's dashboard row."""

    name: str
    objective: float
    threshold_s: float
    total: int
    attainment: float
    p99_s: Optional[float]
    firing: bool
    alerts: list[BurnRateAlert] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "threshold_s": self.threshold_s,
            "total": self.total,
            "attainment": None if self.attainment != self.attainment
            else self.attainment,
            "p99_s": self.p99_s,
            "firing": self.firing,
            "alerts": [
                {
                    "short_window_s": alert.short_window_s,
                    "long_window_s": alert.long_window_s,
                    "factor": alert.factor,
                    "short_burn": alert.short_burn,
                    "long_burn": alert.long_burn,
                    "firing": alert.firing,
                }
                for alert in self.alerts
            ],
        }


class SloBoard:
    """A set of monitors fed from latency recorders, ticked by the sink.

    ``watch_recorder`` points a target at a :class:`repro.stats
    .LatencyRecorder`; each :meth:`tick` consumes only the samples that
    arrived since the previous tick (an index into the recorder's sample
    list — O(new samples), zero when idle). Monitors are also open for
    direct :meth:`record` feeding from experiment loops.
    """

    def __init__(self) -> None:
        self.monitors: dict[str, BurnRateMonitor] = {}
        self._recorders: list[tuple[str, object, str, int]] = []

    def add_target(self, target: SloTarget) -> BurnRateMonitor:
        monitor = self.monitors.get(target.name)
        if monitor is None:
            monitor = BurnRateMonitor(target)
            self.monitors[target.name] = monitor
        return monitor

    def watch_recorder(
        self, target: SloTarget, recorder, name: str = ""
    ) -> BurnRateMonitor:
        monitor = self.add_target(target)
        self._recorders.append([target.name, recorder, name, 0])
        return monitor

    def record(self, name: str, now: float, good: int, bad: int) -> None:
        self.monitors[name].record(now, good, bad)

    def tick(self, now: float) -> None:
        """Drain newly arrived recorder samples into the monitors."""
        for entry in self._recorders:
            target_name, recorder, name, seen = entry
            fresh = recorder.samples_since(seen, name)
            monitor = self.monitors[target_name]
            threshold = monitor.target.latency_threshold_s
            good = bad = 0
            for _completed_at, latency in fresh:
                if latency <= threshold:
                    good += 1
                else:
                    bad += 1
            if good or bad:
                monitor.record(now, good, bad)
            entry[3] = seen + len(fresh)

    # -- views ---------------------------------------------------------------
    def status(
        self, now: float, histograms: Optional[dict] = None
    ) -> list[SloStatus]:
        """Per-target rows (sorted by name) for reports and the dashboard.

        ``histograms`` optionally maps target name -> a
        :class:`repro.obs.metrics.HistogramMetric` whose p99 should be
        displayed next to the target's threshold.
        """
        rows = []
        for name in sorted(self.monitors):
            monitor = self.monitors[name]
            hist = (histograms or {}).get(name)
            p99 = histogram_quantile(hist, 0.99) if hist is not None else None
            if p99 is not None and p99 != p99:
                p99 = None
            rows.append(
                SloStatus(
                    name=name,
                    objective=monitor.target.objective,
                    threshold_s=monitor.target.latency_threshold_s,
                    total=monitor.total,
                    attainment=monitor.attainment(),
                    p99_s=p99,
                    firing=monitor.firing(now),
                    alerts=monitor.alerts(now),
                )
            )
        return rows

    def firing(self, now: float) -> list[str]:
        return [
            name
            for name in sorted(self.monitors)
            if self.monitors[name].firing(now)
        ]


def targets_from_registry(
    registry,
    prefix: str = "traffic",
    objective: float = 0.99,
    threshold_s: float = 0.25,
    windows: Sequence[tuple[float, float, float]] = DEFAULT_WINDOWS,
) -> list[SloTarget]:
    """One target per function that has ``<prefix>/<fn>/requests`` counters."""
    names = []
    for metric in registry.counters():
        parts = metric.name.split("/")
        if (
            len(parts) == 3
            and parts[0] == prefix
            and parts[2] == "requests"
            and parts[1] != "total"
        ):
            names.append(parts[1])
    return [
        SloTarget(
            name=name,
            objective=objective,
            latency_threshold_s=threshold_s,
            windows=tuple(tuple(w) for w in windows),
        )
        for name in sorted(names)
    ]
