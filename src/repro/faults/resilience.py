"""Resilience policies the gateways apply around request delivery.

The paper extracts the "server" (queue proxy, retries, health checks) out of
the pod; something still has to own the client-visible failure handling.
This module is that something, shared by all four dataplane gateways:

* **per-attempt timeout** — an attempt round that exceeds ``timeout`` is
  cancelled (its processes interrupted, resources released) and counted as
  a ``DeliveryError(kind="timeout")``;
* **retries with capped exponential backoff** — failed retryable attempts
  are retried up to ``retries`` times after
  ``min(backoff_base * 2**attempt, backoff_cap)`` plus deterministic
  jitter drawn from the ``resilience/backoff`` RNG stream;
* **request hedging** — after ``hedge_delay`` with no response, a cloned
  attempt is launched (à la "Modeling of Request Cloning in Cloud Server
  Systems using Processor Sharing", PAPERS.md); first completion wins and
  the losers are cancelled;
* **synchronized cloning** — ``clone_factor=d`` launches *d* attempts at
  dispatch time (not delay-triggered like hedging), each placed on a
  distinct pod via the request's claimed-pod set; the first completion
  wins, the losers are interrupted so shared-memory handles are freed by
  their own cleanup paths and their processor-sharing capacity returns to
  the survivors instantly. Each extra clone pays the plane's
  :class:`CloneCostModel` — descriptor-only for the shared-memory SPRIGHT
  planes, a full payload marshal for Knative/gRPC — which is what shifts
  the optimal clone factor per plane (the ``spright-repro cloning`` lab);
* **per-function circuit breaker** — ``breaker_threshold`` consecutive
  failures open the breaker for ``breaker_reset`` seconds, failing calls
  fast with ``kind="breaker_open"`` so a dead function cannot absorb the
  whole retry budget. Half-open admits exactly one probe: admission hands
  out a :class:`BreakerPermit`, and only the probe's own report (or a
  result from the current generation) can move the breaker state — stale
  results from attempts admitted before the trip are ignored.

Everything is deterministic: jitter comes from named ``RandomStreams``, and
with the default :class:`ResiliencePolicy` (no timeout, no retries, no
hedging, no cloning) the controller is never engaged, so fault-free runs
make zero extra RNG draws and stay bit-identical to builds without this
subsystem.

Default-policy guidance from the cloning lab (see EXPERIMENTS.md): with
exponential-ish service variability, SPRIGHT planes should clone at the
measured optimum (``clone_factor = d_opt``, descriptor cost model) while
Knative/gRPC stay at ``clone_factor=1`` unless payloads are small — their
per-clone marshal cost erases the min-of-d win at realistic sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..kernel.costs import CostModel, DEFAULT_COSTS
from ..simcore import DeliveryError, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataplane.base import Dataplane, Request
    from ..simcore import RandomStreams

#: RNG stream names (module-level so tests and docs agree on the spelling)
BACKOFF_STREAM = "resilience/backoff"
HEDGE_STREAM = "resilience/hedge"


@dataclass(frozen=True)
class CloneCostModel:
    """What dispatching one extra clone of a request costs the gateway.

    The cost (seconds) is charged to gateway CPU *and* delays that clone's
    dispatch — the primary attempt never pays it. ``kind`` is a label for
    reports: ``"descriptor"`` (SPRIGHT: the payload already sits in shared
    memory, a clone is one more 24-byte descriptor) vs ``"marshal"``
    (Knative/gRPC: every clone re-serializes and copies the payload).
    """

    kind: str = "descriptor"
    fixed: float = 0.0
    per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed < 0 or self.per_byte < 0:
            raise ValueError("clone costs must be non-negative")

    def cost(self, nbytes: int) -> float:
        return self.fixed + self.per_byte * nbytes


#: Measured per-plane optimal synchronized-clone factor, from the PR 9
#: cloning lab (EXPERIMENTS.md "Request-cloning lab"): the shared-memory
#: planes keep winning from a second clone (descriptor-only dispatch, the
#: payload never moves), while Knative/gRPC's per-clone marshal cost erases
#: the min-of-d gain at realistic payload sizes, so their measured optimum
#: stays d=1. This is the default the scenario schema's ``resilience``
#: section ships (``clone_factor: optimal``).
MEASURED_OPTIMAL_CLONE_FACTOR = {
    "s-spright": 2,
    "d-spright": 2,
    "lambda-nic": 2,
    "knative": 1,
    "grpc": 1,
}


def optimal_clone_factor(plane: str) -> int:
    """The lab-measured optimal clone factor for ``plane`` (1 = don't clone)."""
    return MEASURED_OPTIMAL_CLONE_FACTOR.get(plane, 1)


def default_resilience_for_plane(
    plane: str,
    retries: int = 2,
    hedge_delay: Optional[float] = None,
    timeout: Optional[float] = 1.0,
    clone_factor="optimal",
    breaker_threshold: int = 8,
    breaker_reset: float = 2.0,
    costs: Optional[CostModel] = None,
) -> ResiliencePolicy:
    """The default policy experiments ship for ``plane``.

    ``clone_factor`` accepts an integer, ``"optimal"`` (the measured
    per-plane optimum above — the default), or ``None``/``"off"`` (1).
    Whenever the resolved factor clones, the plane's calibrated
    :class:`CloneCostModel` is attached so every extra clone pays its real
    dispatch cost.
    """
    if clone_factor in (None, "off"):
        resolved = 1
    elif clone_factor == "optimal":
        resolved = optimal_clone_factor(plane)
    else:
        resolved = int(clone_factor)
    cost = clone_cost_for_plane(plane, costs) if resolved > 1 else None
    return ResiliencePolicy(
        timeout=timeout,
        retries=retries,
        hedge_delay=hedge_delay,
        breaker_threshold=breaker_threshold,
        breaker_reset=breaker_reset,
        clone_factor=resolved,
        clone_cost=cost,
    )


def clone_cost_for_plane(
    plane: str, costs: Optional[CostModel] = None
) -> CloneCostModel:
    """The calibrated per-plane clone cost, derived from the kernel model.

    SPRIGHT planes clone by allocating a descriptor against the buffer
    already in the shared-memory pool (pool get + ring enqueue/dequeue);
    Knative clones re-serialize, copy, and re-parse the payload per clone;
    gRPC skips the broker-side re-parse but still marshals.
    """
    costs = costs or DEFAULT_COSTS
    name = plane.replace("-", "").lower()
    if name in ("sspright", "dspright", "lambdanic", "spright"):
        return CloneCostModel(
            kind="descriptor",
            fixed=costs.shm_pool_get + costs.ring_enqueue + costs.ring_dequeue,
            per_byte=0.0,
        )
    if name in ("kn", "knative"):
        return CloneCostModel(
            kind="marshal",
            fixed=costs.serialize_fixed + costs.deserialize_fixed + costs.copy_fixed,
            per_byte=costs.serialize_per_byte
            + costs.deserialize_per_byte
            + costs.copy_per_byte,
        )
    if name == "grpc":
        return CloneCostModel(
            kind="marshal",
            fixed=costs.serialize_fixed + costs.copy_fixed,
            per_byte=costs.serialize_per_byte + costs.copy_per_byte,
        )
    raise KeyError(f"no clone cost model for plane {plane!r}")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for the gateway-side resilience controller.

    The default constructs an entirely inert policy: no timeout, no
    retries, no hedging, breaker disabled. ``Dataplane.submit`` only
    engages the controller when :meth:`enabled` is true.
    """

    timeout: Optional[float] = None  # per-attempt deadline (seconds)
    retries: int = 0  # extra attempts after the first
    backoff_base: float = 0.002  # first backoff (seconds)
    backoff_cap: float = 0.25  # exponential growth ceiling
    backoff_jitter: float = 0.5  # +- fraction of the delay
    hedge_delay: Optional[float] = None  # None = hedging off
    hedge_max: int = 1  # extra cloned attempts per round
    breaker_threshold: int = 0  # 0 = breaker disabled
    breaker_reset: float = 1.0  # open -> half-open cooldown
    # Synchronized cloning: d attempts launched together at dispatch, on
    # distinct pods, first completion wins. 1 = off. ``clone_cost`` prices
    # the d-1 extra dispatches (see clone_cost_for_plane).
    clone_factor: int = 1
    clone_cost: Optional[CloneCostModel] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.hedge_delay is not None and self.hedge_delay <= 0:
            raise ValueError("hedge_delay must be positive")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be within [0, 1]")
        if self.clone_factor < 1:
            raise ValueError("clone_factor must be >= 1")

    def enabled(self) -> bool:
        return (
            self.timeout is not None
            or self.retries > 0
            or self.hedge_delay is not None
            or self.breaker_threshold > 0
            or self.clone_factor > 1
        )

    # -- deterministic delays (unit-testable without an Environment) ---------------
    def backoff_delay(self, rng: "RandomStreams", attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered.

        ``delay = min(base * 2**(attempt-1), cap)`` then scaled by a
        uniform factor in ``[1 - jitter, 1 + jitter]`` drawn from the
        ``resilience/backoff`` stream — deterministic per seed.
        """
        delay = min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
        if self.backoff_jitter > 0:
            delay *= rng.uniform(
                BACKOFF_STREAM, 1.0 - self.backoff_jitter, 1.0 + self.backoff_jitter
            )
        return delay

    def hedge_jitter(self, rng: "RandomStreams") -> float:
        """Jittered hedge trigger delay (breaks clone synchronization)."""
        assert self.hedge_delay is not None
        if self.backoff_jitter <= 0:
            return self.hedge_delay
        return self.hedge_delay * rng.uniform(
            HEDGE_STREAM, 1.0 - self.backoff_jitter, 1.0 + self.backoff_jitter
        )


class BreakerPermit:
    """Admission ticket from :meth:`CircuitBreaker.acquire`.

    Carries which trip *generation* admitted the attempt and whether it is
    the half-open probe — so a result reported after the breaker tripped
    (or re-tripped) cannot corrupt the state machine.
    """

    __slots__ = ("generation", "probe")

    def __init__(self, generation: int, probe: bool) -> None:
        self.generation = generation
        self.probe = probe


class CircuitBreaker:
    """Per-function consecutive-failure breaker (closed/open/half-open).

    Hardened half-open semantics: when the cooldown expires, *exactly one*
    probe is admitted no matter how many requests arrive concurrently at
    that instant, and only that probe's report can close or re-open the
    breaker. Results from attempts admitted before the trip carry an older
    generation and are ignored — previously a stale failure cleared the
    probe-in-flight flag (admitting a second probe) and a stale success
    closed the breaker without any probe succeeding.
    """

    def __init__(self, env, threshold: int, reset_after: float) -> None:
        self.env = env
        self.threshold = threshold
        self.reset_after = reset_after
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0
        self.generation = 0
        self.probes_admitted = 0
        self._probe_inflight = False
        # FIFO of permits handed out through the legacy allow() wrapper.
        self._implicit: list[BreakerPermit] = []

    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.env.now - self.opened_at < self.reset_after:
            return "open"
        return "half_open"

    # -- permit API (what the controller uses) --------------------------------
    def acquire(self) -> Optional[BreakerPermit]:
        """Admit one attempt, or return None when the breaker refuses it."""
        if self.threshold <= 0 or self.opened_at is None:
            return BreakerPermit(self.generation, probe=False)
        if self.env.now - self.opened_at < self.reset_after:
            return None
        # half-open: admit exactly one probe until it reports back
        if self._probe_inflight:
            return None
        self._probe_inflight = True
        self.probes_admitted += 1
        return BreakerPermit(self.generation, probe=True)

    def on_success(self, permit: BreakerPermit) -> None:
        if permit.probe:
            self._probe_inflight = False
            self.failures = 0
            self.opened_at = None
            return
        if permit.generation != self.generation:
            return  # stale pre-trip attempt: must not close an open breaker
        self.failures = 0

    def on_failure(self, permit: BreakerPermit) -> None:
        if permit.probe:
            # The probe failed: stay open for a fresh cooldown window.
            self._probe_inflight = False
            self.opened_at = self.env.now
            return
        if permit.generation != self.generation:
            return  # stale pre-trip attempt: the trip already accounted it
        self.failures += 1
        if self.threshold > 0 and self.failures >= self.threshold:
            if self.opened_at is None:
                self.trips += 1
                self.generation += 1
            self.opened_at = self.env.now

    # -- legacy wrappers (sequential call sites and existing tests) ------------
    def allow(self) -> bool:
        permit = self.acquire()
        if permit is None:
            return False
        self._implicit.append(permit)
        return True

    def record_success(self) -> None:
        self.on_success(self._pop_implicit())

    def record_failure(self) -> None:
        self.on_failure(self._pop_implicit())

    def _pop_implicit(self) -> BreakerPermit:
        if self._implicit:
            return self._implicit.pop(0)
        return BreakerPermit(self.generation, probe=False)


class _Attempt:
    """Bookkeeping for one delivery attempt (primary, hedge, or clone)."""

    __slots__ = ("process", "request", "error", "done", "kind")

    def __init__(self, request: "Request", kind: str = "primary") -> None:
        self.process = None
        self.request = request
        self.error: Optional[DeliveryError] = None
        self.done = False
        self.kind = kind


class ResilienceController:
    """Drives delivery attempts for one dataplane according to a policy.

    One controller per dataplane; breakers are keyed by the request's entry
    function (the chain head for chained planes, which is where DFR routing
    and the autoscaler already make their decisions). Counters land in the
    node's ``faults/resilience/*`` namespace, and every action is marked on
    the winning request's timeline (``retry:N``, ``hedge:launch``,
    ``hedge:win``, ``breaker:open``).
    """

    def __init__(self, plane: "Dataplane", policy: ResiliencePolicy) -> None:
        self.plane = plane
        self.policy = policy
        self.env = plane.node.env
        self.rng = plane.node.rng
        self.counters = plane.node.counters
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker_for(self, function: str) -> CircuitBreaker:
        breaker = self._breakers.get(function)
        if breaker is None:
            breaker = CircuitBreaker(
                self.env, self.policy.breaker_threshold, self.policy.breaker_reset
            )
            self._breakers[function] = breaker
        return breaker

    def breaker_trips(self) -> int:
        return sum(breaker.trips for breaker in self._breakers.values())

    # -- the main engine -----------------------------------------------------------
    def execute(self, request: "Request"):
        """Deliver ``request`` under the policy (simulation generator).

        On success the original ``request`` carries the winning attempt's
        completion state. On exhaustion it is marked failed with the last
        :class:`DeliveryError` stored on ``request.error``.
        """
        policy = self.policy
        entry = request.request_class.sequence[0]
        breaker = self.breaker_for(entry)
        last_error: Optional[DeliveryError] = None

        for attempt_no in range(policy.retries + 1):
            permit = breaker.acquire()
            if permit is None:
                self.counters.incr("faults/resilience/breaker_fastfail")
                request.mark("breaker:open", self.env.now)
                last_error = DeliveryError("breaker_open", f"breaker open for {entry}")
                break
            if attempt_no > 0:
                self.counters.incr("faults/resilience/retry")
                request.mark(f"retry:{attempt_no}", self.env.now)
                yield self.env.timeout(self.backoff_delay(attempt_no))

            error = yield from self._race(request, attempt_no)
            if error is None:
                breaker.on_success(permit)
                return
            last_error = error
            breaker.on_failure(permit)
            if not error.retryable:
                break

        request.failed = True
        request.error = last_error
        request.mark("failed", self.env.now)
        self.counters.incr("faults/resilience/exhausted")

    def backoff_delay(self, attempt: int) -> float:
        return self.policy.backoff_delay(self.rng, attempt)

    # -- one attempt round: primary + optional hedges, first win cancels the rest --
    def _race(self, request: "Request", attempt_no: int):
        """Run one attempt round. Returns None on success, else the error.

        The primary attempt runs on the original request (keeping its audit
        trace and timeline); hedges run on shadow clones sharing the
        timeline list, so ``hedge:*`` marks land on the visible request.
        """
        policy = self.policy
        cloned = policy.clone_factor > 1
        if cloned:
            # Fresh claimed-pod set per round: the primary and every clone
            # add their chosen pod, so clones land on distinct pods. Shadow
            # requests share the set object (see _spawn_shadow).
            request.claimed_pods = set()
        attempts = [self._spawn(request, attempt_no, hedge=0)]
        for clone_index in range(1, policy.clone_factor):
            self.counters.incr("cloning/clones")
            request.mark(f"clone:launch:{clone_index}", self.env.now)
            attempts.append(
                self._spawn_shadow(
                    request,
                    attempt_no,
                    clone_index,
                    kind="clone",
                    clone_cost=self._clone_cost(request),
                )
            )
        hedges_launched = 0
        deadline = (
            self.env.timeout(policy.timeout) if policy.timeout is not None else None
        )

        while True:
            waits = [attempt.process for attempt in attempts if not attempt.done]
            if not waits:
                break
            if deadline is not None and not deadline.processed:
                waits.append(deadline)
            hedge_timer = None
            if (
                policy.hedge_delay is not None
                and hedges_launched < policy.hedge_max
                and not any(attempt.done for attempt in attempts)
            ):
                hedge_timer = self.env.timeout(policy.hedge_jitter(self.rng))
                waits.append(hedge_timer)

            yield self.env.any_of(waits)

            winner = self._winner(attempts)
            if winner is not None:
                self._cancel_losers(attempts, winner)
                if winner.request is not request:
                    self._adopt(request, winner.request)
                    if winner.kind == "clone":
                        request.mark("clone:win", self.env.now)
                        self.counters.incr("cloning/win_clone")
                    else:
                        request.mark("hedge:win", self.env.now)
                        self.counters.incr("faults/resilience/hedge_win")
                elif cloned:
                    self.counters.incr("cloning/win_primary")
                return None
            if deadline is not None and deadline.processed:
                self._cancel_losers(attempts, None)
                self.counters.incr("faults/resilience/timeout")
                return DeliveryError("timeout", f"attempt round {attempt_no} timed out")
            if all(attempt.done for attempt in attempts):
                break
            if hedge_timer is not None and hedge_timer.processed:
                hedges_launched += 1
                self.counters.incr("faults/resilience/hedge")
                request.mark("hedge:launch", self.env.now)
                attempts.append(
                    self._spawn_shadow(request, attempt_no, hedges_launched)
                )

        # every attempt failed on its own: surface the primary's error
        for attempt in attempts:
            if attempt.error is not None:
                return attempt.error
        return DeliveryError("crash", "all attempts failed without detail")

    def _clone_cost(self, request: "Request") -> float:
        if self.policy.clone_cost is None:
            return 0.0
        return self.policy.clone_cost.cost(len(request.payload))

    def _spawn(
        self,
        request: "Request",
        attempt_no: int,
        hedge: int,
        kind: str = "primary",
        clone_cost: float = 0.0,
    ) -> _Attempt:
        attempt = _Attempt(request, kind=kind)

        def runner():
            try:
                if clone_cost > 0.0:
                    # The clone's marshal/descriptor cost: burns gateway CPU
                    # and delays this clone's dispatch (the primary is free).
                    tag = f"{getattr(self.plane, 'plane', 'plane')}/gw/clone"
                    yield self.plane.node.cpu.execute(
                        clone_cost, tag, op="clone_dispatch"
                    )
                yield from self.plane.deliver_once(request)
            except DeliveryError as error:
                attempt.error = error
            except Interrupt:
                attempt.error = DeliveryError("timeout", "attempt cancelled")
            finally:
                attempt.done = True

        attempt.process = self.env.process(
            runner(),
            name=f"attempt-{request.request_class.name}-a{attempt_no}h{hedge}",
        )
        return attempt

    def _spawn_shadow(
        self,
        request: "Request",
        attempt_no: int,
        hedge: int,
        kind: str = "hedge",
        clone_cost: float = 0.0,
    ) -> _Attempt:
        """Launch a hedge/clone on a shadow: same identity/timeline, no audit
        trace (so kernel-op audits are not double-counted by cloned
        traversals). The shadow shares the claimed-pod set, so synchronized
        clones land on pairwise-distinct pods."""
        from ..dataplane.base import Request

        shadow = Request(
            request_class=request.request_class,
            payload=request.payload,
            created_at=request.created_at,
            trace=None,
        )
        shadow.timeline = request.timeline  # shared: marks land on the original
        shadow.claimed_pods = request.claimed_pods
        return self._spawn(shadow, attempt_no, hedge, kind=kind, clone_cost=clone_cost)

    def _winner(self, attempts: list[_Attempt]) -> Optional[_Attempt]:
        for attempt in attempts:
            if attempt.done and attempt.error is None and not attempt.request.failed:
                return attempt
        return None

    def _cancel_losers(
        self, attempts: list[_Attempt], winner: Optional[_Attempt]
    ) -> None:
        for attempt in attempts:
            if attempt is winner or attempt.done:
                continue
            if attempt.process.is_alive:
                attempt.process.interrupt("cancelled: raced out")
                self.counters.incr("faults/resilience/cancelled")
                if attempt.kind == "clone" or (
                    winner is not None and winner.kind == "clone"
                ):
                    self.counters.incr("cloning/cancelled")

    def _adopt(self, request: "Request", shadow: "Request") -> None:
        """Copy a winning hedge's completion state onto the original."""
        request.response = shadow.response
        request.completed_at = shadow.completed_at
        request.failed = shadow.failed
        request.error = shadow.error
