"""Deterministic fault injection and gateway-side resilience.

Two halves, deliberately decoupled:

* :mod:`repro.faults.injector` breaks things — packet drops/corruption,
  ring overflows and stalls, pod crashes/hangs/slowdowns, eBPF map
  evictions — on a reproducible schedule driven by the node's
  :class:`~repro.simcore.RandomStreams`;
* :mod:`repro.faults.resilience` survives them — per-attempt timeouts,
  capped-backoff retries, hedged requests, and per-function circuit
  breakers applied uniformly by all four dataplane gateways.

Both are inert by default: a node with an unarmed injector and a plane
with the default :class:`ResiliencePolicy` run bit-identically to builds
without this package.
"""

from .injector import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from .plans import NAMED_PLANS, load_plan
from .resilience import (
    BACKOFF_STREAM,
    HEDGE_STREAM,
    MEASURED_OPTIMAL_CLONE_FACTOR,
    BreakerPermit,
    CircuitBreaker,
    CloneCostModel,
    ResilienceController,
    ResiliencePolicy,
    clone_cost_for_plane,
    default_resilience_for_plane,
    optimal_clone_factor,
)

__all__ = [
    "BACKOFF_STREAM",
    "BreakerPermit",
    "CircuitBreaker",
    "CloneCostModel",
    "clone_cost_for_plane",
    "default_resilience_for_plane",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "HEDGE_STREAM",
    "MEASURED_OPTIMAL_CLONE_FACTOR",
    "NAMED_PLANS",
    "optimal_clone_factor",
    "ResilienceController",
    "ResiliencePolicy",
    "load_plan",
]
