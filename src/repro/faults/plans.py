"""Named fault plans for the CLI and the resilience experiment suite.

``--fault-plan`` accepts either one of these names or a path to a JSON file
matching :meth:`FaultPlan.from_dict`. The plans are deliberately small and
legible — each one isolates a failure family the paper's resilience story
must survive.
"""

from __future__ import annotations

from .injector import FaultKind, FaultPlan, FaultSpec


def _loss_crash() -> FaultPlan:
    """The acceptance scenario: 1% packet loss plus a mid-run pod crash."""
    return FaultPlan(
        name="loss-crash",
        faults=[
            FaultSpec(kind=FaultKind.PACKET_DROP, probability=0.01),
            FaultSpec(kind=FaultKind.POD_CRASH, at=2.0, duration=3.0),
        ],
    )


def _lossy() -> FaultPlan:
    """Pure 1% stochastic packet loss on every device and kernel leg."""
    return FaultPlan(
        name="lossy",
        faults=[FaultSpec(kind=FaultKind.PACKET_DROP, probability=0.01)],
    )


def _crashy() -> FaultPlan:
    """Two pod crashes with staggered recovery plus a short hang."""
    return FaultPlan(
        name="crashy",
        faults=[
            FaultSpec(kind=FaultKind.POD_CRASH, at=1.0, duration=2.0),
            FaultSpec(kind=FaultKind.POD_CRASH, at=4.0, duration=2.0),
            FaultSpec(kind=FaultKind.POD_HANG, at=7.0, duration=1.0),
        ],
    )


def _ring_pressure() -> FaultPlan:
    """Shared-memory stress: forced ring overflows plus descriptor stalls."""
    return FaultPlan(
        name="ring-pressure",
        faults=[
            FaultSpec(kind=FaultKind.RING_OVERFLOW, probability=0.02),
            FaultSpec(
                kind=FaultKind.RING_STALL, at=1.0, duration=2.0, magnitude=0.0005
            ),
        ],
    )


def _crash_storm() -> FaultPlan:
    """Permanent crashes in quick succession: the supervisor must restart.

    Every fault has ``duration=None`` — the pod never recovers on its own,
    so without the recovery subsystem the deployment bleeds capacity until
    nothing serves. With a :class:`~repro.recovery.PodSupervisor` attached,
    each crash is detected, orphaned shared-memory buffers are reclaimed,
    and a replacement pod is restarted behind backoff.
    """
    return FaultPlan(
        name="crash-storm",
        faults=[
            FaultSpec(kind=FaultKind.POD_CRASH, at=2.0, duration=None),
            FaultSpec(kind=FaultKind.POD_CRASH, at=5.0, duration=None),
            FaultSpec(kind=FaultKind.POD_CRASH, at=8.0, duration=None),
            FaultSpec(kind=FaultKind.POD_CRASH, at=11.0, duration=None),
        ],
    )


def _map_churn() -> FaultPlan:
    """eBPF map evictions: sockmap entries vanish, SPROXY must re-register."""
    return FaultPlan(
        name="map-churn",
        faults=[
            FaultSpec(kind=FaultKind.MAP_EVICT, at=1.5, magnitude=2),
            FaultSpec(kind=FaultKind.MAP_EVICT, at=3.0, magnitude=2),
        ],
    )


NAMED_PLANS = {
    "loss-crash": _loss_crash,
    "lossy": _lossy,
    "crash-storm": _crash_storm,
    "crashy": _crashy,
    "ring-pressure": _ring_pressure,
    "map-churn": _map_churn,
}


def load_plan(spec: str) -> FaultPlan:
    """Resolve ``--fault-plan``: a registered name, a JSON path, or 'none'."""
    if spec in ("", "none", "empty"):
        return FaultPlan.empty()
    factory = NAMED_PLANS.get(spec)
    if factory is not None:
        return factory()
    return FaultPlan.from_json(spec)
