"""Deterministic fault injection: the plan, the specs, and the injector.

The paper's resilience story (§3.3's in-kubelet health checks, DFR routing
around dead instances, load-proportional recovery) is only believable if the
repro can *break things on purpose*. This module provides that: a
:class:`FaultPlan` of scheduled and stochastic faults, executed by a
per-node :class:`FaultInjector` whose every random decision comes from the
node's named :class:`~repro.simcore.RandomStreams` — so a given seed always
breaks the same packets, crashes the same pods, and evicts the same map
entries, on every run, on every dataplane.

Injection points (each substrate exposes a hook; see DESIGN.md):

* **NIC/veth frames** — ``kernel/netdev.py`` RX/TX consult the injector
  before queueing/forwarding a frame (drop, corrupt-and-discard);
* **kernel legs** — the audited transfer legs in ``dataplane/legs.py``
  consult the injector per traversal, so Knative/gRPC paths (which move
  bytes as costed bundles, not frames) see the same loss process;
* **shared-memory rings** — ``mem/rings.py`` enqueue honors a
  ``fault_hook`` (forced overflow) and the ring transport adds
  injector-driven descriptor stalls;
* **pods** — crash (``pod.fail()``/``recover()``, observed by the
  HealthProber), hang (unresponsive to probes *and* glacially slow), and
  slowdown (service-time multiplier);
* **eBPF maps** — entries evicted from sockmaps/hashmaps at a scheduled
  instant, breaking SPROXY redirection until the runtime re-registers.

The injector is inert (``active == False``) until :meth:`FaultInjector.arm`
is called with a non-empty plan. Every hook's fast path is a single
attribute check and **no RNG stream is touched while inert**, which keeps
fault-free runs bit-identical to a build without this subsystem.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import Deployment, WorkerNode


class FaultKind(enum.Enum):
    PACKET_DROP = "packet_drop"
    PACKET_CORRUPT = "packet_corrupt"
    RING_OVERFLOW = "ring_overflow"
    RING_STALL = "ring_stall"
    POD_CRASH = "pod_crash"
    POD_HANG = "pod_hang"
    POD_SLOW = "pod_slow"
    MAP_EVICT = "map_evict"


#: kinds driven by a per-event probability inside an (optional) window
STOCHASTIC_KINDS = {
    FaultKind.PACKET_DROP,
    FaultKind.PACKET_CORRUPT,
    FaultKind.RING_OVERFLOW,
}
#: kinds executed once at ``at`` against a chosen target
SCHEDULED_KINDS = {
    FaultKind.POD_CRASH,
    FaultKind.POD_HANG,
    FaultKind.POD_SLOW,
    FaultKind.MAP_EVICT,
}


class FaultPlanError(ValueError):
    """An invalid fault plan or fault spec."""


@dataclass
class FaultSpec:
    """One fault. Interpretation depends on ``kind``:

    * stochastic kinds (``packet_drop``, ``packet_corrupt``,
      ``ring_overflow``): every matching event inside ``[at, at+duration)``
      fails with ``probability`` (``duration`` ``None`` = until the end of
      the run);
    * ``ring_stall``: matching dequeues inside the window are delayed by
      ``magnitude`` seconds;
    * ``pod_crash``/``pod_hang``: at ``at``, one pod of ``target`` (RNG
      pick) fails/hangs, recovering after ``duration`` (``None`` = never);
    * ``pod_slow``: the pod's service times are multiplied by ``magnitude``
      for ``duration`` seconds;
    * ``map_evict``: at ``at``, up to ``int(magnitude)`` entries are
      deleted from eBPF maps whose name matches ``target``.

    ``target`` is an ``fnmatch`` pattern against the hook's identity (a
    device/leg tag, ring name, function name, or map name); ``"*"`` matches
    everything.
    """

    kind: FaultKind
    at: float = 0.0
    duration: Optional[float] = None
    probability: float = 0.0
    target: str = "*"
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            self.kind = FaultKind(self.kind)
        if self.at < 0:
            raise FaultPlanError("fault 'at' must be >= 0")
        if self.duration is not None and self.duration < 0:
            raise FaultPlanError("fault duration must be >= 0")
        if self.kind in STOCHASTIC_KINDS and not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError("probability must be within [0, 1]")
        if self.kind is FaultKind.POD_SLOW and self.magnitude < 1.0:
            raise FaultPlanError("pod_slow magnitude must be >= 1")
        if self.kind is FaultKind.MAP_EVICT and self.magnitude < 1:
            raise FaultPlanError("map_evict magnitude must be >= 1")

    def window_contains(self, now: float) -> bool:
        if now < self.at:
            return False
        if self.duration is None:
            return True
        return now < self.at + self.duration

    def as_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "at": self.at,
            "duration": self.duration,
            "probability": self.probability,
            "target": self.target,
            "magnitude": self.magnitude,
        }


@dataclass
class FaultPlan:
    """A named, ordered collection of faults (the ``--fault-plan`` input)."""

    name: str = "empty"
    faults: list[FaultSpec] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls(name="empty", faults=[])

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultPlanError("fault plan must be a dict with a 'faults' list")
        faults = []
        for entry in data["faults"]:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise FaultPlanError(f"invalid fault entry: {entry!r}")
            known = {"kind", "at", "duration", "probability", "target", "magnitude"}
            unknown = set(entry) - known
            if unknown:
                raise FaultPlanError(f"unknown fault fields: {sorted(unknown)}")
            faults.append(FaultSpec(**entry))
        return cls(name=str(data.get("name", "custom")), faults=faults)

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def as_dict(self) -> dict:
        return {"name": self.name, "faults": [fault.as_dict() for fault in self.faults]}


class FaultInjector:
    """Per-node fault executor; owned by :class:`WorkerNode` as ``.faults``.

    Construction is free and inert. :meth:`arm` activates a plan: scheduled
    faults become simulation processes; stochastic faults are evaluated at
    the hook sites via the predicate methods below. Counters land under the
    node's ``faults/injected/*`` namespace.
    """

    def __init__(self, node: "WorkerNode") -> None:
        self.node = node
        self.plan: Optional[FaultPlan] = None
        self.active = False
        self._deployments: dict[str, list] = {}
        # per-kind stochastic specs, split once at arm() for cheap lookups
        self._packet_drop: list[FaultSpec] = []
        self._packet_corrupt: list[FaultSpec] = []
        self._ring_overflow: list[FaultSpec] = []
        self._ring_stall: list[FaultSpec] = []
        self._crash_listeners: list = []

    # -- wiring ----------------------------------------------------------------
    def register_deployment(self, function: str, deployment: "Deployment") -> None:
        """Dataplanes register deployments so pod faults can find targets."""
        self._deployments.setdefault(function, []).append(deployment)

    def add_crash_listener(self, callback) -> None:
        """Call ``callback(pod)`` right after an injected pod crash.

        The pod supervisor subscribes here so crash *detection* is prompt
        (the periodic sweep alone would add up to one check interval of
        latency). Listeners fire only for injected crashes; hangs are left
        to probes/sweeps, exactly as in a real cluster where a kill is
        visible to the kubelet immediately but a livelock is not.
        """
        self._crash_listeners.append(callback)

    def arm(self, plan: Optional[FaultPlan]) -> None:
        """Activate a plan; an empty/None plan leaves the injector inert."""
        if plan is None or not plan.faults:
            return
        self.plan = plan
        self.active = True
        for spec in plan.faults:
            if spec.kind is FaultKind.PACKET_DROP:
                self._packet_drop.append(spec)
            elif spec.kind is FaultKind.PACKET_CORRUPT:
                self._packet_corrupt.append(spec)
            elif spec.kind is FaultKind.RING_OVERFLOW:
                self._ring_overflow.append(spec)
            elif spec.kind is FaultKind.RING_STALL:
                self._ring_stall.append(spec)
            else:
                self.node.env.process(
                    self._run_scheduled(spec), name=f"fault-{spec.kind.value}"
                )

    # -- stochastic predicates (hook-site fast paths) ------------------------------
    def _stochastic_hit(self, specs: list[FaultSpec], identity: str) -> bool:
        now = self.node.env.now
        for spec in specs:
            if not spec.window_contains(now):
                continue
            if not fnmatch(identity, spec.target):
                continue
            if self.node.rng.uniform("faults/stochastic", 0.0, 1.0) < spec.probability:
                return True
        return False

    def drop_packet(self, point: str, identity: str) -> bool:
        """Should this frame/leg traversal be lost? (RX/TX + kernel legs.)"""
        if not self.active or not self._packet_drop:
            return False
        if self._stochastic_hit(self._packet_drop, identity):
            self.node.counters.incr("faults/injected/packet_drop")
            self.node.counters.incr(f"faults/injected/packet_drop/{point}")
            return True
        return False

    def corrupt_packet(self, point: str, identity: str) -> bool:
        """Should this frame be corrupted (and discarded at the checksum)?"""
        if not self.active or not self._packet_corrupt:
            return False
        if self._stochastic_hit(self._packet_corrupt, identity):
            self.node.counters.incr("faults/injected/packet_corrupt")
            return True
        return False

    def ring_overflow(self, ring_name: str) -> bool:
        """Should this enqueue behave as if the ring were full?"""
        if not self.active or not self._ring_overflow:
            return False
        if self._stochastic_hit(self._ring_overflow, ring_name):
            self.node.counters.incr("faults/injected/ring_overflow")
            return True
        return False

    def ring_stall(self, ring_name: str) -> float:
        """Extra seconds a descriptor dequeue on this ring must wait."""
        if not self.active or not self._ring_stall:
            return 0.0
        now = self.node.env.now
        delay = 0.0
        for spec in self._ring_stall:
            if spec.window_contains(now) and fnmatch(ring_name, spec.target):
                delay += spec.magnitude
        if delay > 0:
            self.node.counters.incr("faults/injected/ring_stall")
        return delay

    # -- scheduled faults --------------------------------------------------------
    def _run_scheduled(self, spec: FaultSpec):
        if spec.at > 0:
            yield self.node.env.timeout(spec.at)
        if spec.kind is FaultKind.MAP_EVICT:
            self._evict_map_entries(spec)
            return
        pod = self._pick_pod(spec.target)
        if pod is None:
            self.node.counters.incr("faults/injected/no_target")
            return
        if spec.kind is FaultKind.POD_CRASH:
            self.node.counters.incr("faults/injected/pod_crash")
            pod.fail()
            for listener in self._crash_listeners:
                listener(pod)
            if spec.duration is not None:
                yield self.node.env.timeout(spec.duration)
                pod.recover()
                self.node.counters.incr("faults/injected/pod_recover")
        elif spec.kind is FaultKind.POD_HANG:
            # A hang: the pod looks alive to routing (healthy) but answers
            # neither probes nor requests in useful time — the prober and
            # the resilience timeouts must dig it out.
            self.node.counters.incr("faults/injected/pod_hang")
            pod.responsive = False
            pod.slowdown = max(pod.slowdown, 1e4)
            if spec.duration is not None:
                yield self.node.env.timeout(spec.duration)
                pod.slowdown = 1.0
                pod.recover()
                self.node.counters.incr("faults/injected/pod_recover")
        elif spec.kind is FaultKind.POD_SLOW:
            self.node.counters.incr("faults/injected/pod_slow")
            pod.slowdown = spec.magnitude
            if spec.duration is not None:
                yield self.node.env.timeout(spec.duration)
                pod.slowdown = 1.0
                self.node.counters.incr("faults/injected/pod_recover")

    def _pick_pod(self, target: str):
        candidates = []
        for function, deployments in sorted(self._deployments.items()):
            if not fnmatch(function, target):
                continue
            for deployment in deployments:
                candidates.extend(deployment.servable_pods())
        if not candidates:
            return None
        return self.node.rng.choice("faults/pod", candidates)

    def _evict_map_entries(self, spec: FaultSpec) -> None:
        """Delete up to ``magnitude`` entries from matching eBPF maps.

        Key 0 (the gateway's sockmap slot) is spared so an eviction breaks
        function delivery, not the response path wholesale — matching the
        realistic failure (pod entries churn; the gateway's is pinned).
        """
        from ..kernel.ebpf.maps import HashMap

        evicted = 0
        budget = int(spec.magnitude)
        for bpf_map in self.node.map_registry.maps():
            if evicted >= budget:
                break
            if not isinstance(bpf_map, HashMap):
                continue
            if not fnmatch(bpf_map.name, spec.target):
                continue
            keys = sorted(key for key in bpf_map.keys() if key != 0)
            while keys and evicted < budget:
                victim = self.node.rng.choice("faults/map", keys)
                keys.remove(victim)
                bpf_map.delete(victim)
                evicted += 1
        self.node.counters.incr("faults/injected/map_evict", evicted)
