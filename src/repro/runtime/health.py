"""Health checks and vertical pod scaling (§3.3, §3.7).

SPRIGHT dispenses with the queue proxy's health checking: the kubelet probes
function pods directly over TCP or HTTP (a minimal extra socket in the
function). :class:`HealthProber` runs that loop; pods that miss
``failure_threshold`` consecutive probes are marked unservable (and so drop
out of DFR's load balancing), recovering after ``success_threshold`` passes.

:class:`VerticalPodScaler` implements §3.7's independent per-function
vertical scaling: when a pod's slots stay saturated, its concurrency (stand-
in for added CPU cores) grows, and shrinks again when demand fades.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .kubelet import Deployment
from .pod import Pod, PodPhase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import WorkerNode


class ProbeKind(enum.Enum):
    TCP = "tcp"
    HTTP = "http"


@dataclass
class ProbePolicy:
    kind: ProbeKind = ProbeKind.TCP
    interval: float = 5.0
    timeout: float = 1.0
    failure_threshold: int = 3
    success_threshold: int = 1
    probe_cpu: float = 2e-6  # the "minimal change" the paper mentions


class HealthProber:
    """Kubelet-driven TCP/HTTP pod probing."""

    def __init__(self, node: "WorkerNode", policy: Optional[ProbePolicy] = None) -> None:
        self.node = node
        self.policy = policy or ProbePolicy()
        self._deployments: list[Deployment] = []
        self._failures: dict[int, int] = {}
        self._successes: dict[int, int] = {}
        self._down: set[int] = set()
        self.probes_sent = 0
        self.pods_marked_down = 0
        self.pods_recovered = 0
        self._started = False

    def watch(self, deployment: Deployment) -> None:
        self._deployments.append(deployment)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.node.env.process(self._loop(), name="health-prober")

    def is_down(self, pod: Pod) -> bool:
        """Has this pod tripped the failure threshold and not recovered?

        The supervisor and hedge/LB pickers consult this instead of poking
        the prober's internals.
        """
        return pod.instance_id in self._down

    def probe(self, pod: Pod) -> bool:
        """One probe: does the pod's socket answer?

        The probe reaches the pod's extra listener; a RUNNING pod answers
        unless fault injection (`pod.fail()`) silenced it.
        """
        self.probes_sent += 1
        return pod.phase is PodPhase.RUNNING and pod.responsive

    def _loop(self):
        policy = self.policy
        while True:
            yield self.node.env.timeout(policy.interval)
            for deployment in self._deployments:
                for pod in deployment.pods:
                    if pod.phase is not PodPhase.RUNNING:
                        continue
                    self.node.cpu.execute(policy.probe_cpu, "kubelet/probes")
                    answered = self.probe(pod)
                    key = pod.instance_id
                    if answered:
                        self._failures[key] = 0
                        if not pod.healthy:
                            # Responsive again: count passes toward readmission.
                            self._successes[key] = self._successes.get(key, 0) + 1
                            if self._successes[key] >= policy.success_threshold:
                                pod.healthy = True
                                self._down.discard(key)
                                self.pods_recovered += 1
                        elif key in self._down:
                            self._down.discard(key)
                            self.pods_recovered += 1
                    else:
                        self._successes[key] = 0
                        self._failures[key] = self._failures.get(key, 0) + 1
                        if (
                            self._failures[key] >= policy.failure_threshold
                            and key not in self._down
                        ):
                            self._down.add(key)
                            self.pods_marked_down += 1
                            pod.healthy = False


@dataclass
class VerticalScalePolicy:
    """When and how far to grow/shrink a pod's capacity."""

    tick_interval: float = 5.0
    saturation_fraction: float = 0.9   # in_flight / concurrency to grow
    idle_fraction: float = 0.3         # below this, shrink
    step: int = 8                      # slots added/removed per decision
    min_concurrency: int = 8
    max_concurrency: int = 256


class VerticalPodScaler:
    """Per-pod concurrency (CPU share) scaling, independent per function."""

    def __init__(
        self, node: "WorkerNode", policy: Optional[VerticalScalePolicy] = None
    ) -> None:
        self.node = node
        self.policy = policy or VerticalScalePolicy()
        self._deployments: list[Deployment] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self._capacity: dict[int, int] = {}
        self._started = False

    def watch(self, deployment: Deployment) -> None:
        self._deployments.append(deployment)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.node.env.process(self._loop(), name="vertical-scaler")

    def capacity_of(self, pod: Pod) -> int:
        return self._capacity.get(pod.instance_id, pod.spec.concurrency)

    def _loop(self):
        policy = self.policy
        while True:
            yield self.node.env.timeout(policy.tick_interval)
            for deployment in self._deployments:
                for pod in deployment.servable_pods():
                    capacity = self.capacity_of(pod)
                    load = pod.in_flight / capacity if capacity else 0.0
                    if load >= policy.saturation_fraction:
                        new_capacity = min(
                            policy.max_concurrency, capacity + policy.step
                        )
                        if new_capacity != capacity:
                            pod.resize(new_capacity)
                            self._capacity[pod.instance_id] = new_capacity
                            self.scale_ups += 1
                    elif load <= policy.idle_fraction:
                        new_capacity = max(
                            policy.min_concurrency, capacity - policy.step
                        )
                        if new_capacity != capacity and new_capacity >= pod.in_flight:
                            pod.resize(new_capacity)
                            self._capacity[pod.instance_id] = new_capacity
                            self.scale_downs += 1
