"""Kubelet and per-function deployments (pod sets).

The kubelet is the node-local pod manager: it creates pods (sampling their
cold-start delay), tears them down (with the observed Knative termination
lag when configured), and exposes the pod sets ('deployments') that the
autoscaler resizes and dataplanes route across.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from ..simcore import Event
from .pod import Pod, PodPhase
from .spec import FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import WorkerNode


class Deployment:
    """All pods of one function on one node."""

    def __init__(self, kubelet: "Kubelet", spec: FunctionSpec, cpu_tag: str) -> None:
        self.kubelet = kubelet
        self.spec = spec
        self.cpu_tag = cpu_tag
        self.pods: list[Pod] = []
        self._round_robin = 0
        self._ready_waiters: list[Event] = []
        self.scale_up_events = 0
        self.scale_down_events = 0
        # Requests that arrived with no live pod and had to wait for a
        # scale-from-zero (the Fig 11 path). Mirrored as the
        # ``autoscale/<fn>/cold_starts`` counter so the traffic subsystem's
        # economics accounting reconciles exactly with the control plane.
        self.cold_starts = 0
        # Dataplanes subscribe to wire transports onto new pods (sockets,
        # rings, sockmap entries) and to tear them down on termination.
        self.pod_ready_callbacks: list = []
        self.pod_terminated_callbacks: list = []
        # Requests blocked waiting for a servable pod (cold start queue);
        # the autoscaler must see these or it will reap starting pods.
        self.waiting = 0

    # -- views -------------------------------------------------------------
    @property
    def node(self) -> "WorkerNode":
        return self.kubelet.node

    def servable_pods(self) -> list[Pod]:
        return [pod for pod in self.pods if pod.is_servable]

    def live_pods(self) -> list[Pod]:
        return [
            pod
            for pod in self.pods
            if pod.phase in (PodPhase.PENDING, PodPhase.STARTING, PodPhase.RUNNING)
        ]

    @property
    def scale(self) -> int:
        return len(self.live_pods())

    def total_in_flight(self) -> int:
        return sum(pod.in_flight for pod in self.pods) + self.waiting

    # -- pod selection ---------------------------------------------------------
    def _routable_pods(self) -> list[Pod]:
        """Servable pods, preferring ones that still answer health probes.

        A hung pod (``responsive=False``) stays nominally healthy until a
        prober's failure threshold trips, so it used to remain a routing —
        and hedge — target; hedging against the very pod that is stalling
        the primary defeats the hedge. When any responsive pod exists, only
        responsive pods are candidates; with none, fall back to all servable
        pods rather than refusing outright. Fault-free, every pod is
        responsive and the filter is an exact no-op (byte-identity).
        """
        servable = self.servable_pods()
        responsive = [pod for pod in servable if pod.responsive]
        return responsive if responsive else servable

    @staticmethod
    def _unclaimed(pods: list[Pod], exclude) -> list[Pod]:
        """Drop pods a clone group already claimed (see Request.claimed_pods).

        Falls back to the full candidate list when every pod is claimed —
        an over-wide clone factor degrades to sharing pods, never deadlock.
        With ``exclude`` None or empty this is an exact no-op.
        """
        if not exclude:
            return pods
        unclaimed = [pod for pod in pods if pod.instance_id not in exclude]
        return unclaimed if unclaimed else pods

    def pick_round_robin(self, exclude=None) -> Optional[Pod]:
        servable = self._unclaimed(self._routable_pods(), exclude)
        if not servable:
            return None
        self._round_robin = (self._round_robin + 1) % len(servable)
        return servable[self._round_robin]

    def pick_residual_capacity(self, exclude=None) -> Optional[Pod]:
        """§3.2.3: choose the pod with maximum residual service capacity."""
        servable = self._unclaimed(self._routable_pods(), exclude)
        if not servable:
            return None
        now = self.node.env.now
        return max(servable, key=lambda pod: pod.residual_capacity(now))

    def any_servable_event(self) -> Event:
        """Event that fires when at least one pod is servable (cold start)."""
        event = Event(self.node.env)
        if self.servable_pods():
            event.succeed()
        else:
            self._ready_waiters.append(event)
        return event

    def _notify_ready(self, pod_event: Event) -> None:
        pod = pod_event.value
        for callback in self.pod_ready_callbacks:
            callback(pod)
        waiters, self._ready_waiters = self._ready_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def _notify_terminated(self, pod_event: Event) -> None:
        pod = pod_event.value
        for callback in self.pod_terminated_callbacks:
            callback(pod)

    def note_cold_start(self) -> None:
        """Count one scale-from-zero activation against this function."""
        self.cold_starts += 1
        self.node.obs.registry.counter(
            f"autoscale/{self.spec.name}/cold_starts"
        ).incr()

    # -- scaling ---------------------------------------------------------------------
    def scale_to(self, desired: int) -> None:
        desired = max(0, min(desired, self.spec.max_scale))
        live = self.live_pods()
        if desired > len(live):
            for _ in range(desired - len(live)):
                self._add_pod()
            self.scale_up_events += 1
        elif desired < len(live):
            # Drain newest-first; never kill a pod mid-request if avoidable.
            victims = sorted(live, key=lambda pod: pod.in_flight)[: len(live) - desired]
            for pod in victims:
                pod.terminate()
            self.scale_down_events += 1

    def ensure_scale(self, minimum: int) -> None:
        if self.scale < minimum:
            self.scale_to(minimum)

    def _add_pod(self, startup_delay: Optional[float] = None) -> Pod:
        pod = self.kubelet.create_pod(
            self.spec, self.cpu_tag, startup_delay=startup_delay
        )
        self.pods.append(pod)
        pod.ready.callbacks.append(self._notify_ready)
        pod.terminated.callbacks.append(self._notify_terminated)
        return pod

    def restart_pod(self, startup_delay: Optional[float] = None) -> Pod:
        """Supervisor path: replace a dead pod with a fresh instance.

        The replacement gets a new instance id and re-runs the full ready
        wiring (sockets/rings, sockmap entry, DFR route) through the same
        callbacks as any other pod; ``startup_delay`` lets the caller charge
        an explicit restart cost instead of the kubelet's cold-start sample.
        Restarts are not scale events — the deployment's desired size is
        unchanged.
        """
        return self._add_pod(startup_delay=startup_delay)


class Kubelet:
    """Node-local pod lifecycle manager."""

    def __init__(
        self,
        node: "WorkerNode",
        cold_start_enabled: bool = True,
        termination_lag: Optional[float] = None,
    ) -> None:
        self.node = node
        self.cold_start_enabled = cold_start_enabled
        self.termination_lag = (
            termination_lag
            if termination_lag is not None
            else node.config.termination_lag
        )
        self.deployments: dict[str, Deployment] = {}
        self.pods_created = 0

    def deployment(self, spec: FunctionSpec, cpu_tag: str) -> Deployment:
        """Get or create the deployment for a function."""
        existing = self.deployments.get(cpu_tag)
        if existing is not None:
            return existing
        deployment = Deployment(self, spec, cpu_tag)
        self.deployments[cpu_tag] = deployment
        return deployment

    def create_pod(
        self,
        spec: FunctionSpec,
        cpu_tag: str,
        startup_delay: Optional[float] = None,
    ) -> Pod:
        """Create and start one pod; startup delay sampled when enabled.

        An explicit ``startup_delay`` (the supervisor's modeled restart
        cost) bypasses the sampling entirely, so restart timing comes from
        the caller's own RNG stream and fault-free draw sequences are
        untouched.
        """
        if startup_delay is None:
            startup_delay = 0.0
            if self.cold_start_enabled:
                startup_delay = self.node.rng.lognormal_service(
                    f"startup/{spec.name}",
                    self.node.config.pod_startup_mean,
                    self.node.config.pod_startup_cv,
                )
        pod = Pod(
            self.node,
            spec,
            cpu_tag=cpu_tag,
            startup_delay=startup_delay,
            termination_lag=self.termination_lag,
        )
        pod.start()
        self.pods_created += 1
        return pod

    def health_check(self, pod: Pod) -> bool:
        """TCP/HTTP-probe equivalent (§3.3): is the pod servable?"""
        return pod.is_servable


def desired_scale_for_concurrency(
    total_in_flight: int, target_per_pod: int, minimum: int, maximum: int
) -> int:
    """The KPA sizing rule: ceil(concurrency / target), clamped."""
    if target_per_pod <= 0:
        raise ValueError("target_per_pod must be positive")
    desired = math.ceil(total_in_flight / target_per_pod) if total_in_flight else 0
    return max(minimum, min(desired, maximum))
