"""Orchestration substrate: node, specs, pods, kubelet, autoscaler, placement."""

from .autoscaler import Autoscaler, AutoscalerPolicy
from .cluster import (
    ChainUnit,
    Cluster,
    ClusterError,
    ClusterIngress,
    CROSS_NODE_LATENCY,
    fragmentation_report,
)
from .health import (
    HealthProber,
    ProbeKind,
    ProbePolicy,
    VerticalPodScaler,
    VerticalScalePolicy,
)
from .kubelet import Deployment, Kubelet, desired_scale_for_concurrency
from .metrics_server import MetricsServer, PodMetrics
from .node import WorkerNode
from .pod import Pod, PodPhase
from .scheduler import (
    NodeDescriptor,
    PlacementEngine,
    PlacementError,
    chain_core_request,
    chain_memory_request,
    placement_diagnostics,
)
from .spec import (
    ChainSpec,
    DEFAULT_TOPIC,
    ENTRY,
    FunctionResult,
    FunctionSpec,
    RESPONSE,
    echo_behavior,
    sequential_chain,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "CROSS_NODE_LATENCY",
    "ChainSpec",
    "ChainUnit",
    "Cluster",
    "ClusterError",
    "ClusterIngress",
    "HealthProber",
    "ProbeKind",
    "ProbePolicy",
    "VerticalPodScaler",
    "VerticalScalePolicy",
    "fragmentation_report",
    "DEFAULT_TOPIC",
    "Deployment",
    "ENTRY",
    "FunctionResult",
    "FunctionSpec",
    "Kubelet",
    "MetricsServer",
    "NodeDescriptor",
    "PlacementEngine",
    "PlacementError",
    "Pod",
    "PodMetrics",
    "PodPhase",
    "RESPONSE",
    "WorkerNode",
    "chain_core_request",
    "chain_memory_request",
    "placement_diagnostics",
    "desired_scale_for_concurrency",
    "echo_behavior",
    "sequential_chain",
]
