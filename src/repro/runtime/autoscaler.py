"""KPA-style autoscaler with scale-to-zero, grace period, and pre-warm.

Implements the Knative behaviours Figs 11/12 evaluate:

* concurrency-based sizing (ceil of in-flight over the per-pod target);
* scale-to-zero after a no-traffic grace period (default 30 s, as the
  paper configures);
* pre-warming: scheduled scale-ups ahead of known bursts (the parking
  workload's 20 s lead), trading resource savings for responsiveness.

SPRIGHT runs the same autoscaler but keeps ``min_scale >= 1`` — affordable
because its warm pods cost no CPU when idle (§4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .kubelet import Deployment, desired_scale_for_concurrency
from .metrics_server import MetricsServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import WorkerNode


@dataclass
class AutoscalerPolicy:
    """Per-deployment scaling policy."""

    target_concurrency: int = 32
    scale_to_zero: bool = False
    grace_period: float = 30.0
    tick_interval: float = 2.0
    panic_threshold: float = 2.0  # x target triggers immediate doubling


class Autoscaler:
    """Periodically resizes registered deployments from scraped metrics."""

    def __init__(self, node: "WorkerNode", metrics: MetricsServer) -> None:
        self.node = node
        self.metrics = metrics
        self._entries: list[tuple[Deployment, AutoscalerPolicy]] = []
        self._last_traffic: dict[str, float] = {}
        self.decisions = 0
        self._started = False

    def register(self, deployment: Deployment, policy: AutoscalerPolicy) -> None:
        self._entries.append((deployment, policy))
        deployment.ensure_scale(deployment.spec.min_scale)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.node.env.process(self._loop(), name="autoscaler")

    def prewarm(self, deployment: Deployment, at_time: float, scale: int = 1) -> None:
        """Schedule a scale-up at ``at_time`` (pre-warm before a burst)."""
        self.node.env.process(
            self._prewarm(deployment, at_time, scale),
            name=f"prewarm-{deployment.cpu_tag}",
        )

    def _prewarm(self, deployment: Deployment, at_time: float, scale: int):
        delay = max(0.0, at_time - self.node.env.now)
        if delay:
            yield self.node.env.timeout(delay)
        deployment.ensure_scale(scale)
        # A prewarm also resets the idle clock so the grace period does not
        # immediately reap the fresh pod.
        self._last_traffic[deployment.cpu_tag] = self.node.env.now

    def _loop(self):
        while True:
            yield self.node.env.timeout(self._min_tick())
            now = self.node.env.now
            for deployment, policy in self._entries:
                self._decide(deployment, policy, now)

    def _min_tick(self) -> float:
        if not self._entries:
            return 2.0
        return min(policy.tick_interval for _, policy in self._entries)

    def _decide(self, deployment: Deployment, policy: AutoscalerPolicy, now: float) -> None:
        self.decisions += 1
        in_flight = deployment.total_in_flight()
        reported = self.metrics.concurrency(deployment.spec.name, now)
        load = max(in_flight, reported)
        if load > 0:
            self._last_traffic[deployment.cpu_tag] = now

        minimum = deployment.spec.min_scale
        if policy.scale_to_zero:
            minimum = 0
        desired = desired_scale_for_concurrency(
            load, policy.target_concurrency, minimum, deployment.spec.max_scale
        )
        # Panic mode: badly over target -> scale up immediately and steeply.
        if deployment.scale and load > policy.panic_threshold * (
            policy.target_concurrency * deployment.scale
        ):
            desired = max(desired, min(deployment.scale * 2, deployment.spec.max_scale))

        if desired == 0:
            idle_since = self._last_traffic.get(deployment.cpu_tag)
            if idle_since is None:
                idle_since = 0.0
            if now - idle_since < policy.grace_period:
                # Still inside the grace period: hold at least one pod.
                desired = max(1, deployment.scale) if deployment.scale else 0
            if deployment.scale == 0:
                desired = 0

        if desired != deployment.scale:
            deployment.scale_to(desired)

    def activate(self, deployment: Deployment) -> None:
        """Activator path: a request hit a zero-scaled function (cold start)."""
        if not deployment.live_pods():
            deployment.scale_to(1)
            self._last_traffic[deployment.cpu_tag] = self.node.env.now
