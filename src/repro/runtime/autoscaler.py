"""KPA-style autoscaler with scale-to-zero, grace period, and pre-warm.

Implements the Knative behaviours Figs 11/12 evaluate:

* concurrency-based sizing (ceil of in-flight over the per-pod target);
* scale-to-zero after a no-traffic grace period (default 30 s, as the
  paper configures);
* pre-warming: scheduled scale-ups ahead of known bursts (the parking
  workload's 20 s lead), trading resource savings for responsiveness.

SPRIGHT runs the same autoscaler but keeps ``min_scale >= 1`` — affordable
because its warm pods cost no CPU when idle (§4.2.2).

The traffic subsystem (:mod:`repro.traffic`) plugs in here two ways:

* ``register(..., keepalive=...)`` accepts a
  :class:`repro.traffic.keepalive.KeepAlivePolicy`; the policy then
  replaces the fixed grace period — it decides how long an idle function
  stays warm, whether it is pre-warmed ahead of the predicted next
  arrival, and (pinned policies) the floor the deployment never drops
  below. Registrations without a policy behave exactly as before.
* Every tick the autoscaler integrates idle warm pod-seconds per function
  and publishes them as ``autoscale/<fn>/idle_pod_seconds`` gauges
  (cold starts are counted by :meth:`Deployment.note_cold_start` as
  ``autoscale/<fn>/cold_starts``); the traffic economics accountant
  mirrors exactly these numbers into ``traffic/*``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .kubelet import Deployment, desired_scale_for_concurrency
from .metrics_server import MetricsServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..traffic.keepalive import KeepAlivePolicy, WarmPlan
    from .node import WorkerNode


@dataclass
class AutoscalerPolicy:
    """Per-deployment scaling policy."""

    target_concurrency: int = 32
    scale_to_zero: bool = False
    grace_period: float = 30.0
    tick_interval: float = 2.0
    panic_threshold: float = 2.0  # x target triggers immediate doubling


class Autoscaler:
    """Periodically resizes registered deployments from scraped metrics."""

    def __init__(self, node: "WorkerNode", metrics: MetricsServer) -> None:
        self.node = node
        self.metrics = metrics
        self._entries: list[tuple[Deployment, AutoscalerPolicy, Optional["KeepAlivePolicy"]]] = []
        self._last_traffic: dict[str, float] = {}
        # Idle-capacity ledger: accumulated warm-but-idle pod-seconds per
        # function, integrated on the tick grid and published as gauges.
        self._idle_pod_seconds: dict[str, float] = {}
        self._last_tick: float = 0.0
        # Keep-alive plan cache: (function) -> (idle_since, WarmPlan), so a
        # policy's plan_after is consulted once per idle period, not every
        # tick — keeping the decision log one entry per decision.
        self._plans: dict[str, tuple[float, "WarmPlan"]] = {}
        self.decisions = 0
        self._started = False

    def register(
        self,
        deployment: Deployment,
        policy: AutoscalerPolicy,
        keepalive: Optional["KeepAlivePolicy"] = None,
    ) -> None:
        self._entries.append((deployment, policy, keepalive))
        minimum = deployment.spec.min_scale
        if keepalive is not None:
            minimum = max(minimum, keepalive.min_warm(deployment.spec.name))
        deployment.ensure_scale(minimum)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._last_tick = self.node.env.now
        self.node.env.process(self._loop(), name="autoscaler")

    def prewarm(self, deployment: Deployment, at_time: float, scale: int = 1) -> None:
        """Schedule a scale-up at ``at_time`` (pre-warm before a burst)."""
        self.node.env.process(
            self._prewarm(deployment, at_time, scale),
            name=f"prewarm-{deployment.cpu_tag}",
        )

    def _prewarm(self, deployment: Deployment, at_time: float, scale: int):
        delay = max(0.0, at_time - self.node.env.now)
        if delay:
            yield self.node.env.timeout(delay)
        deployment.ensure_scale(scale)
        # A prewarm also resets the idle clock so the grace period does not
        # immediately reap the fresh pod.
        self._last_traffic[deployment.cpu_tag] = self.node.env.now

    def _loop(self):
        while True:
            yield self.node.env.timeout(self._min_tick())
            now = self.node.env.now
            self._accrue_idle(now)
            for deployment, policy, keepalive in self._entries:
                self._decide(deployment, policy, keepalive, now)

    def _min_tick(self) -> float:
        if not self._entries:
            return 2.0
        return min(policy.tick_interval for _, policy, _ in self._entries)

    # -- idle-capacity accounting ------------------------------------------
    def _accrue_idle(self, now: float) -> None:
        """Integrate warm-but-idle pod-seconds since the previous tick."""
        dt = now - self._last_tick
        self._last_tick = now
        if dt <= 0:
            return
        registry = self.node.obs.registry
        for deployment, _, _ in self._entries:
            name = deployment.spec.name
            idle_pods = sum(
                1 for pod in deployment.servable_pods() if pod.in_flight == 0
            )
            if idle_pods:
                total = self._idle_pod_seconds.get(name, 0.0) + idle_pods * dt
                self._idle_pod_seconds[name] = total
                registry.gauge(f"autoscale/{name}/idle_pod_seconds").set(total)

    def idle_pod_seconds(self, function: str) -> float:
        """Accumulated warm-but-idle pod-seconds for ``function``."""
        return self._idle_pod_seconds.get(function, 0.0)

    # -- sizing -------------------------------------------------------------
    def _decide(
        self,
        deployment: Deployment,
        policy: AutoscalerPolicy,
        keepalive: Optional["KeepAlivePolicy"],
        now: float,
    ) -> None:
        self.decisions += 1
        name = deployment.spec.name
        in_flight = deployment.total_in_flight()
        reported = self.metrics.concurrency(name, now)
        load = max(in_flight, reported)
        if load > 0:
            previous = self._last_traffic.get(deployment.cpu_tag)
            if (
                keepalive is not None
                and previous is not None
                and now - previous > policy.tick_interval
            ):
                # An idle gap just ended: feed it to the policy's
                # per-function history (histogram policies learn from it).
                keepalive.observe_gap(name, now - previous)
            self._last_traffic[deployment.cpu_tag] = now
            self._plans.pop(name, None)

        minimum = deployment.spec.min_scale
        if policy.scale_to_zero:
            minimum = 0
        if keepalive is not None:
            minimum = max(minimum, keepalive.min_warm(name))
        desired = desired_scale_for_concurrency(
            load, policy.target_concurrency, minimum, deployment.spec.max_scale
        )
        # Panic mode: badly over target -> scale up immediately and steeply.
        if deployment.scale and load > policy.panic_threshold * (
            policy.target_concurrency * deployment.scale
        ):
            desired = max(desired, min(deployment.scale * 2, deployment.spec.max_scale))

        if desired == 0:
            idle_since = self._last_traffic.get(deployment.cpu_tag)
            if idle_since is None:
                idle_since = 0.0
            if keepalive is not None:
                desired = self._keepalive_desired(
                    deployment, keepalive, idle_since, now
                )
            else:
                if now - idle_since < policy.grace_period:
                    # Still inside the grace period: hold at least one pod.
                    desired = max(1, deployment.scale) if deployment.scale else 0
                if deployment.scale == 0:
                    desired = 0

        if desired != deployment.scale:
            deployment.scale_to(desired)

    def _keepalive_desired(
        self,
        deployment: Deployment,
        keepalive: "KeepAlivePolicy",
        idle_since: float,
        now: float,
    ) -> int:
        """The policy's verdict for a function with no measured load."""
        name = deployment.spec.name
        cached = self._plans.get(name)
        if cached is None or cached[0] != idle_since:
            plan = keepalive.plan_after(name, idle_since)
            self._plans[name] = (idle_since, plan)
        else:
            plan = cached[1]
        if now <= plan.warm_until:
            # Inside the keep-alive window: hold what exists, never
            # resurrect a pod the policy already reaped.
            return max(1, deployment.scale) if deployment.scale else 0
        if (
            plan.prewarm_at is not None
            and plan.prewarm_until is not None
            and plan.prewarm_at <= now <= plan.prewarm_until
        ):
            # Predicted next-arrival window: make sure a warm pod exists.
            return max(1, deployment.scale)
        return 0

    def activate(self, deployment: Deployment) -> None:
        """Activator path: a request hit a zero-scaled function (cold start)."""
        if not deployment.live_pods():
            deployment.scale_to(1)
            self._last_traffic[deployment.cpu_tag] = self.node.env.now
