"""Function and chain specifications (what a user deploys).

A :class:`ChainSpec` is the unit of deployment in SPRIGHT (§3.8's deployment
constraint: a chain is placed whole onto one node). Routing is the paper's
topic-based publish/subscribe model (§3.2.3): ``(current function, topic)``
keys select the next hop; ``ENTRY``/``RESPONSE`` are reserved endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

ENTRY = "__entry__"
RESPONSE = "__response__"
DEFAULT_TOPIC = ""


@dataclass
class FunctionResult:
    """What one function invocation produced."""

    payload: bytes
    topic: str = DEFAULT_TOPIC
    service_time: Optional[float] = None  # override spec's distribution
    extra_service_time: float = 0.0       # added on top (e.g. DB access)


# A behavior maps the inbound message payload to a result; ``context`` gives
# access to per-function state (e.g. the parking workload's metadata DB).
BehaviorFn = Callable[[bytes, dict], FunctionResult]


def echo_behavior(payload: bytes, context: dict) -> FunctionResult:
    """Default behavior: pass the payload through unchanged."""
    return FunctionResult(payload=payload)


@dataclass
class FunctionSpec:
    """One serverless function: service time model + scaling policy."""

    name: str
    service_time: float = 0.0          # mean CPU seconds per request
    service_time_cv: float = 0.25      # lognormal coefficient of variation
    # Service-time distribution: "lognormal" (default), "exp", or
    # "deterministic" — the latter two are the regimes the PS cloning
    # analysis (repro.cloning) has closed forms for.
    service_dist: str = "lognormal"
    # Service discipline at the pod: "fcfs" (default; work queues on the
    # node's shared cores) or "ps" (processor sharing: concurrent requests
    # split ``ps_capacity`` core-equivalents, stretching dynamically with
    # occupancy — the model request cloning is analyzed under).
    service_discipline: str = "fcfs"
    ps_capacity: float = 1.0
    concurrency: int = 32              # per-pod parallel request limit
    min_scale: int = 1                 # 0 enables scale-to-zero
    max_scale: int = 10
    memory_mb: float = 2.0             # Golang-ish footprint (§3.1: >2 MB)
    behavior: BehaviorFn = echo_behavior
    # Language-runtime overheads per invocation, on top of service_time.
    # The paper ports functions: Go + gRPC servers (Knative/gRPC modes) carry
    # heavy marshalling/scheduler overhead; the C ports for SPRIGHT do not.
    runtime_overhead_path: float = 0.0   # latency+CPU on the critical path
    runtime_overhead_bg: float = 0.0     # CPU off the critical path (GC, ...)
    # λ-NIC SmartNIC offload (PAPERS.md): a handler expressible as
    # match-action stages (kvstore GET, plate lookup) can run entirely at
    # the XDP/NIC layer. The flag states expressibility; eligibility also
    # requires the service time to fit the NIC's offload ceiling (the
    # engine checks both). ``nic_insns`` is the match-action program length
    # the NIC executes per invocation.
    nic_offloadable: bool = False
    nic_insns: int = 96

    def __post_init__(self) -> None:
        if self.service_time < 0:
            raise ValueError("service_time must be non-negative")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")
        if self.min_scale < 0 or self.max_scale < max(1, self.min_scale):
            raise ValueError("invalid scale bounds")
        if self.service_dist not in ("lognormal", "exp", "deterministic"):
            raise ValueError(f"unknown service_dist {self.service_dist!r}")
        if self.service_discipline not in ("fcfs", "ps"):
            raise ValueError(
                f"unknown service_discipline {self.service_discipline!r}"
            )
        if self.ps_capacity <= 0:
            raise ValueError("ps_capacity must be positive")


@dataclass
class RouteKey:
    function: str
    topic: str = DEFAULT_TOPIC


@dataclass
class ChainSpec:
    """A function chain: functions + topic-based routing table."""

    name: str
    functions: list[FunctionSpec]
    # (function name or ENTRY, topic) -> next function name or RESPONSE
    routes: dict[tuple[str, str], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.functions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function names in chain {self.name!r}")
        self._by_name = {spec.name: spec for spec in self.functions}
        for (source, _topic), destination in self.routes.items():
            if source != ENTRY and source not in self._by_name:
                raise ValueError(f"route source {source!r} is not in the chain")
            if destination != RESPONSE and destination not in self._by_name:
                raise ValueError(f"route destination {destination!r} is not in the chain")

    def function(self, name: str) -> FunctionSpec:
        spec = self._by_name.get(name)
        if spec is None:
            raise KeyError(f"no function {name!r} in chain {self.name!r}")
        return spec

    @property
    def function_names(self) -> list[str]:
        return [spec.name for spec in self.functions]

    def next_hop(self, current: str, topic: str = DEFAULT_TOPIC) -> str:
        """Resolve the next function (or RESPONSE) for a topic."""
        destination = self.routes.get((current, topic))
        if destination is None:
            destination = self.routes.get((current, DEFAULT_TOPIC))
        if destination is None:
            raise KeyError(
                f"no route from {current!r} topic {topic!r} in chain {self.name!r}"
            )
        return destination

    @property
    def entry_function(self) -> str:
        head = self.routes.get((ENTRY, DEFAULT_TOPIC))
        if head is None:
            # Any entry route will do if the default topic has none.
            for (source, _topic), destination in self.routes.items():
                if source == ENTRY:
                    return destination
            raise KeyError(f"chain {self.name!r} has no entry route")
        return head


def sequential_chain(
    name: str,
    functions: list[FunctionSpec],
) -> ChainSpec:
    """Convenience: ENTRY -> fn1 -> fn2 -> ... -> RESPONSE."""
    if not functions:
        raise ValueError("a chain needs at least one function")
    routes: dict[tuple[str, str], str] = {(ENTRY, DEFAULT_TOPIC): functions[0].name}
    for previous, current in zip(functions, functions[1:]):
        routes[(previous.name, DEFAULT_TOPIC)] = current.name
    routes[(functions[-1].name, DEFAULT_TOPIC)] = RESPONSE
    return ChainSpec(name=name, functions=functions, routes=routes)
