"""Placement engine with SPRIGHT's chain-affinity constraint (§3.8).

The paper requires every function of a chain to land on the same node so
they can share the chain's memory pool. The scheduler therefore places
*chains*, not functions, using best-fit on remaining core capacity, and
reports the resource fragmentation this causes (also discussed in §3.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .spec import ChainSpec


class PlacementError(Exception):
    """No node can host the chain (or function).

    ``diagnostics`` carries the machine-readable residual report: what was
    requested, and — per candidate node — what was free and by how much the
    request overshot it, so operators (and tests) can see *why* placement
    failed instead of just that it did.
    """

    def __init__(self, message: str, diagnostics: Optional[dict] = None) -> None:
        super().__init__(message)
        self.diagnostics: dict = diagnostics or {}


def placement_diagnostics(
    subject: str,
    cores: float,
    memory_mb: float,
    nodes: Iterable["NodeDescriptor"],
) -> dict:
    """Per-node residuals + shortfalls for a failed placement request."""
    return {
        "subject": subject,
        "cores_requested": cores,
        "memory_mb_requested": memory_mb,
        "candidates": [
            {
                "node": node.name,
                "free_cores": node.free_cores,
                "free_memory_mb": node.free_memory_mb,
                "core_shortfall": max(0.0, cores - node.free_cores),
                "memory_shortfall_mb": max(0.0, memory_mb - node.free_memory_mb),
            }
            for node in nodes
        ],
    }


@dataclass
class NodeDescriptor:
    """Scheduler's view of a node: capacity and current commitments."""

    name: str
    cores: int = 40
    memory_mb: float = 192 * 1024
    committed_cores: float = 0.0
    committed_memory_mb: float = 0.0
    chains: list[str] = field(default_factory=list)

    @property
    def free_cores(self) -> float:
        return self.cores - self.committed_cores

    @property
    def free_memory_mb(self) -> float:
        return self.memory_mb - self.committed_memory_mb


def chain_core_request(chain: ChainSpec, per_function_cores: float = 0.5) -> float:
    """Cores a chain requests: a fixed per-function ask plus the gateway's."""
    return per_function_cores * len(chain.functions) + 0.5


def chain_memory_request(chain: ChainSpec, pool_mb: float = 32.0) -> float:
    return pool_mb + sum(spec.memory_mb for spec in chain.functions)


class PlacementEngine:
    """Best-fit, chain-at-a-time placement."""

    def __init__(self) -> None:
        self.nodes: dict[str, NodeDescriptor] = {}
        self.placements: dict[str, str] = {}  # chain name -> node name

    def add_node(self, descriptor: NodeDescriptor) -> None:
        if descriptor.name in self.nodes:
            raise ValueError(f"node {descriptor.name!r} already registered")
        self.nodes[descriptor.name] = descriptor

    def place_chain(self, chain: ChainSpec, strategy: str = "best_fit") -> str:
        """Pick a node for the whole chain; returns the node name.

        ``best_fit`` packs tightly (keeps big nodes free for big chains);
        ``spread`` places replicas of the same chain across distinct nodes
        (the multi-node chain-unit deployment of §3.8).
        """
        if strategy not in ("best_fit", "spread"):
            raise PlacementError(f"unknown strategy {strategy!r}")
        cores = chain_core_request(chain)
        memory = chain_memory_request(chain)
        candidates = [
            node
            for node in self.nodes.values()
            if node.free_cores >= cores and node.free_memory_mb >= memory
        ]
        if not candidates:
            raise PlacementError(
                f"no node has {cores:.1f} cores + {memory:.0f} MB for chain {chain.name!r}",
                diagnostics=placement_diagnostics(
                    chain.name, cores, memory, self.nodes.values()
                ),
            )
        if strategy == "spread":
            best = min(candidates, key=lambda node: (len(node.chains), -node.free_cores))
        else:
            # Best fit: the node left with the least slack.
            best = min(candidates, key=lambda node: node.free_cores - cores)
        best.committed_cores += cores
        best.committed_memory_mb += memory
        best.chains.append(chain.name)
        self.placements[chain.name] = best.name
        return best.name

    def evict_chain(self, chain: ChainSpec) -> None:
        node_name = self.placements.pop(chain.name, None)
        if node_name is None:
            raise PlacementError(f"chain {chain.name!r} is not placed")
        node = self.nodes[node_name]
        node.committed_cores -= chain_core_request(chain)
        node.committed_memory_mb -= chain_memory_request(chain)
        node.chains.remove(chain.name)

    def fragmentation(self) -> float:
        """Unusable-capacity fraction: free cores stranded on partly-full nodes."""
        if not self.nodes:
            return 0.0
        stranded = sum(
            node.free_cores for node in self.nodes.values() if node.chains
        )
        total = sum(node.cores for node in self.nodes.values())
        if total == 0:
            # Registered nodes may all have zero capacity (drained for
            # maintenance); stranding is then meaningless, not a crash.
            return 0.0
        return stranded / total

    def node_of(self, chain_name: str) -> Optional[str]:
        return self.placements.get(chain_name)
