"""Metrics server: the control-plane sink that autoscalers scrape.

Queue proxies (Knative) and the SPRIGHT gateway's metrics agent (reading the
EPROXY/SPROXY eBPF metric maps) both push :class:`PodMetrics` here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional


@dataclass
class PodMetrics:
    """One scrape sample from one pod/function."""

    function: str
    timestamp: float
    request_rate: float          # req/s over the reporter's window
    concurrency: int             # in-flight requests
    response_time: float = 0.0   # recent mean, seconds


class MetricsServer:
    """Latest-sample store, keyed by function name."""

    def __init__(self, staleness_limit: float = 30.0) -> None:
        self.staleness_limit = staleness_limit
        self._latest: dict[str, PodMetrics] = {}
        self._history: dict[str, list[PodMetrics]] = defaultdict(list)
        self.reports_received = 0

    def report(self, sample: PodMetrics) -> None:
        self.reports_received += 1
        self._latest[sample.function] = sample
        self._history[sample.function].append(sample)

    def latest(self, function: str, now: Optional[float] = None) -> Optional[PodMetrics]:
        sample = self._latest.get(function)
        if sample is None:
            return None
        if now is not None and now - sample.timestamp > self.staleness_limit:
            return None
        return sample

    def request_rate(self, function: str, now: Optional[float] = None) -> float:
        sample = self.latest(function, now)
        return sample.request_rate if sample else 0.0

    def concurrency(self, function: str, now: Optional[float] = None) -> int:
        sample = self.latest(function, now)
        return sample.concurrency if sample else 0

    def history(self, function: str) -> list[PodMetrics]:
        return list(self._history[function])

    def functions(self) -> list[str]:
        return sorted(self._latest)
