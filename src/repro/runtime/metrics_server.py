"""Metrics server: the control-plane sink that autoscalers scrape.

Queue proxies (Knative) and the SPRIGHT gateway's metrics agent (reading the
EPROXY/SPROXY eBPF metric maps) both push :class:`PodMetrics` here.

With a :class:`repro.obs.MetricsRegistry` attached, the autoscaling signals
live as named gauges (``autoscale/<fn>/request_rate`` etc.) in the unified
observability registry — one source of truth that also renders through the
OpenMetrics exporter. Without one (legacy construction), the server keeps
its private latest-sample dict; both modes answer every query identically.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional


@dataclass
class PodMetrics:
    """One scrape sample from one pod/function."""

    function: str
    timestamp: float
    request_rate: float          # req/s over the reporter's window
    concurrency: int             # in-flight requests
    response_time: float = 0.0   # recent mean, seconds


class MetricsServer:
    """Latest-sample store, keyed by function name.

    ``registry``: an optional :class:`repro.obs.MetricsRegistry`; when given,
    the latest sample per function is stored as ``autoscale/*`` gauges there
    instead of a private dict (the fallback shim for legacy callers).
    """

    def __init__(
        self, staleness_limit: float = 30.0, registry: Optional[object] = None
    ) -> None:
        self.staleness_limit = staleness_limit
        self.registry = registry
        self._latest: dict[str, PodMetrics] = {}
        self._seen: set[str] = set()
        self._history: dict[str, list[PodMetrics]] = defaultdict(list)
        self.reports_received = 0

    def report(self, sample: PodMetrics) -> None:
        self.reports_received += 1
        if self.registry is not None:
            prefix = f"autoscale/{sample.function}"
            self.registry.gauge(f"{prefix}/request_rate").set(sample.request_rate)
            self.registry.gauge(f"{prefix}/concurrency").set(sample.concurrency)
            self.registry.gauge(f"{prefix}/response_time").set(sample.response_time)
            self.registry.gauge(f"{prefix}/timestamp").set(sample.timestamp)
            self._seen.add(sample.function)
        else:
            self._latest[sample.function] = sample
        self._history[sample.function].append(sample)

    def latest(self, function: str, now: Optional[float] = None) -> Optional[PodMetrics]:
        if self.registry is not None:
            if function not in self._seen:
                return None
            prefix = f"autoscale/{function}"
            sample = PodMetrics(
                function=function,
                timestamp=self.registry.gauge(f"{prefix}/timestamp").value,
                request_rate=self.registry.gauge(f"{prefix}/request_rate").value,
                concurrency=int(self.registry.gauge(f"{prefix}/concurrency").value),
                response_time=self.registry.gauge(f"{prefix}/response_time").value,
            )
        else:
            sample = self._latest.get(function)
            if sample is None:
                return None
        if now is not None and now - sample.timestamp > self.staleness_limit:
            return None
        return sample

    def request_rate(self, function: str, now: Optional[float] = None) -> float:
        sample = self.latest(function, now)
        return sample.request_rate if sample else 0.0

    def concurrency(self, function: str, now: Optional[float] = None) -> int:
        sample = self.latest(function, now)
        return sample.concurrency if sample else 0

    def snapshot(self, now: Optional[float] = None) -> dict:
        """Autoscaling state as one JSON-ready dict (the live-dashboard and
        experiment-report view): the latest sample per function, with each
        sample's staleness judged against ``now`` when given.

        Unlike :meth:`latest`, stale functions are still listed — marked
        ``stale`` — so a dashboard shows a scraper that went quiet instead
        of silently dropping the row.
        """
        rows = []
        for function in self.functions():
            sample = self.latest(function)  # no staleness cut here
            if sample is None:  # pragma: no cover - functions() implies a sample
                continue
            rows.append(
                {
                    "function": function,
                    "timestamp": sample.timestamp,
                    "request_rate": sample.request_rate,
                    "concurrency": sample.concurrency,
                    "response_time": sample.response_time,
                    "stale": (
                        now is not None
                        and now - sample.timestamp > self.staleness_limit
                    ),
                }
            )
        return {
            "schema": "spright.autoscale/1",
            "reports_received": self.reports_received,
            "functions": rows,
        }

    def history(self, function: str) -> list[PodMetrics]:
        return list(self._history[function])

    def functions(self) -> list[str]:
        if self.registry is not None:
            return sorted(self._seen)
        return sorted(self._latest)
