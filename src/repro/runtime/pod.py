"""Pods: running function instances with lifecycle and concurrency limits.

Captures the pieces of pod behaviour the paper's experiments hinge on:

* **cold start** — a started pod is not servable for a startup delay
  (seconds), during which it burns CPU on image/container init (Fig 12's
  pre-warm spikes);
* **concurrency limit** — at most N requests in parallel per pod (the
  testbed configures 32); excess requests queue;
* **sluggish termination** — Knative pods linger in 'terminating' for tens
  of seconds while still holding CPU (Fig 12's 80 s drain).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from ..simcore import DeliveryError, Event, Interrupt, PsServer, Resource
from ..stats import SlidingWindowRate
from .spec import FunctionResult, FunctionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import WorkerNode


class PodPhase(enum.Enum):
    PENDING = "pending"
    STARTING = "starting"
    RUNNING = "running"
    TERMINATING = "terminating"
    TERMINATED = "terminated"


class Pod:
    """One instance of a function, schedulable and servable."""

    def __init__(
        self,
        node: "WorkerNode",
        spec: FunctionSpec,
        cpu_tag: str,
        startup_delay: float = 0.0,
        startup_cpu_fraction: float = 0.8,
        termination_lag: float = 0.0,
        termination_cpu_fraction: float = 0.15,
    ) -> None:
        self.node = node
        self.spec = spec
        self.cpu_tag = cpu_tag
        # Node-scoped so ids are reproducible regardless of what other
        # simulations ran earlier in the interpreter (satellite of ISSUE 2).
        self.instance_id = node.next_instance_id()
        self.phase = PodPhase.PENDING
        self.startup_delay = startup_delay
        self.startup_cpu_fraction = startup_cpu_fraction
        self.termination_lag = termination_lag
        self.termination_cpu_fraction = termination_cpu_fraction

        self.ready: Event = Event(node.env)
        self.terminated: Event = Event(node.env)
        self._terminate_requested = False
        self.healthy = True      # serving flag (probes / fault injection)
        self.responsive = True   # does the pod answer probes at all
        self.slowdown = 1.0      # service-time multiplier (fault injection)
        self._slots = Resource(node.env, capacity=spec.concurrency)
        # Processor-sharing pods own a virtual-time PS queue instead of
        # submitting to the calendar-queue CpuSet; busy time still lands in
        # the node ledger so CPU% tables include them. FCFS pods (the
        # default) never construct one — byte-identical to before.
        self._ps: Optional[PsServer] = None
        if spec.service_discipline == "ps":
            self._ps = PsServer(
                node.env, node.cpu.accounting, capacity=spec.ps_capacity
            )
        self.in_flight = 0
        self.served = 0
        self.rate_window = SlidingWindowRate(window=5.0)
        self.context: dict = {}  # behavior-visible per-pod state

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> Event:
        """Begin startup; returns the readiness event."""
        if self.phase is not PodPhase.PENDING:
            raise RuntimeError(f"pod {self.instance_id} already started")
        self.phase = PodPhase.STARTING
        self.node.env.process(self._startup(), name=f"startup-{self.cpu_tag}")
        return self.ready

    def _startup(self):
        if self.startup_delay > 0:
            # Container creation burns CPU while the pod is useless.
            self.node.cpu.execute(
                self.startup_delay * self.startup_cpu_fraction,
                self.cpu_tag,
                op="startup",
            )
            yield self.node.env.timeout(self.startup_delay)
        self.phase = PodPhase.RUNNING
        self.ready.succeed(self)

    def terminate(self) -> Event:
        """Begin (possibly slow) termination; returns the terminated event.

        A pod killed mid-startup finishes starting first (as Kubernetes pods
        in ContainerCreating do) and is then torn down; double terminates
        are idempotent.
        """
        if self._terminate_requested:
            return self.terminated
        self._terminate_requested = True
        self.node.env.process(self._teardown(), name=f"teardown-{self.cpu_tag}")
        return self.terminated

    def _teardown(self):
        if self.phase in (PodPhase.PENDING, PodPhase.STARTING):
            yield self.ready
        self.phase = PodPhase.TERMINATING
        if self.termination_lag > 0:
            # The 'terminating-but-not-released' waste Fig 12 calls out.
            self.node.cpu.execute(
                self.termination_lag * self.termination_cpu_fraction,
                self.cpu_tag,
                op="teardown",
            )
            yield self.node.env.timeout(self.termination_lag)
        self.phase = PodPhase.TERMINATED
        self.terminated.succeed(self)

    @property
    def is_servable(self) -> bool:
        return self.phase is PodPhase.RUNNING and self.healthy

    def fail(self) -> None:
        """Fault injection: the pod crashes — refuses traffic and probes."""
        self.healthy = False
        self.responsive = False

    def recover(self) -> None:
        """The fault clears; the pod serves and answers probes again."""
        self.healthy = True
        self.responsive = True

    def resize(self, concurrency: int) -> None:
        """Vertical scaling (§3.7): change the pod's parallel-request slots."""
        self._slots.set_capacity(concurrency)

    # -- serving ------------------------------------------------------------------
    def serve(self, payload: bytes, stream_name: Optional[str] = None):
        """Process one request (generator). Returns a FunctionResult.

        Waits for a concurrency slot, charges the sampled service time to the
        pod's CPU tag, and runs the user behavior on the payload.
        """
        if self.phase is PodPhase.TERMINATED:
            # A dead instance behaves like a connection reset, not a
            # programming error: the supervisor may have torn the pod down
            # while this request's descriptor was still in flight.
            raise DeliveryError(
                "crash",
                f"pod {self.cpu_tag}#{self.instance_id} is terminated",
            )
        if self.phase not in (PodPhase.RUNNING, PodPhase.TERMINATING):
            raise RuntimeError(
                f"pod {self.cpu_tag}#{self.instance_id} is {self.phase.value}, not servable"
            )
        request = self._slots.request()
        try:
            yield request
        except Interrupt:
            # Cancelled (timed out / raced out) while queued for a slot:
            # withdraw the claim so pod concurrency capacity is not leaked.
            self._slots.release(request)
            raise
        if not self.healthy and not self.responsive:
            # Fail fast: the pod crashed while this request sat in the
            # concurrency queue. Without this check the dead pod kept its
            # slot *and* burned the full service time below before raising,
            # so a crash left the pod consuming its CPU reservation and
            # restart accounting double-counted the lost work.
            self._slots.release(request)
            raise DeliveryError(
                "crash",
                f"pod {self.cpu_tag}#{self.instance_id} crashed before serving",
            )
        self.in_flight += 1
        self.rate_window.observe(self.node.env.now)
        try:
            result = self.spec.behavior(payload, self.context)
            service_time = (
                result.service_time
                if result.service_time is not None
                else self._sample_service_time(stream_name)
            )
            service_time += self.spec.runtime_overhead_path + result.extra_service_time
            if self.slowdown != 1.0:
                service_time *= self.slowdown
            if service_time > 0:
                if self._ps is not None:
                    job = self._ps.submit(service_time, self.cpu_tag)
                    try:
                        yield job.done
                    except Interrupt:
                        # Cancelled mid-service (raced out by a clone or
                        # timed out): leave the PS queue immediately so the
                        # freed share goes back to the surviving jobs.
                        self._ps.cancel(job)
                        raise
                else:
                    yield self.node.cpu.execute(
                        service_time, self.cpu_tag, op="service"
                    )
            if not self.healthy and not self.responsive:
                # The pod crashed while this request was in flight; the
                # work is lost and the caller sees a connection reset.
                raise DeliveryError(
                    "crash", f"pod {self.cpu_tag}#{self.instance_id} crashed mid-request"
                )
            if self.spec.runtime_overhead_bg > 0:
                self.node.cpu.execute(
                    self.spec.runtime_overhead_bg, self.cpu_tag, op="service_bg"
                )
            self.served += 1
            return result
        finally:
            self.in_flight -= 1
            self._slots.release(request)

    def _sample_service_time(self, stream_name: Optional[str]) -> float:
        if self.spec.service_time <= 0:
            return 0.0
        stream = stream_name or f"service/{self.spec.name}"
        dist = self.spec.service_dist
        if dist == "exp":
            return self.node.rng.exponential(stream, self.spec.service_time)
        if dist == "deterministic":
            return self.spec.service_time
        return self.node.rng.lognormal_service(
            stream, self.spec.service_time, self.spec.service_time_cv
        )

    # -- load-balancing inputs (§3.2.3 footnote 4) -----------------------------------
    def max_capacity(self) -> float:
        """MC_i: max request rate the pod can serve."""
        if self.spec.service_time <= 0:
            return float("inf")
        return self.spec.concurrency / self.spec.service_time

    def residual_capacity(self, now: float) -> float:
        """RC_i,t = MC_i - r_i,t."""
        capacity = self.max_capacity()
        if capacity == float("inf"):
            # Tie-break by instantaneous load for zero-cost functions.
            return float("inf") if self.in_flight == 0 else 1e12 / (1 + self.in_flight)
        return capacity - self.rate_window.rate(now)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Pod {self.cpu_tag}#{self.instance_id} {self.phase.value}>"
