"""Multi-node clusters: chain units per node + cluster-level load balancing.

§3.8: "scaling SPRIGHT across multiple nodes requires all the functions of a
chain to be deployed on each node ... we need to load balance between
different function chain units in a multi-node deployment." A
:class:`Cluster` co-simulates several worker nodes on one clock, deploys one
complete *chain unit* (gateway + pool + functions) per node through the
placement engine, and fronts them with a cluster ingress that balances
requests across units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..simcore import Environment
from .node import WorkerNode
from .scheduler import NodeDescriptor, PlacementEngine
from .spec import ChainSpec

# Cross-node request forwarding: NIC-to-NIC over the 10 GbE fabric.
CROSS_NODE_LATENCY = 30e-6


class ClusterError(Exception):
    """Deployment/misrouting errors at cluster scope."""


class Cluster:
    """Several worker nodes sharing one simulated clock."""

    def __init__(self, node_count: int = 2, config_factory: Optional[Callable] = None) -> None:
        if node_count <= 0:
            raise ClusterError("need at least one node")
        self.env = Environment()
        self.nodes: list[WorkerNode] = []
        self.placement = PlacementEngine()
        for index in range(node_count):
            config = config_factory() if config_factory else None
            node = WorkerNode(config=config, env=self.env, name=f"worker-{index + 1}")
            self.nodes.append(node)
            self.placement.add_node(
                NodeDescriptor(name=node.name, cores=node.cpu.total_cores)
            )

    def node(self, name: str) -> WorkerNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ClusterError(f"no node named {name!r}")

    def run(self, until: float) -> None:
        self.env.run(until=until)


@dataclass
class ChainUnit:
    """One complete deployment of a chain on one node."""

    node: WorkerNode
    plane: object  # a deployed Dataplane
    served: int = 0


class ClusterIngress:
    """Cluster-wide ingress balancing requests across chain units.

    Policies: ``round_robin`` (Knative-ish) or ``least_loaded`` (by in-flight
    requests at the unit), both with the cross-node forwarding penalty when
    a request lands on a non-local unit.
    """

    def __init__(self, cluster: Cluster, policy: str = "least_loaded") -> None:
        if policy not in ("round_robin", "least_loaded"):
            raise ClusterError(f"unknown policy {policy!r}")
        self.cluster = cluster
        self.policy = policy
        self.units: list[ChainUnit] = []
        self._round_robin = 0
        self.in_flight: dict[int, int] = {}
        self.admission = None  # Optional[repro.recovery.AdmissionController]

    def use_admission(self, policy) -> None:
        """Attach cluster-wide admission control in front of unit routing.

        Same contract as :meth:`repro.dataplane.Dataplane.use_admission`: an
        inert policy attaches nothing, and shed requests never reach a unit.
        """
        from ..recovery import AdmissionController

        if policy.enabled():
            self.admission = AdmissionController(
                self.cluster.env,
                policy,
                counter=self.cluster.nodes[0].counters,
                scope="cluster",
            )

    def deploy_chain_units(
        self,
        chain: ChainSpec,
        plane_factory: Callable[[WorkerNode], object],
        replicas: Optional[int] = None,
    ) -> list[ChainUnit]:
        """Place one chain unit per selected node, whole-chain at a time."""
        replicas = replicas if replicas is not None else len(self.cluster.nodes)
        if replicas > len(self.cluster.nodes):
            raise ClusterError(
                f"{replicas} replicas requested but only "
                f"{len(self.cluster.nodes)} nodes exist"
            )
        for replica in range(replicas):
            # Chain-granularity placement (§3.8's deployment constraint).
            unit_chain = ChainSpec(
                name=f"{chain.name}-u{replica}",
                functions=chain.functions,
                routes=chain.routes,
            )
            node_name = self.cluster.placement.place_chain(unit_chain, strategy="spread")
            node = self.cluster.node(node_name)
            plane = plane_factory(node)
            plane.deploy()
            unit = ChainUnit(node=node, plane=plane)
            self.units.append(unit)
            self.in_flight[id(unit)] = 0
        return self.units

    @staticmethod
    def unit_servable(unit: ChainUnit) -> bool:
        """A unit can serve only if every function has >= 1 servable pod.

        Pods a :class:`HealthProber` marked unhealthy (or that fault
        injection crashed) drop out of ``servable_pods``; once any function
        of the unit has none, the whole chain unit is unroutable.
        """
        return all(
            deployment.servable_pods()
            for deployment in unit.plane.deployments.values()
        )

    def pick_unit(self) -> ChainUnit:
        if not self.units:
            raise ClusterError("no chain units deployed")
        candidates = [unit for unit in self.units if self.unit_servable(unit)]
        if not candidates:
            # All units down: fall back to all (requests will queue/fail at
            # the unit rather than crashing the ingress).
            candidates = self.units
        if self.policy == "round_robin":
            self._round_robin = (self._round_robin + 1) % len(candidates)
            return candidates[self._round_robin]
        return min(candidates, key=lambda unit: self.in_flight[id(unit)])

    def submit(self, request, source_node: Optional[WorkerNode] = None):
        """Generator: route one request to a unit and run it there."""
        env = self.cluster.env
        if self.admission is not None:
            shed = self.admission.try_admit(request)
            if shed is not None:
                request.failed = True
                request.error = shed
                request.completed_at = env.now
                self.cluster.nodes[0].counters.incr("cluster/shed")
                return request
        try:
            unit = self.pick_unit()
            if source_node is not None and source_node is not unit.node:
                yield env.timeout(CROSS_NODE_LATENCY)
            self.in_flight[id(unit)] += 1
            try:
                yield env.process(unit.plane.submit(request))
            finally:
                self.in_flight[id(unit)] -= 1
                unit.served += 1
            return request
        finally:
            if self.admission is not None:
                self.admission.on_done(request)


def fragmentation_report(cluster: Cluster) -> dict:
    """§3.8's fragmentation concern, quantified."""
    return {
        "fragmentation": cluster.placement.fragmentation(),
        "chains_per_node": {
            descriptor.name: len(descriptor.chains)
            for descriptor in cluster.placement.nodes.values()
        },
    }
