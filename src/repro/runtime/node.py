"""The simulated worker node: one place wiring CPU, kernel, eBPF, memory.

Every experiment builds a :class:`WorkerNode` (the paper's Cloudlab c220g5),
then deploys a dataplane on it. The node owns the singletons: the CPU set,
the eBPF VM + map registry, the device registry, the FIB, the shared-memory
pool registry, and the RNG streams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..faults import FaultInjector
from ..kernel import DeviceRegistry, FibTable, KernelOps, NodeConfig, PhysicalNic
from ..kernel.ebpf import MapRegistry, Vm
from ..mem import PoolRegistry
from ..obs import Observability, default_observe
from ..simcore import CpuSet, Environment, RandomStreams
from ..stats import LatencyRecorder


@dataclass
class NodeClock:
    """ns-resolution clock view for eBPF's ktime helper."""

    env: Environment

    @property
    def now_ns(self) -> int:
        return int(self.env.now * 1e9)


class WorkerNode:
    """A 40-core worker node with a full simulated kernel.

    Pass a shared ``env`` to co-simulate several nodes on one clock (the
    multi-node deployments §3.8 discusses); by default each node owns its
    environment.
    """

    def __init__(
        self,
        config: Optional[NodeConfig] = None,
        env: Optional[Environment] = None,
        name: str = "worker-1",
    ) -> None:
        self.config = config or NodeConfig()
        self.name = name
        self.env = env if env is not None else Environment()
        self.cpu = CpuSet(
            self.env,
            cores=self.config.cores,
            freq_hz=self.config.costs.cpu_freq_hz,
            bucket_width=self.config.cpu_bucket_width,
        )
        self.rng = RandomStreams(self.config.root_seed)
        self.map_registry = MapRegistry()
        self.vm = Vm(self.map_registry)
        self.devices = DeviceRegistry()
        self.fib = FibTable()
        self.nic = PhysicalNic(self.env, self.devices, self.vm)
        self.pools = PoolRegistry()
        self.clock = NodeClock(self.env)
        self.recorder = LatencyRecorder()
        # Observability bundle (repro.obs): the metrics registry is always
        # on and backs node.counters; tracing/profiling follow the process
        # defaults (the CLI's --trace/--profile) unless enabled per node.
        self.obs = Observability(self.env, label=name)
        trace_default, profile_default = default_observe()
        if trace_default:
            self.obs.enable_tracing()
        if profile_default:
            self.obs.enable_profiling(self.cpu.accounting)
        self.counters = self.obs.counters
        self.faults = FaultInjector(self)
        self.devices.faults = self.faults
        # Pod instance ids are node-scoped (not module-global) so a run's
        # ids never depend on how many simulations ran earlier in the
        # process — reproducible in any test order.
        self._instance_ids = itertools.count(1)

    def next_instance_id(self) -> int:
        """Next pod instance id on this node (deterministic per run)."""
        return next(self._instance_ids)

    def ops(self, tag: str) -> KernelOps:
        """Kernel-operation vocabulary charged to ``tag``."""
        return KernelOps(
            self.env, self.cpu, self.config.costs, tag, self.faults, obs=self.obs
        )

    def run(self, until: float) -> None:
        self.env.run(until=until)

    # -- reporting -------------------------------------------------------------
    def cpu_percent(self, tag: str, duration: Optional[float] = None) -> float:
        horizon = duration if duration is not None else self.env.now
        return self.cpu.accounting.mean_percent(tag, horizon)

    def cpu_percent_prefix(self, prefix: str, duration: Optional[float] = None) -> float:
        """Sum of CPU% across all tags starting with ``prefix``."""
        horizon = duration if duration is not None else self.env.now
        return sum(
            self.cpu.accounting.mean_percent(tag, horizon)
            for tag in self.cpu.accounting.tags()
            if tag.startswith(prefix)
        )

    def cpu_series_prefix(self, prefix: str, until: Optional[float] = None):
        """Per-second CPU% summed over matching tags."""
        horizon = until if until is not None else self.env.now
        matching = [
            tag for tag in self.cpu.accounting.tags() if tag.startswith(prefix)
        ]
        if not matching:
            return []
        series_per_tag = [self.cpu.accounting.series(tag, horizon) for tag in matching]
        length = min(len(series) for series in series_per_tag)
        return [
            (
                series_per_tag[0][index][0],
                sum(series[index][1] for series in series_per_tag),
            )
            for index in range(length)
        ]
