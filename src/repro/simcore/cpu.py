"""Multi-core CPU model with per-component busy-time accounting.

Two execution styles, matching the paper's dichotomy:

* **Event-driven** components submit work quanta via :meth:`CpuSet.execute`;
  they consume CPU only while work is queued (load-proportional usage, like
  SPROXY/EPROXY).
* **Polling** components (DPDK poll-mode threads) pin a whole core via
  :meth:`CpuSet.dedicate`; the core is 100% busy from acquisition to release
  regardless of traffic (like D-SPRIGHT's RTE ring consumers).

Busy time is tagged with a component label so experiments can report CPU%
broken down by gateway / functions / queue proxies, as Figs 5, 10, 11, 12 do.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING, Optional

from .events import Event
from .resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class CpuAccounting:
    """Accumulates tagged busy time, bucketed into a time series."""

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self.total_busy: dict[str, float] = defaultdict(float)
        self._buckets: dict[str, dict[int, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        # Optional CPU profiler (repro.obs): observes every charge without
        # altering what is recorded, so profiled CPU% tables stay identical.
        self.profiler = None

    def record(self, tag: str, start: float, duration: float, op=None) -> None:
        """Attribute ``duration`` seconds of busy time starting at ``start``.

        ``op`` names the operation (or carries an OpBundle's per-operation
        breakdown) for the profiler; it never affects the ledger itself.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if duration == 0:
            return
        if self.profiler is not None:
            self.profiler.record(tag, op, duration)
        self.total_busy[tag] += duration
        width = self.bucket_width
        remaining = duration
        cursor = start
        while remaining > 1e-15:
            index = int(cursor / width)
            bucket_end = (index + 1) * width
            slice_len = min(remaining, bucket_end - cursor)
            self._buckets[tag][index] += slice_len
            cursor += slice_len
            remaining -= slice_len

    def usage_percent(self, tag: str, bucket_index: int) -> float:
        """CPU usage (%) of ``tag`` during one bucket (100 == one full core)."""
        return 100.0 * self._buckets[tag].get(bucket_index, 0.0) / self.bucket_width

    def series(self, tag: str, until: float) -> list[tuple[float, float]]:
        """(bucket start time, CPU%) pairs covering [0, until)."""
        buckets = int(math.ceil(until / self.bucket_width))
        return [
            (index * self.bucket_width, self.usage_percent(tag, index))
            for index in range(buckets)
        ]

    def mean_percent(self, tag: str, duration: float) -> float:
        """Average CPU% of ``tag`` over the first ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return 100.0 * self.total_busy.get(tag, 0.0) / duration

    def tags(self) -> list[str]:
        return sorted(self.total_busy)


class _Core:
    """One core as a FCFS calendar queue.

    Instead of a core process pulling work items off a store (four event-loop
    rounds per item), the core tracks when it next becomes free: a submitted
    item starts at ``max(now, next_free)``, its completion event is scheduled
    directly, and its busy interval is recorded immediately. Semantically
    identical FCFS behaviour at a fraction of the event count.
    """

    __slots__ = ("env", "accounting", "index", "next_free", "dedicated_tag")

    def __init__(self, env: "Environment", accounting: CpuAccounting, index: int) -> None:
        self.env = env
        self.accounting = accounting
        self.index = index
        self.next_free = 0.0
        self.dedicated_tag: Optional[str] = None

    @property
    def backlog(self) -> float:
        """Seconds of queued work ahead of a new submission."""
        return max(0.0, self.next_free - self.env.now)

    def submit(self, duration: float, tag: str, done: Event, op=None) -> None:
        now = self.env.now
        start = now if self.next_free < now else self.next_free
        end = start + duration
        self.next_free = end
        self.accounting.record(tag, start, duration, op=op)
        done._ok = True
        done._value = None
        self.env.schedule(done, delay=end - now)


class DedicatedCore:
    """Handle for a core pinned by a polling component."""

    def __init__(self, cpuset: "CpuSet", core: _Core, tag: str) -> None:
        self._cpuset = cpuset
        self._core = core
        self.tag = tag
        self.acquired_at = cpuset.env.now
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Return the core to the shared pool, charging the busy interval."""
        if self._released:
            return
        self._released = True
        now = self._cpuset.env.now
        self._cpuset.accounting.record(
            self.tag, self.acquired_at, now - self.acquired_at, op="poll_dedicated"
        )
        self._core.dedicated_tag = None
        self._cpuset._shared.append(self._core)

    def checkpoint(self) -> None:
        """Flush busy time accumulated so far (for mid-run sampling)."""
        if self._released:
            return
        now = self._cpuset.env.now
        self._cpuset.accounting.record(
            self.tag, self.acquired_at, now - self.acquired_at, op="poll_dedicated"
        )
        self.acquired_at = now


class CpuSet:
    """A set of identical cores, like the paper's 40-core c220g5 node."""

    def __init__(
        self,
        env: "Environment",
        cores: int = 40,
        freq_hz: float = 2.2e9,
        bucket_width: float = 1.0,
        accounting: Optional[CpuAccounting] = None,
    ) -> None:
        """``accounting`` may be shared: pinned per-component core sets report
        into the node-wide ledger so machine totals stay coherent."""
        if cores <= 0:
            raise ValueError("need at least one core")
        self.env = env
        self.freq_hz = freq_hz
        self.accounting = accounting if accounting is not None else CpuAccounting(bucket_width)
        self._cores = [_Core(env, self.accounting, index) for index in range(cores)]
        self._shared = list(self._cores)

    @property
    def total_cores(self) -> int:
        return len(self._cores)

    @property
    def shared_cores(self) -> int:
        return len(self._shared)

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.freq_hz

    def execute(self, duration: float, tag: str, op=None) -> Event:
        """Submit ``duration`` seconds of work; returns its completion event.

        Work goes to the least-backlogged shared core, approximating the
        kernel scheduler spreading runnable threads. ``op`` is an optional
        operation attribution for the CPU profiler (ignored when off).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        done = Event(self.env)
        if duration == 0:
            done.succeed()
            return done
        shared = self._shared
        if not shared:
            raise RuntimeError("all cores are dedicated; no shared core available")
        # Least-loaded dispatch; fast path grabs the first idle core.
        now = self.env.now
        chosen = None
        best = None
        for core in shared:
            free_in = core.next_free - now
            if free_in <= 0:
                chosen = core
                break
            if best is None or free_in < best:
                best = free_in
                chosen = core
        chosen.submit(duration, tag, done, op=op)
        return done

    def execute_cycles(self, cycles: float, tag: str, op=None) -> Event:
        return self.execute(self.cycles_to_seconds(cycles), tag, op=op)

    def dedicate(self, tag: str) -> DedicatedCore:
        """Pin an idle shared core for a poll-mode component."""
        if not self._shared:
            raise RuntimeError("no shared core left to dedicate")
        # Prefer an idle core so we do not strand queued work.
        core = min(self._shared, key=lambda candidate: candidate.backlog)
        self._shared.remove(core)
        core.dedicated_tag = tag
        return DedicatedCore(self, core, tag)

    def utilization(self, until: Optional[float] = None) -> float:
        """Whole-machine utilization in [0, 1] over [0, until)."""
        horizon = self.env.now if until is None else until
        if horizon <= 0:
            return 0.0
        busy = sum(self.accounting.total_busy.values())
        return busy / (horizon * self.total_cores)
