"""From-scratch discrete-event simulation core.

Public surface::

    env = Environment()
    cpu = CpuSet(env, cores=40)

    def worker(env):
        yield env.timeout(1.0)
        yield cpu.execute(0.002, tag="fn")

    env.process(worker(env))
    env.run(until=10.0)
"""

from .environment import Environment, NORMAL, URGENT
from .errors import (
    DeliveryError,
    EmptySchedule,
    Interrupt,
    SimulationError,
    StopSimulation,
)
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Process
from .resources import (
    PriorityItem,
    PriorityStore,
    Resource,
    ResourceRequest,
    Store,
    StoreGet,
    StorePut,
)
from .cpu import CpuAccounting, CpuSet, DedicatedCore
from .ps import PsJob, PsServer
from .rng import RandomStreams, derive_stream_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "CpuAccounting",
    "CpuSet",
    "DedicatedCore",
    "DeliveryError",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "PsJob",
    "PsServer",
    "RandomStreams",
    "Resource",
    "ResourceRequest",
    "SimulationError",
    "StopSimulation",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "URGENT",
    "derive_stream_seed",
]
