"""Event primitives for the discrete-event engine.

The design follows the classic generator-based DES model (as popularized by
SimPy, reimplemented here from scratch): a process is a generator that yields
events; the environment resumes the generator when the yielded event fires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

PENDING = object()  # sentinel: event value not yet decided


class Event:
    """An event that may succeed (carry a value) or fail (carry an error).

    Callbacks are invoked, in registration order, when the environment
    processes the event. Processes waiting on the event are resumed through
    such callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: object = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and has been scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> object:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering -------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Set the event's value and schedule it for processing."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fail the event with ``exception`` and schedule it."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy outcome of ``event`` onto this event (chaining helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)  # type: ignore[arg-type]

    # -- composition --------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class ConditionValue:
    """Result of a condition event: maps fired events to their values."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> object:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def todict(self) -> dict[Event, object]:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConditionValue({self.events!r})"


class Condition(Event):
    """Waits for a boolean combination of events (all-of / any-of)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Immediately check already-processed events; subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed(ConditionValue())

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event.triggered and event.ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)  # type: ignore[arg-type]
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when every given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires when at least one given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
