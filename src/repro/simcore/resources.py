"""Waitable resources: stores (queues) and counted resources.

These are the building blocks for sockets, rings, NIC queues, and CPU run
queues in the kernel substrate. Semantics mirror the classic DES resource
model: ``put``/``get`` return events that a process yields on.
"""

from __future__ import annotations

import heapq
from collections import deque
from math import inf
from typing import TYPE_CHECKING, Callable, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_waiters.append(self)
        store._trigger()


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(
        self, store: "Store", filter: Optional[Callable[[object], bool]] = None
    ) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_waiters.append(self)
        store._trigger()


class Store:
    """A FIFO buffer with (optionally) bounded capacity.

    ``put(item)`` blocks while full; ``get()`` blocks while empty. This is
    the queueing primitive behind socket buffers and proxy queues.
    """

    def __init__(self, env: "Environment", capacity: float = inf) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[object] = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: object) -> StorePut:
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[object], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    def try_put(self, item: object) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self.is_full:
            return False
        self.items.append(item)
        self._trigger()
        return True

    def try_get(self) -> tuple[bool, object]:
        """Non-blocking get; returns (ok, item)."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._trigger()
        return True, item

    # -- internal -----------------------------------------------------------
    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()

    def _do_get(self, event: StoreGet) -> None:
        if event.filter is None:
            if self.items:
                event.succeed(self.items.popleft())
            return
        for index, item in enumerate(self.items):
            if event.filter(item):
                del self.items[index]
                event.succeed(item)
                return

    def _trigger(self) -> None:
        # Alternate matching of put and get waiters until no progress.
        progressed = True
        while progressed:
            progressed = False
            while self._get_waiters:
                get_event = self._get_waiters[0]
                if get_event.triggered:
                    self._get_waiters.popleft()
                    continue
                self._do_get(get_event)
                if not get_event.triggered:
                    break
                self._get_waiters.popleft()
                progressed = True
            while self._put_waiters:
                put_event = self._put_waiters[0]
                if put_event.triggered:
                    self._put_waiters.popleft()
                    continue
                self._do_put(put_event)
                if not put_event.triggered:
                    break
                self._put_waiters.popleft()
                progressed = True


class PriorityItem:
    """Orderable wrapper pairing a priority with an arbitrary item."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: float, item: object) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that releases the lowest-priority-value item first."""

    def try_put(self, item: object) -> bool:
        if self.is_full:
            return False
        heapq.heappush(self.items, item)  # type: ignore[arg-type]
        self._trigger()
        return True

    def __init__(self, env: "Environment", capacity: float = inf) -> None:
        super().__init__(env, capacity)
        self.items: list[object] = []  # heap, not deque

    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            heapq.heappush(self.items, event.item)
            event.succeed()

    def _do_get(self, event: StoreGet) -> None:
        if self.items:
            event.succeed(heapq.heappop(self.items))


class ResourceRequest(Event):
    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._waiters.append(self)
        resource._trigger()

    def release(self) -> None:
        self.resource.release(self)

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Resource:
    """A counted resource (e.g. a pool of worker slots or CPU cores)."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[ResourceRequest] = []
        self._waiters: deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> ResourceRequest:
        return ResourceRequest(self)

    def set_capacity(self, capacity: int) -> None:
        """Resize the resource (vertical scaling); waiters are re-checked."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._trigger()

    def release(self, request: ResourceRequest) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self._waiters:
            # Canceled before being granted.
            self._waiters.remove(request)
        self._trigger()

    def _trigger(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            request = self._waiters.popleft()
            if request.triggered:
                continue
            self.users.append(request)
            request.succeed()
