"""Exception types used by the discrete-event simulation core."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation core."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Environment.run` early."""


class EmptySchedule(SimulationError):
    """Raised when the event queue runs dry before the run-until horizon."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt` so the interrupted process can decide how to
    react (e.g. a pod being torn down versus merely rescheduled).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"
