"""Exception types used by the discrete-event simulation core."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation core."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Environment.run` early."""


class EmptySchedule(SimulationError):
    """Raised when the event queue runs dry before the run-until horizon."""


class DeliveryError(Exception):
    """A request could not be delivered or completed by a dataplane.

    Replaces the old "set ``request.failed`` and hope" sentinel contract:
    every delivery failure carries a ``kind`` so callers (the resilience
    layer, tests, experiment reports) can distinguish a timeout from a
    crash from an overload shed and decide whether retrying can help.

    ``kind`` is an open vocabulary; the values used by the repo are:

    * ``"overload"``      — a proxy queue limit shed the request (503);
    * ``"shed"``          — the admission controller refused the request at
      the front door (never retryable: retrying amplifies the overload);
    * ``"timeout"``       — the per-attempt deadline expired;
    * ``"drop"``          — a packet/frame was lost in the kernel path;
    * ``"corrupt"``       — a frame failed its checksum and was discarded;
    * ``"crash"``         — the serving pod died mid-request;
    * ``"descriptor_drop"`` — a SPRIGHT descriptor could not be delivered
      (sockmap miss, ring overflow, security denial);
    * ``"breaker_open"``  — the circuit breaker failed the request fast.
    """

    def __init__(
        self, kind: str, message: str = "", retryable: bool = True
    ) -> None:
        super().__init__(message or kind)
        self.kind = kind
        self.retryable = retryable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeliveryError(kind={self.kind!r}, retryable={self.retryable})"


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt` so the interrupted process can decide how to
    react (e.g. a pod being torn down versus merely rescheduled).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"
