"""Deterministic, named random streams.

Every stochastic component draws from its own named stream so that adding a
new component never perturbs the draws of existing ones — runs stay
reproducible and comparable across dataplane variants.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_stream_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed for the stream ``name`` under ``root_seed``.

    Public so components that must be *restartable* and *process-portable*
    (the traffic subsystem's arrival sources, the multiprocessing fleet
    runner) can derive the same child seed on any worker without sharing a
    live ``random.Random`` instance.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


_derive_seed = derive_stream_seed


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 2022) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(_derive_seed(self.root_seed, name))
        self._streams[name] = stream
        return stream

    def exponential(self, name: str, mean: float) -> float:
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def lognormal_service(self, name: str, mean: float, cv: float = 0.25) -> float:
        """Lognormal with the given mean and coefficient of variation.

        Service times in real systems are right-skewed; lognormal with a
        modest CV reproduces the tails in the paper's CDFs without exotic
        machinery.
        """
        if mean <= 0:
            raise ValueError("mean must be positive")
        import math

        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return self.stream(name).lognormvariate(mu, math.sqrt(sigma2))

    def choice(self, name: str, population, weights=None):
        if weights is None:
            return self.stream(name).choice(population)
        return self.stream(name).choices(population, weights=weights, k=1)[0]

    def spread(self, name: str, count: int, span: float) -> Iterator[float]:
        """``count`` jittered offsets within [0, span) in sorted order."""
        stream = self.stream(name)
        offsets = sorted(stream.uniform(0.0, span) for _ in range(count))
        return iter(offsets)
