"""Coroutine processes driven by the event loop."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

ProcessGenerator = Generator[Event, object, object]


class Initialize(Event):
    """Immediate event that kick-starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks = [process._resume]
        env.schedule(self, priority=0)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances and is resumed with the
    event's value (or the event's exception is thrown into it). Other
    processes may wait on a Process like any other event, or interrupt it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = ""
    ) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw an :class:`Interrupt` into the process at the next step."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the awaited event and schedule an immediate resume that
        # throws the interrupt.
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    assert isinstance(exc, BaseException)
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as error:
                env._active_process = None
                self._ok = False
                self._value = error
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._generator.throw(error)
                return

            if next_event.callbacks is not None:
                # Event is still pending/triggered: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = None
                return
            # Event was already processed: loop and feed its value directly.
            event = next_event
