"""The simulation environment: clock plus prioritized event queue."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from math import inf
from typing import Optional

from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

# Scheduling priorities: URGENT beats NORMAL at the same timestamp. URGENT is
# used for process initialization and interrupts so they preempt same-time
# timeouts, matching intuitive causality.
URGENT = 0
NORMAL = 1


class Environment:
    """Coordinates processes and events on a simulated clock.

    Time is a float in **seconds**. The environment is single-threaded and
    deterministic: equal-time events are processed in schedule order.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Events processed so far — a free progress/throughput signal for
        #: the bench harness and live observers (int increment, no events).
        self.events_processed = 0
        self._observers: list = []

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Queue ``event`` to be processed after ``delay`` time units."""
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else inf

    # -- passive observers ----------------------------------------------------
    def add_observer(self, callback) -> None:
        """Register ``callback(now)`` to run after every processed event.

        The observer contract is strictly passive: a callback must not
        schedule events, create processes, or draw from any RNG stream —
        it may only *read* simulation state (and ship what it read to
        threads outside the simulation). Under that contract an observed
        run's event sequence, and therefore every table and golden it
        produces, is byte-identical to an unobserved run's.
        """
        if callback not in self._observers:
            self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        if callback in self._observers:
            self._observers.remove(callback)

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("event queue is empty") from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An unhandled failure crashes the simulation, loudly.
            exc = event._value
            assert isinstance(exc, BaseException)
            raise exc

        self.events_processed += 1
        if self._observers:
            for observer in self._observers:
                observer(self._now)

    # -- run loop ---------------------------------------------------------------
    def run(self, until: object = None) -> object:
        """Run until the given time, event, or queue exhaustion.

        ``until`` may be ``None`` (drain the queue), a number (absolute time
        horizon), or an :class:`Event` (run until it has been processed and
        return its value).
        """
        stop_event: Optional[Event] = None
        horizon = inf
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event.value
                stop_event.callbacks.append(self._stop_callback)
            else:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until ({horizon}) must not be before now ({self._now})"
                    )

        try:
            while self._queue and self.peek() <= horizon:
                self.step()
        except StopSimulation as stop:
            finished = stop.args[0]
            assert isinstance(finished, Event)
            if not finished._ok and not finished.defused:
                exc = finished._value
                assert isinstance(exc, BaseException)
                raise exc
            return finished.value

        if stop_event is not None and stop_event.callbacks is not None:
            raise EmptySchedule(
                "run() finished without the awaited event being triggered"
            )
        if horizon is not inf:
            self._now = horizon
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event)
