"""Egalitarian processor-sharing (PS) service for the DES.

The paper's request-cloning analysis ("Modeling of Request Cloning in Cloud
Server Systems using Processor Sharing", PAPERS.md) assumes PS servers: all
jobs in service share the capacity equally, so a job's completion time
stretches and shrinks as occupancy changes. The calendar-queue
:class:`~repro.simcore.cpu.CpuSet` cannot model that — it commits a
completion time at submission — so PS gets its own virtual-time queue.

Mechanics: the server tracks the set of active jobs and the wall time of the
last occupancy change. On every arrival, departure, or cancellation it first
*advances* — debiting ``elapsed * rate`` of remaining work from every active
job and recording the same busy time into the shared
:class:`~repro.simcore.cpu.CpuAccounting` ledger (so CPU% tables include PS
pods) — then re-times the next completion. Re-timing uses a generation
counter: the previously scheduled wake-up is simply ignored when it fires
stale, which is cheaper than unscheduling and keeps the event sequence
deterministic.

Cancellation (`cancel`) removes a job mid-service and instantly returns its
share to the survivors — the property synchronized request cloning relies
on: a cancelled clone must not keep stealing capacity from the winner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cpu import CpuAccounting
    from .environment import Environment

#: Work below this is "done" — absorbs float drift from rate re-timing.
_EPSILON = 1e-12


class PsJob:
    """One job inside a :class:`PsServer`; ``done`` fires on completion."""

    __slots__ = ("work", "remaining", "tag", "done", "submitted_at", "cancelled")

    def __init__(self, env: "Environment", work: float, tag: str) -> None:
        self.work = work
        self.remaining = work
        self.tag = tag
        self.done: Event = Event(env)
        self.submitted_at = env.now
        self.cancelled = False

    @property
    def finished(self) -> bool:
        return self.done.triggered


class PsServer:
    """A processor-sharing server with ``capacity`` core-equivalents.

    With ``n`` active jobs each runs at ``min(per_job_cap, capacity / n)``;
    a lone job is capped at ``per_job_cap`` (default one core) so PS pods
    match FCFS pods when uncontended instead of running ``capacity``-fold
    faster.
    """

    def __init__(
        self,
        env: "Environment",
        accounting: Optional["CpuAccounting"] = None,
        capacity: float = 1.0,
        per_job_cap: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if per_job_cap <= 0:
            raise ValueError("per_job_cap must be positive")
        self.env = env
        self.accounting = accounting
        self.capacity = capacity
        self.per_job_cap = per_job_cap
        self._jobs: list[PsJob] = []
        self._clock = env.now      # wall time of the last advance
        self._generation = 0       # invalidates stale wake-ups
        self.jobs_completed = 0
        self.jobs_cancelled = 0
        self.busy_time = 0.0       # total work actually served

    # -- views ---------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._jobs)

    def rate(self) -> float:
        """Per-job service rate at the current occupancy."""
        if not self._jobs:
            return 0.0
        return min(self.per_job_cap, self.capacity / len(self._jobs))

    # -- the three occupancy-changing operations -------------------------------
    def submit(self, work: float, tag: str) -> PsJob:
        """Add a job of ``work`` seconds; returns it (yield ``job.done``)."""
        if work < 0:
            raise ValueError("work must be non-negative")
        job = PsJob(self.env, work, tag)
        if work <= _EPSILON:
            job.remaining = 0.0
            job.done.succeed(job)
            self.jobs_completed += 1
            return job
        self._advance()
        self._jobs.append(job)
        self._reschedule()
        return job

    def cancel(self, job: PsJob) -> bool:
        """Remove ``job`` mid-service; its share returns to the survivors.

        Returns False when the job already completed (nothing to cancel) —
        the caller then treats the completion as authoritative.
        """
        if job.finished or job.cancelled:
            return False
        self._advance()
        job.cancelled = True
        try:
            self._jobs.remove(job)
        except ValueError:  # pragma: no cover - defensive
            return False
        self.jobs_cancelled += 1
        self._reschedule()
        return True

    def _complete(self) -> None:
        """Finish every job whose remaining work hit zero (in FIFO order)."""
        finished = [job for job in self._jobs if job.remaining <= _EPSILON]
        if not finished:
            return
        for job in finished:
            self._jobs.remove(job)
            job.remaining = 0.0
            job.done.succeed(job)
            self.jobs_completed += 1

    # -- virtual time ---------------------------------------------------------
    def _advance(self) -> None:
        """Debit elapsed work from every active job and charge the ledger."""
        now = self.env.now
        elapsed = now - self._clock
        if elapsed > 0 and self._jobs:
            per_job = elapsed * self.rate()
            for job in self._jobs:
                job.remaining -= per_job
                if self.accounting is not None:
                    self.accounting.record(job.tag, self._clock, per_job, op="service_ps")
                self.busy_time += per_job
        self._clock = now

    def _reschedule(self) -> None:
        """Re-time the next completion after an occupancy change."""
        self._generation += 1
        if not self._jobs:
            return
        rate = self.rate()
        shortest = min(job.remaining for job in self._jobs)
        delay = max(0.0, shortest) / rate
        generation = self._generation
        wake = self.env.timeout(delay)
        wake.callbacks.append(lambda _event: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # occupancy changed since this wake-up was scheduled
        self._advance()
        self._complete()
        self._reschedule()
