"""Byte-level protocol codecs: HTTP/1.1, gRPC, MQTT v5, CoAP, CloudEvents."""

from .cloudevents import CloudEvent, CloudEventError
from .coap import CoapCode, CoapError, CoapMessage, CoapType
from .grpc_codec import (
    GrpcCall,
    GrpcError,
    ProtoMessage,
    decode_frame,
    decode_varint,
    encode_frame,
    encode_varint,
)
from .http2 import (
    Frame,
    FrameType,
    HpackCodec,
    Http2Error,
    decode_frames,
    decode_grpc_request,
    encode_grpc_request,
)
from .http1 import (
    HttpError,
    HttpRequest,
    HttpResponse,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from .mqtt import (
    ConnackPacket,
    ConnectPacket,
    MqttError,
    PacketType,
    PubackPacket,
    PublishPacket,
    packet_type,
)

__all__ = [
    "CloudEvent",
    "CloudEventError",
    "CoapCode",
    "CoapError",
    "CoapMessage",
    "CoapType",
    "ConnackPacket",
    "ConnectPacket",
    "GrpcCall",
    "GrpcError",
    "Frame",
    "FrameType",
    "HpackCodec",
    "Http2Error",
    "decode_frames",
    "decode_grpc_request",
    "encode_grpc_request",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "MqttError",
    "PacketType",
    "ProtoMessage",
    "PubackPacket",
    "PublishPacket",
    "decode_frame",
    "decode_request",
    "decode_response",
    "decode_varint",
    "encode_frame",
    "encode_request",
    "encode_response",
    "encode_varint",
    "packet_type",
]
