"""HTTP/2 framing and HPACK header compression (RFC 7540 / 7541 subset).

gRPC — the boutique's inter-function protocol — runs over HTTP/2: every call
is a HEADERS frame (HPACK-compressed pseudo-headers) plus DATA frames
carrying the length-prefixed gRPC messages. This module implements the
frame layer and HPACK (static table, dynamic table with eviction,
prefix-coded integers, literal strings; Huffman coding is the spec-optional
part we omit) so the bytes the cost model charges for gRPC mode are genuine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

FRAME_HEADER_LEN = 9
CONNECTION_PREFACE = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"
DEFAULT_MAX_FRAME_SIZE = 16384
DEFAULT_HEADER_TABLE_SIZE = 4096


class Http2Error(Exception):
    """Malformed frames or HPACK blocks."""


class FrameType(enum.IntEnum):
    DATA = 0x0
    HEADERS = 0x1
    RST_STREAM = 0x3
    SETTINGS = 0x4
    PING = 0x6
    GOAWAY = 0x7
    WINDOW_UPDATE = 0x8


class Flags(enum.IntFlag):
    NONE = 0x0
    END_STREAM = 0x1
    END_HEADERS = 0x4
    ACK = 0x1  # for SETTINGS/PING


@dataclass
class Frame:
    """One HTTP/2 frame: 9-byte header + payload."""

    frame_type: FrameType
    flags: int = 0
    stream_id: int = 0
    payload: bytes = b""

    def encode(self) -> bytes:
        if len(self.payload) > 2**24 - 1:
            raise Http2Error("frame payload exceeds 24-bit length")
        if not 0 <= self.stream_id < 2**31:
            raise Http2Error("stream id out of 31-bit range")
        return (
            len(self.payload).to_bytes(3, "big")
            + bytes([self.frame_type, self.flags])
            + self.stream_id.to_bytes(4, "big")
            + self.payload
        )

    @classmethod
    def decode(cls, raw: bytes, offset: int = 0) -> tuple["Frame", int]:
        """Returns (frame, next_offset)."""
        if len(raw) - offset < FRAME_HEADER_LEN:
            raise Http2Error("truncated frame header")
        length = int.from_bytes(raw[offset : offset + 3], "big")
        frame_type = FrameType(raw[offset + 3])
        flags = raw[offset + 4]
        stream_id = int.from_bytes(raw[offset + 5 : offset + 9], "big") & 0x7FFFFFFF
        end = offset + FRAME_HEADER_LEN + length
        if end > len(raw):
            raise Http2Error(f"truncated frame payload (want {length} bytes)")
        return (
            cls(
                frame_type=frame_type,
                flags=flags,
                stream_id=stream_id,
                payload=raw[offset + FRAME_HEADER_LEN : end],
            ),
            end,
        )


def decode_frames(raw: bytes) -> list[Frame]:
    frames = []
    offset = 0
    while offset < len(raw):
        frame, offset = Frame.decode(raw, offset)
        frames.append(frame)
    return frames


# -- HPACK (RFC 7541) --------------------------------------------------------------

# Entries 1..61 of the static table (the ones gRPC actually touches plus
# enough of the rest to be faithful for tests).
STATIC_TABLE: list[tuple[str, str]] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
]


def encode_integer(value: int, prefix_bits: int, first_byte_flags: int = 0) -> bytes:
    """HPACK prefix-coded integer."""
    if value < 0:
        raise Http2Error("negative integer")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([first_byte_flags | value])
    out = bytearray([first_byte_flags | limit])
    value -= limit
    while value >= 128:
        out.append((value % 128) | 0x80)
        value //= 128
    out.append(value)
    return bytes(out)


def decode_integer(raw: bytes, offset: int, prefix_bits: int) -> tuple[int, int]:
    """Returns (value, next_offset)."""
    if offset >= len(raw):
        raise Http2Error("truncated integer")
    limit = (1 << prefix_bits) - 1
    value = raw[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(raw):
            raise Http2Error("truncated integer continuation")
        byte = raw[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 35:
            raise Http2Error("integer overflow")


def _encode_string(text: str) -> bytes:
    data = text.encode("utf-8")
    return encode_integer(len(data), 7) + data  # H bit 0: no Huffman


def _decode_string(raw: bytes, offset: int) -> tuple[str, int]:
    if offset >= len(raw):
        raise Http2Error("truncated string length")
    huffman = bool(raw[offset] & 0x80)
    length, offset = decode_integer(raw, offset, 7)
    if huffman:
        raise Http2Error("Huffman-coded strings are not supported")
    end = offset + length
    if end > len(raw):
        raise Http2Error("truncated string body")
    return raw[offset:end].decode("utf-8"), end


def _entry_size(name: str, value: str) -> int:
    return len(name.encode()) + len(value.encode()) + 32  # RFC 7541 §4.1


class HpackCodec:
    """Encoder/decoder pair sharing the dynamic-table discipline.

    One codec instance models one endpoint's context; use separate
    instances for each direction of a connection.
    """

    def __init__(self, max_table_size: int = DEFAULT_HEADER_TABLE_SIZE) -> None:
        self.max_table_size = max_table_size
        self._dynamic: list[tuple[str, str]] = []  # newest first
        self._dynamic_size = 0

    # -- table management ------------------------------------------------------
    def _add(self, name: str, value: str) -> None:
        size = _entry_size(name, value)
        self._dynamic.insert(0, (name, value))
        self._dynamic_size += size
        while self._dynamic_size > self.max_table_size and self._dynamic:
            old_name, old_value = self._dynamic.pop()
            self._dynamic_size -= _entry_size(old_name, old_value)

    def _lookup_index(self, name: str, value: str) -> tuple[Optional[int], Optional[int]]:
        """(exact-match index, name-only index), 1-based HPACK numbering."""
        exact = None
        name_only = None
        for index, (entry_name, entry_value) in enumerate(STATIC_TABLE, start=1):
            if entry_name == name:
                if entry_value == value:
                    return index, index
                if name_only is None:
                    name_only = index
        base = len(STATIC_TABLE)
        for index, (entry_name, entry_value) in enumerate(self._dynamic, start=1):
            if entry_name == name:
                if entry_value == value:
                    return base + index, base + index
                if name_only is None:
                    name_only = base + index
        return exact, name_only

    def _entry_at(self, index: int) -> tuple[str, str]:
        if index <= 0:
            raise Http2Error("HPACK index 0 is invalid")
        if index <= len(STATIC_TABLE):
            return STATIC_TABLE[index - 1]
        dynamic_index = index - len(STATIC_TABLE) - 1
        if dynamic_index >= len(self._dynamic):
            raise Http2Error(f"HPACK index {index} beyond table")
        return self._dynamic[dynamic_index]

    # -- encode/decode -----------------------------------------------------------
    def encode(self, headers: Iterable[tuple[str, str]]) -> bytes:
        out = bytearray()
        for name, value in headers:
            exact, name_index = self._lookup_index(name, value)
            if exact is not None:
                out += encode_integer(exact, 7, 0x80)  # indexed field
                continue
            if name_index is not None:
                out += encode_integer(name_index, 6, 0x40)  # literal, indexed name
            else:
                out += encode_integer(0, 6, 0x40)
                out += _encode_string(name)
            out += _encode_string(value)
            self._add(name, value)
        return bytes(out)

    def decode(self, raw: bytes) -> list[tuple[str, str]]:
        headers = []
        offset = 0
        while offset < len(raw):
            first = raw[offset]
            if first & 0x80:  # indexed
                index, offset = decode_integer(raw, offset, 7)
                headers.append(self._entry_at(index))
            elif first & 0x40:  # literal with incremental indexing
                index, offset = decode_integer(raw, offset, 6)
                if index:
                    name = self._entry_at(index)[0]
                else:
                    name, offset = _decode_string(raw, offset)
                value, offset = _decode_string(raw, offset)
                headers.append((name, value))
                self._add(name, value)
            elif first & 0x20:  # dynamic table size update
                size, offset = decode_integer(raw, offset, 5)
                self.max_table_size = size
                while self._dynamic_size > size and self._dynamic:
                    name, value = self._dynamic.pop()
                    self._dynamic_size -= _entry_size(name, value)
            else:  # literal without indexing / never indexed (4-bit prefix)
                index, offset = decode_integer(raw, offset, 4)
                if index:
                    name = self._entry_at(index)[0]
                else:
                    name, offset = _decode_string(raw, offset)
                value, offset = _decode_string(raw, offset)
                headers.append((name, value))
        return headers

    @property
    def dynamic_entries(self) -> int:
        return len(self._dynamic)


# -- gRPC over HTTP/2 --------------------------------------------------------------

def grpc_request_headers(path: str, authority: str = "localhost") -> list[tuple[str, str]]:
    return [
        (":method", "POST"),
        (":scheme", "http"),
        (":path", path),
        (":authority", authority),
        ("content-type", "application/grpc"),
        ("te", "trailers"),
    ]


def encode_grpc_request(
    codec: HpackCodec,
    path: str,
    grpc_frame: bytes,
    stream_id: int = 1,
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
) -> bytes:
    """One unary gRPC call as HEADERS + DATA frame(s)."""
    header_block = codec.encode(grpc_request_headers(path))
    frames = [
        Frame(
            FrameType.HEADERS,
            flags=Flags.END_HEADERS,
            stream_id=stream_id,
            payload=header_block,
        )
    ]
    chunks = [
        grpc_frame[start : start + max_frame_size]
        for start in range(0, len(grpc_frame), max_frame_size)
    ] or [b""]
    for position, chunk in enumerate(chunks):
        last = position == len(chunks) - 1
        frames.append(
            Frame(
                FrameType.DATA,
                flags=Flags.END_STREAM if last else 0,
                stream_id=stream_id,
                payload=chunk,
            )
        )
    return b"".join(frame.encode() for frame in frames)


def decode_grpc_request(codec: HpackCodec, raw: bytes) -> tuple[str, bytes]:
    """Reassemble (path, grpc_frame) from a HEADERS + DATA frame stream."""
    path = ""
    body = bytearray()
    for frame in decode_frames(raw):
        if frame.frame_type is FrameType.HEADERS:
            for name, value in codec.decode(frame.payload):
                if name == ":path":
                    path = value
        elif frame.frame_type is FrameType.DATA:
            body += frame.payload
    if not path:
        raise Http2Error("no :path pseudo-header in request")
    return path, bytes(body)
