"""MQTT v5 packet codec (the subset the IoT adapter needs).

CONNECT/CONNACK for the stateful L7 session the SPRIGHT gateway terminates
on behalf of the adapter (§3.6), and PUBLISH/PUBACK for motion-sensor event
delivery. Variable-byte-integer lengths and UTF-8 strings are implemented
per the OASIS spec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MqttError(Exception):
    """Malformed MQTT bytes."""


class PacketType(enum.IntEnum):
    CONNECT = 1
    CONNACK = 2
    PUBLISH = 3
    PUBACK = 4
    SUBSCRIBE = 8
    SUBACK = 9
    PINGREQ = 12
    PINGRESP = 13
    DISCONNECT = 14


def encode_varlen(value: int) -> bytes:
    """MQTT variable byte integer (1-4 bytes)."""
    if not 0 <= value <= 268_435_455:
        raise MqttError(f"length {value} out of range")
    out = bytearray()
    while True:
        byte = value % 128
        value //= 128
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varlen(raw: bytes, offset: int = 0) -> tuple[int, int]:
    multiplier = 1
    value = 0
    position = offset
    for _ in range(4):
        if position >= len(raw):
            raise MqttError("truncated variable byte integer")
        byte = raw[position]
        position += 1
        value += (byte & 0x7F) * multiplier
        if not byte & 0x80:
            return value, position
        multiplier *= 128
    raise MqttError("variable byte integer longer than 4 bytes")


def _encode_string(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise MqttError("string too long")
    return len(data).to_bytes(2, "big") + data


def _decode_string(raw: bytes, offset: int) -> tuple[str, int]:
    if offset + 2 > len(raw):
        raise MqttError("truncated string length")
    length = int.from_bytes(raw[offset : offset + 2], "big")
    end = offset + 2 + length
    if end > len(raw):
        raise MqttError("truncated string body")
    return raw[offset + 2 : end].decode("utf-8"), end


@dataclass
class ConnectPacket:
    client_id: str
    keep_alive: int = 60
    clean_start: bool = True

    def encode(self) -> bytes:
        flags = 0x02 if self.clean_start else 0x00
        variable = (
            _encode_string("MQTT")
            + bytes([5])              # protocol version 5
            + bytes([flags])
            + self.keep_alive.to_bytes(2, "big")
            + b"\x00"                  # empty properties
        )
        payload = _encode_string(self.client_id)
        body = variable + payload
        return bytes([PacketType.CONNECT << 4]) + encode_varlen(len(body)) + body

    @classmethod
    def decode(cls, raw: bytes) -> "ConnectPacket":
        packet_type, body = _split(raw, PacketType.CONNECT)
        name, offset = _decode_string(body, 0)
        if name != "MQTT":
            raise MqttError(f"bad protocol name {name!r}")
        version = body[offset]
        if version != 5:
            raise MqttError(f"unsupported MQTT version {version}")
        flags = body[offset + 1]
        keep_alive = int.from_bytes(body[offset + 2 : offset + 4], "big")
        properties_len, offset = decode_varlen(body, offset + 4)
        offset += properties_len
        client_id, _ = _decode_string(body, offset)
        return cls(
            client_id=client_id,
            keep_alive=keep_alive,
            clean_start=bool(flags & 0x02),
        )


@dataclass
class ConnackPacket:
    reason_code: int = 0
    session_present: bool = False

    def encode(self) -> bytes:
        body = bytes([1 if self.session_present else 0, self.reason_code, 0])
        return bytes([PacketType.CONNACK << 4]) + encode_varlen(len(body)) + body

    @classmethod
    def decode(cls, raw: bytes) -> "ConnackPacket":
        _, body = _split(raw, PacketType.CONNACK)
        if len(body) < 2:
            raise MqttError("CONNACK too short")
        return cls(reason_code=body[1], session_present=bool(body[0] & 0x01))


@dataclass
class PublishPacket:
    topic: str
    payload: bytes
    qos: int = 1
    packet_id: int = 1

    def encode(self) -> bytes:
        if not 0 <= self.qos <= 2:
            raise MqttError(f"invalid QoS {self.qos}")
        flags = self.qos << 1
        body = _encode_string(self.topic)
        if self.qos > 0:
            body += self.packet_id.to_bytes(2, "big")
        body += b"\x00"  # empty properties
        body += self.payload
        return bytes([(PacketType.PUBLISH << 4) | flags]) + encode_varlen(len(body)) + body

    @classmethod
    def decode(cls, raw: bytes) -> "PublishPacket":
        first, body = _split(raw, PacketType.PUBLISH)
        qos = (first >> 1) & 0x03
        topic, offset = _decode_string(body, 0)
        packet_id = 0
        if qos > 0:
            packet_id = int.from_bytes(body[offset : offset + 2], "big")
            offset += 2
        properties_len, offset = decode_varlen(body, offset)
        offset += properties_len
        return cls(topic=topic, payload=body[offset:], qos=qos, packet_id=packet_id)


@dataclass
class PubackPacket:
    packet_id: int
    reason_code: int = 0

    def encode(self) -> bytes:
        body = self.packet_id.to_bytes(2, "big") + bytes([self.reason_code])
        return bytes([PacketType.PUBACK << 4]) + encode_varlen(len(body)) + body

    @classmethod
    def decode(cls, raw: bytes) -> "PubackPacket":
        _, body = _split(raw, PacketType.PUBACK)
        if len(body) < 2:
            raise MqttError("PUBACK too short")
        reason = body[2] if len(body) > 2 else 0
        return cls(packet_id=int.from_bytes(body[0:2], "big"), reason_code=reason)


def packet_type(raw: bytes) -> PacketType:
    if not raw:
        raise MqttError("empty packet")
    return PacketType(raw[0] >> 4)


def _split(raw: bytes, expected: PacketType) -> tuple[int, bytes]:
    if not raw:
        raise MqttError("empty packet")
    first = raw[0]
    if (first >> 4) != expected:
        raise MqttError(f"expected {expected.name}, got type {first >> 4}")
    length, offset = decode_varlen(raw, 1)
    if offset + length > len(raw):
        raise MqttError("packet truncated")
    return first, raw[offset : offset + length]
