"""HTTP/1.1 request/response codec.

A real byte-level implementation (serializer + incremental-friendly parser),
because serialization costs in the simulation are charged per encoded byte —
the encoded sizes must be genuine, not guessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

CRLF = b"\r\n"
SUPPORTED_METHODS = {"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"}

REASON_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """Malformed HTTP bytes."""


@dataclass
class HttpRequest:
    method: str = "GET"
    path: str = "/"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)


@dataclass
class HttpResponse:
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def reason(self) -> str:
        return REASON_PHRASES.get(self.status, "Unknown")

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)


def encode_request(request: HttpRequest) -> bytes:
    """Serialize a request, adding Content-Length and Host if missing."""
    if request.method not in SUPPORTED_METHODS:
        raise HttpError(f"unsupported method {request.method!r}")
    headers = {key.lower(): value for key, value in request.headers.items()}
    headers.setdefault("host", "localhost")
    if request.body or request.method in ("POST", "PUT", "PATCH"):
        headers["content-length"] = str(len(request.body))
    lines = [f"{request.method} {request.path} {request.version}".encode()]
    lines.extend(f"{key}: {value}".encode() for key, value in sorted(headers.items()))
    return CRLF.join(lines) + CRLF + CRLF + request.body


def encode_response(response: HttpResponse) -> bytes:
    headers = {key.lower(): value for key, value in response.headers.items()}
    headers["content-length"] = str(len(response.body))
    lines = [f"{response.version} {response.status} {response.reason}".encode()]
    lines.extend(f"{key}: {value}".encode() for key, value in sorted(headers.items()))
    return CRLF.join(lines) + CRLF + CRLF + response.body


def _split_head(raw: bytes) -> tuple[list[bytes], bytes]:
    separator = raw.find(CRLF + CRLF)
    if separator < 0:
        raise HttpError("incomplete message: missing header terminator")
    head = raw[:separator]
    body = raw[separator + 4 :]
    return head.split(CRLF), body


def _parse_headers(lines: list[bytes]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, colon, value = line.partition(b":")
        if not colon:
            raise HttpError(f"malformed header line {line!r}")
        headers[name.decode().strip().lower()] = value.decode().strip()
    return headers


def decode_request(raw: bytes) -> HttpRequest:
    lines, body = _split_head(raw)
    parts = lines[0].decode().split(" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    if method not in SUPPORTED_METHODS:
        raise HttpError(f"unsupported method {method!r}")
    headers = _parse_headers(lines[1:])
    length = int(headers.get("content-length", "0"))
    if length > len(body):
        raise HttpError(f"body truncated: expected {length}, have {len(body)}")
    return HttpRequest(
        method=method, path=path, headers=headers, body=body[:length], version=version
    )


def decode_response(raw: bytes) -> HttpResponse:
    lines, body = _split_head(raw)
    parts = lines[0].decode().split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpError(f"malformed status line {lines[0]!r}")
    version, status = parts[0], int(parts[1])
    headers = _parse_headers(lines[1:])
    length = int(headers.get("content-length", str(len(body))))
    if length > len(body):
        raise HttpError(f"body truncated: expected {length}, have {len(body)}")
    return HttpResponse(status=status, headers=headers, body=body[:length], version=version)
