"""CoAP (RFC 7252) message codec — the second IoT protocol the adapter speaks.

Implements the fixed 4-byte header, token, option deltas (enough for
Uri-Path and Content-Format), and payload marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

COAP_VERSION = 1
PAYLOAD_MARKER = 0xFF

OPTION_URI_PATH = 11
OPTION_CONTENT_FORMAT = 12


class CoapError(Exception):
    """Malformed CoAP bytes."""


class CoapType(enum.IntEnum):
    CON = 0  # confirmable
    NON = 1  # non-confirmable
    ACK = 2
    RST = 3


class CoapCode(enum.IntEnum):
    EMPTY = 0x00
    GET = 0x01
    POST = 0x02
    PUT = 0x03
    DELETE = 0x04
    CREATED = 0x41   # 2.01
    CONTENT = 0x45   # 2.05
    NOT_FOUND = 0x84  # 4.04


@dataclass
class CoapMessage:
    code: CoapCode
    message_id: int
    msg_type: CoapType = CoapType.CON
    token: bytes = b""
    uri_path: list[str] = field(default_factory=list)
    content_format: int | None = None
    payload: bytes = b""

    def encode(self) -> bytes:
        if len(self.token) > 8:
            raise CoapError("token longer than 8 bytes")
        if not 0 <= self.message_id <= 0xFFFF:
            raise CoapError("message id out of range")
        header = bytes(
            [
                (COAP_VERSION << 6) | (self.msg_type << 4) | len(self.token),
                self.code,
            ]
        ) + self.message_id.to_bytes(2, "big")
        out = bytearray(header + self.token)

        options: list[tuple[int, bytes]] = []
        for segment in self.uri_path:
            options.append((OPTION_URI_PATH, segment.encode()))
        if self.content_format is not None:
            options.append(
                (OPTION_CONTENT_FORMAT, self._encode_uint(self.content_format))
            )
        options.sort(key=lambda pair: pair[0])

        previous = 0
        for number, value in options:
            delta = number - previous
            previous = number
            out += self._encode_option_header(delta, len(value))
            out += value
        if self.payload:
            out.append(PAYLOAD_MARKER)
            out += self.payload
        return bytes(out)

    @staticmethod
    def _encode_uint(value: int) -> bytes:
        if value == 0:
            return b""
        length = (value.bit_length() + 7) // 8
        return value.to_bytes(length, "big")

    @staticmethod
    def _encode_option_header(delta: int, length: int) -> bytes:
        def nibble_and_ext(value: int) -> tuple[int, bytes]:
            if value < 13:
                return value, b""
            if value < 269:
                return 13, bytes([value - 13])
            return 14, (value - 269).to_bytes(2, "big")

        delta_nibble, delta_ext = nibble_and_ext(delta)
        length_nibble, length_ext = nibble_and_ext(length)
        return bytes([(delta_nibble << 4) | length_nibble]) + delta_ext + length_ext

    @classmethod
    def decode(cls, raw: bytes) -> "CoapMessage":
        if len(raw) < 4:
            raise CoapError("message shorter than header")
        version = raw[0] >> 6
        if version != COAP_VERSION:
            raise CoapError(f"unsupported CoAP version {version}")
        msg_type = CoapType((raw[0] >> 4) & 0x03)
        token_length = raw[0] & 0x0F
        if token_length > 8:
            raise CoapError("token length nibble out of range")
        code = CoapCode(raw[1])
        message_id = int.from_bytes(raw[2:4], "big")
        offset = 4
        token = raw[offset : offset + token_length]
        offset += token_length

        uri_path: list[str] = []
        content_format = None
        number = 0
        while offset < len(raw):
            if raw[offset] == PAYLOAD_MARKER:
                offset += 1
                break
            delta_nibble = raw[offset] >> 4
            length_nibble = raw[offset] & 0x0F
            offset += 1
            delta, offset = cls._decode_ext(delta_nibble, raw, offset)
            length, offset = cls._decode_ext(length_nibble, raw, offset)
            number += delta
            value = raw[offset : offset + length]
            if len(value) != length:
                raise CoapError("option value truncated")
            offset += length
            if number == OPTION_URI_PATH:
                uri_path.append(value.decode())
            elif number == OPTION_CONTENT_FORMAT:
                content_format = int.from_bytes(value, "big") if value else 0
        payload = raw[offset:]
        return cls(
            code=code,
            message_id=message_id,
            msg_type=msg_type,
            token=token,
            uri_path=uri_path,
            content_format=content_format,
            payload=payload,
        )

    @staticmethod
    def _decode_ext(nibble: int, raw: bytes, offset: int) -> tuple[int, int]:
        if nibble < 13:
            return nibble, offset
        if nibble == 13:
            return raw[offset] + 13, offset + 1
        if nibble == 14:
            return int.from_bytes(raw[offset : offset + 2], "big") + 269, offset + 2
        raise CoapError("reserved option nibble 15")

    @property
    def path(self) -> str:
        return "/" + "/".join(self.uri_path)
