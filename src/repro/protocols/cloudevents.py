"""CloudEvents v1.0 envelope (structured JSON + binary HTTP modes).

The protocol adapter (§3.6) normalizes every inbound protocol into a
CloudEvent before handing the payload to the chain, matching the spec the
serverless ecosystem (Knative eventing included) standardized on.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Optional

SPEC_VERSION = "1.0"
REQUIRED_ATTRIBUTES = ("id", "source", "specversion", "type")


class CloudEventError(Exception):
    """Missing required attributes or malformed envelopes."""


@dataclass
class CloudEvent:
    """A CloudEvents v1.0 event with binary payload support."""

    id: str
    source: str
    type: str
    data: bytes = b""
    datacontenttype: str = "application/octet-stream"
    subject: Optional[str] = None
    time: Optional[str] = None
    extensions: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.id or not self.source or not self.type:
            raise CloudEventError("id, source and type are required")

    # -- structured mode (one JSON document) ----------------------------------
    def to_structured(self) -> bytes:
        document = {
            "specversion": SPEC_VERSION,
            "id": self.id,
            "source": self.source,
            "type": self.type,
            "datacontenttype": self.datacontenttype,
        }
        if self.subject is not None:
            document["subject"] = self.subject
        if self.time is not None:
            document["time"] = self.time
        document.update(self.extensions)
        if self.data:
            document["data_base64"] = base64.b64encode(self.data).decode()
        return json.dumps(document, sort_keys=True).encode()

    @classmethod
    def from_structured(cls, raw: bytes) -> "CloudEvent":
        try:
            document = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError) as error:
            raise CloudEventError(f"not a JSON envelope: {error}") from error
        for attribute in REQUIRED_ATTRIBUTES:
            if attribute not in document:
                raise CloudEventError(f"missing required attribute {attribute!r}")
        if document["specversion"] != SPEC_VERSION:
            raise CloudEventError(f"unsupported specversion {document['specversion']!r}")
        data = b""
        if "data_base64" in document:
            data = base64.b64decode(document["data_base64"])
        elif "data" in document:
            data = json.dumps(document["data"]).encode()
        known = {
            "specversion", "id", "source", "type", "datacontenttype",
            "subject", "time", "data", "data_base64",
        }
        extensions = {
            key: value for key, value in document.items() if key not in known
        }
        return cls(
            id=document["id"],
            source=document["source"],
            type=document["type"],
            data=data,
            datacontenttype=document.get("datacontenttype", "application/octet-stream"),
            subject=document.get("subject"),
            time=document.get("time"),
            extensions=extensions,
        )

    # -- binary mode (attributes in headers, data in body) ----------------------
    def to_binary_headers(self) -> tuple[dict[str, str], bytes]:
        headers = {
            "ce-specversion": SPEC_VERSION,
            "ce-id": self.id,
            "ce-source": self.source,
            "ce-type": self.type,
            "content-type": self.datacontenttype,
        }
        if self.subject is not None:
            headers["ce-subject"] = self.subject
        if self.time is not None:
            headers["ce-time"] = self.time
        for key, value in self.extensions.items():
            headers[f"ce-{key}"] = value
        return headers, self.data

    @classmethod
    def from_binary_headers(cls, headers: dict[str, str], body: bytes) -> "CloudEvent":
        normalized = {key.lower(): value for key, value in headers.items()}
        for attribute in ("ce-id", "ce-source", "ce-type", "ce-specversion"):
            if attribute not in normalized:
                raise CloudEventError(f"missing header {attribute!r}")
        known = {"ce-specversion", "ce-id", "ce-source", "ce-type", "ce-subject", "ce-time"}
        extensions = {
            key[3:]: value
            for key, value in normalized.items()
            if key.startswith("ce-") and key not in known
        }
        return cls(
            id=normalized["ce-id"],
            source=normalized["ce-source"],
            type=normalized["ce-type"],
            data=body,
            datacontenttype=normalized.get("content-type", "application/octet-stream"),
            subject=normalized.get("ce-subject"),
            time=normalized.get("ce-time"),
            extensions=extensions,
        )
