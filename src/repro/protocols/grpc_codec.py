"""gRPC message framing and a compact protobuf-style field codec.

The boutique functions talk gRPC in the paper's 'server-full' baseline; we
implement the two layers that matter for serialization accounting:

* protobuf wire format (varint / length-delimited fields; types 0 and 2,
  which is what the boutique messages use), and
* the gRPC length-prefixed message frame ``[compressed:1][length:4][data]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

FieldValue = Union[int, bytes, str]

WIRE_VARINT = 0
WIRE_LEN = 2


class GrpcError(Exception):
    """Malformed frames or protobuf bytes."""


# -- varints -------------------------------------------------------------------

def encode_varint(value: int) -> bytes:
    if value < 0:
        raise GrpcError("varints here are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(raw: bytes, offset: int = 0) -> tuple[int, int]:
    """Returns (value, next_offset)."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(raw):
            raise GrpcError("truncated varint")
        byte = raw[position]
        result |= (byte & 0x7F) << shift
        position += 1
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise GrpcError("varint too long")


# -- protobuf-style message ------------------------------------------------------

@dataclass
class ProtoMessage:
    """An ordered mapping of field numbers to values (int, bytes, or str)."""

    fields: dict[int, FieldValue] = field(default_factory=dict)

    def set(self, number: int, value: FieldValue) -> "ProtoMessage":
        if number < 1:
            raise GrpcError("field numbers start at 1")
        self.fields[number] = value
        return self

    def get_int(self, number: int, default: int = 0) -> int:
        value = self.fields.get(number, default)
        if not isinstance(value, int):
            raise GrpcError(f"field {number} is not an int")
        return value

    def get_bytes(self, number: int, default: bytes = b"") -> bytes:
        value = self.fields.get(number, default)
        if isinstance(value, str):
            return value.encode()
        if not isinstance(value, bytes):
            raise GrpcError(f"field {number} is not bytes")
        return value

    def get_str(self, number: int, default: str = "") -> str:
        return self.get_bytes(number, default.encode()).decode()

    def encode(self) -> bytes:
        out = bytearray()
        for number in sorted(self.fields):
            value = self.fields[number]
            if isinstance(value, int):
                out += encode_varint((number << 3) | WIRE_VARINT)
                out += encode_varint(value)
            else:
                data = value.encode() if isinstance(value, str) else value
                out += encode_varint((number << 3) | WIRE_LEN)
                out += encode_varint(len(data))
                out += data
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "ProtoMessage":
        message = cls()
        offset = 0
        while offset < len(raw):
            key, offset = decode_varint(raw, offset)
            number, wire_type = key >> 3, key & 0x07
            if wire_type == WIRE_VARINT:
                value, offset = decode_varint(raw, offset)
                message.fields[number] = value
            elif wire_type == WIRE_LEN:
                length, offset = decode_varint(raw, offset)
                if offset + length > len(raw):
                    raise GrpcError("length-delimited field truncated")
                message.fields[number] = raw[offset : offset + length]
                offset += length
            else:
                raise GrpcError(f"unsupported wire type {wire_type}")
        return message


# -- gRPC framing ------------------------------------------------------------------

FRAME_HEADER_SIZE = 5


def encode_frame(message: bytes, compressed: bool = False) -> bytes:
    """Length-prefixed gRPC message frame."""
    return bytes([1 if compressed else 0]) + len(message).to_bytes(4, "big") + message


def decode_frame(raw: bytes) -> tuple[bytes, bool]:
    """Returns (message, compressed)."""
    if len(raw) < FRAME_HEADER_SIZE:
        raise GrpcError("frame shorter than its header")
    compressed = raw[0] == 1
    length = int.from_bytes(raw[1:5], "big")
    if len(raw) < FRAME_HEADER_SIZE + length:
        raise GrpcError(f"frame truncated: want {length}, have {len(raw) - 5}")
    return raw[5 : 5 + length], compressed


@dataclass
class GrpcCall:
    """A unary call: /package.Service/Method plus a request message."""

    service: str
    method: str
    message: ProtoMessage

    @property
    def path(self) -> str:
        return f"/{self.service}/{self.method}"

    def encode(self) -> bytes:
        return encode_frame(self.message.encode())

    @classmethod
    def decode(cls, path: str, raw: bytes) -> "GrpcCall":
        if not path.startswith("/") or "/" not in path[1:]:
            raise GrpcError(f"malformed gRPC path {path!r}")
        service, _, method = path[1:].partition("/")
        frame, _ = decode_frame(raw)
        return cls(service=service, method=method, message=ProtoMessage.decode(frame))
