"""Command-line entry point: regenerate any table/figure of the paper.

Examples::

    spright-repro tables            # Tables 1 and 2 (overhead audits)
    spright-repro fig2              # sidecar comparison
    spright-repro fig5 --max-concurrency 128
    spright-repro boutique --scale 0.1 --duration 60
    spright-repro motion --duration 1800
    spright-repro parking
    spright-repro xdp
    spright-repro ablations
    spright-repro faults --fault-plan loss-crash --retries 2 --hedge 0.05
    spright-repro recovery --planes s-spright --duration 30
    spright-repro trace --plane s-spright --workload boutique --out out/
    spright-repro traffic --functions 12 --processes 2
    spright-repro traffic --policies kpa pinned --patterns bursty
    spright-repro cluster --nodes 3 --placement all
    spright-repro cluster --planes s-spright lambda-nic --sanitize
    spright-repro cloning --duration 20   # PS cloning lab: oracle + plane sweep
    spright-repro bench             # throughput trajectory vs last BENCH_*.json
    spright-repro all               # everything, at smoke-test scale

``run`` executes a declarative scenario file (byte-identical stdout to
the equivalent flag invocation; see DESIGN.md "Scenario engine")::

    spright-repro run scenarios/boutique-baseline.json
    spright-repro run clone-sweep --set workload.duration=5
    spright-repro run --validate-only scenarios/*.json scenarios/*.yaml

Any command also accepts ``--trace``/``--profile``: the run executes with
span tracing / CPU profiling on, and with ``--out`` the Perfetto trace
JSON, OpenMetrics text, and folded flamegraph stacks are written next to
the report.

``serve`` wraps any other command with the live dashboard::

    spright-repro serve --port 8089 -- traffic --functions 12
    spright-repro serve --linger 600 -- boutique --duration 120 --trace

The inner command runs unchanged (stdout stays byte-identical to a
headless run — the dashboard URL goes to stderr) while an SSE server
streams metrics, span waterfalls, SLO burn rates, and economics to the
browser. ``--linger`` keeps the server up after the run completes so the
final state stays inspectable.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from . import obs
from .mem import set_default_sanitize
from .experiments import (
    ablations,
    audits,
    boutique_exp,
    cloning_exp,
    cluster_exp,
    faults_exp,
    fig2,
    fig5,
    motion_exp,
    parking_exp,
    recovery_exp,
    trace_exp,
    traffic_exp,
    xdp_exp,
)
from .faults import NAMED_PLANS

# Each _cmd_* builds a config dict and delegates to the experiment module's
# run_config entry point — the same entry point `spright-repro run <scenario>`
# dispatches to, which is what keeps a scenario's stdout byte-identical to the
# equivalent flag invocation.


def _cmd_tables(_args) -> str:
    return audits.run_config()


def _cmd_fig2(args) -> str:
    return fig2.run_config({"duration": args.duration or 5.0})


def _cmd_fig5(args) -> str:
    return fig5.run_config(
        {
            "max_concurrency": args.max_concurrency,
            "duration": args.duration or 1.0,
        }
    )


def _cmd_boutique(args) -> str:
    return boutique_exp.run_config(
        {"scale": args.scale, "duration": args.duration or 60.0}
    )


def _cmd_motion(args) -> str:
    return motion_exp.run_config({"duration": args.duration or 3600.0})


def _cmd_parking(args) -> str:
    return parking_exp.run_config({"duration": args.duration or 700.0})


def _cmd_xdp(args) -> str:
    return xdp_exp.run_config({"duration": args.duration or 2.0})


def _cmd_ablations(_args) -> str:
    return ablations.run_config()


def _cmd_faults(args) -> str:
    return faults_exp.run_config(
        {
            "fault_plan": args.fault_plan,
            "retries": args.retries,
            "hedge_delay": args.hedge,
            "request_timeout": args.request_timeout,
            "clone_factor": args.clone_factor,
            "scale": args.scale,
            "duration": args.duration or 30.0,
        }
    )


def _cmd_recovery(args) -> str:
    return recovery_exp.run_config(
        {
            "planes": args.planes,
            "scale": args.scale,
            "duration": args.duration or 30.0,
            "include_overload": not args.no_overload,
        }
    )


def _cmd_trace(args) -> str:
    return trace_exp.run_config(
        {
            "plane": args.plane,
            "workload": args.workload,
            "scale": args.scale,
            "duration": args.duration or 10.0,
            "out": args.out,
        }
    )


def _cmd_traffic(args) -> str:
    return traffic_exp.run_config(
        {
            "planes": args.planes,
            "policies": args.policies,
            "patterns": args.patterns,
            "functions": args.functions,
            "duration": args.duration or 14400.0,
            "processes": args.processes,
        }
    )


def _cmd_cluster(args) -> str:
    return cluster_exp.run_config(
        {
            "planes": args.planes,
            "nodes": args.nodes,
            "placement": args.placement,
            "duration": args.duration or 2.0,
        }
    )


def _cmd_cloning(args) -> str:
    return cloning_exp.run_config({"duration": args.duration or 20.0})


def _cmd_bench(args) -> str:
    import json
    from pathlib import Path

    from . import bench

    payload = bench.run_bench(duration=args.duration or 0.8)
    directory = Path(args.bench_dir)
    previous_path = bench.find_previous(directory, payload["pr"])
    comparison = None
    if previous_path is not None:
        comparison = bench.compare(
            payload,
            json.loads(previous_path.read_text()),
            tolerance=args.tolerance,
        )
    path = bench.write_trajectory(payload, directory)
    report = bench.format_report(payload, comparison)
    return report + f"\n\ntrajectory written: {path}"


def _cmd_all(args) -> str:
    sections = [
        _cmd_tables(args),
        _cmd_fig2(argparse.Namespace(duration=2.0)),
        _cmd_fig5(argparse.Namespace(max_concurrency=64, duration=1.0)),
        _cmd_motion(argparse.Namespace(duration=1200.0)),
        _cmd_parking(argparse.Namespace(duration=700.0)),
        _cmd_xdp(argparse.Namespace(duration=1.0)),
        _cmd_ablations(args),
    ]
    return "\n\n".join(sections)


COMMANDS = {
    "tables": _cmd_tables,
    "fig2": _cmd_fig2,
    "fig5": _cmd_fig5,
    "boutique": _cmd_boutique,
    "motion": _cmd_motion,
    "parking": _cmd_parking,
    "xdp": _cmd_xdp,
    "ablations": _cmd_ablations,
    "faults": _cmd_faults,
    "recovery": _cmd_recovery,
    "trace": _cmd_trace,
    "traffic": _cmd_traffic,
    "cluster": _cmd_cluster,
    "cloning": _cmd_cloning,
    "bench": _cmd_bench,
    "all": _cmd_all,
}


@contextlib.contextmanager
def dashboard_session(host: str = "127.0.0.1", port: int = 0):
    """Run a live dashboard around a block of simulation work.

    Installs a process-wide :class:`~repro.obs.live.LiveSink` (every node
    created inside the block auto-attaches) and serves it over HTTP/SSE.
    The URL is printed to **stderr** so the wrapped command's stdout stays
    byte-identical to a headless run.
    """
    from .obs.live import DashboardServer, LiveSink

    sink = LiveSink()
    server = DashboardServer(sink, host=host, port=port)
    server.start()
    obs.set_default_live_sink(sink)
    print(f"spright-repro dashboard: {server.url}", file=sys.stderr)
    try:
        yield sink, server
    finally:
        obs.set_default_live_sink(None)
        sink.detach_all()
        server.stop()


def _serve(argv) -> int:
    """The ``serve`` subcommand: wrap an inner command with the dashboard."""
    parser = argparse.ArgumentParser(
        prog="spright-repro serve",
        description="Serve the live dashboard around any other command: "
        "spright-repro serve [options] -- <command> [args]",
    )
    parser.add_argument(
        "--port", type=int, default=8089, help="dashboard port (0 = ephemeral)"
    )
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep serving this long after the inner command finishes",
    )
    if "--" in argv:
        split = argv.index("--")
        own, inner = argv[:split], argv[split + 1 :]
    else:
        own, inner = argv, []
    args = parser.parse_args(own)
    if not inner:
        parser.error("serve needs a wrapped command: serve [options] -- boutique ...")
    with dashboard_session(args.host, args.port) as (sink, _server):
        code = main(inner)
        sink.finalize()
        if args.linger > 0:
            import time

            print(
                f"spright-repro dashboard: lingering {args.linger:.0f}s "
                "(Ctrl-C to stop)",
                file=sys.stderr,
            )
            with contextlib.suppress(KeyboardInterrupt):
                time.sleep(args.linger)
    return code


def _run(argv) -> int:
    """The ``run`` subcommand: execute or validate declarative scenarios."""
    parser = argparse.ArgumentParser(
        prog="spright-repro run",
        description="Run a declarative scenario: "
        "spright-repro run <scenario> [--set key=value ...]. A scenario is "
        "a JSON or YAML file (or a bare name resolved under scenarios/) "
        "whose output is byte-identical to the equivalent flag invocation.",
    )
    parser.add_argument(
        "scenarios",
        nargs="+",
        metavar="SCENARIO",
        help="scenario file path, or a bare name resolved under scenarios/",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one scenario key by dotted path (e.g. "
        "workload.duration=5); resolution order is file < --set",
    )
    parser.add_argument(
        "--validate-only",
        action="store_true",
        help="parse + validate + resolve every scenario without running it",
    )
    args = parser.parse_args(argv)
    from .scenario import ScenarioError, check_scenario, run_scenario

    if args.validate_only:
        failures = 0
        for spec in args.scenarios:
            errors = check_scenario(spec, overrides=args.overrides)
            if errors:
                failures += 1
                for path, message in errors:
                    print(f"{spec}: {path}: {message}")
            else:
                print(f"{spec}: ok")
        return 1 if failures else 0
    if len(args.scenarios) != 1:
        parser.error(
            "run executes exactly one scenario "
            "(use --validate-only to check several at once)"
        )
    try:
        _resolved, report = run_scenario(args.scenarios[0], overrides=args.overrides)
    except ScenarioError as exc:
        print(f"spright-repro run: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _clone_factor_arg(text: str):
    """``--clone-factor``: an integer d, 'off', or 'optimal'."""
    if text in ("optimal", "off"):
        return text
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, 'off', or 'optimal', got {text!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError("clone factor must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spright-repro",
        description="Regenerate the SPRIGHT paper's tables and figures.",
    )
    parser.add_argument("command", choices=sorted(COMMANDS))
    parser.add_argument(
        "--duration", type=float, default=None, help="simulated seconds per run"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="boutique scale factor: users and cores shrink together",
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=512, help="fig5 sweep ceiling"
    )
    parser.add_argument(
        "--fault-plan",
        type=str,
        default="loss-crash",
        help="faults: named plan ("
        + ", ".join(sorted(NAMED_PLANS))
        + "), a JSON file path, or 'none' for an empty plan",
    )
    parser.add_argument(
        "--clone-factor",
        type=_clone_factor_arg,
        default="optimal",
        metavar="D",
        help="faults: synchronized request clones per attempt — an integer "
        "d, 'off' (d=1 everywhere), or 'optimal' (the default: the "
        "lab-measured per-plane optimum, d=2 on the shared-memory planes "
        "and d=1 on knative/grpc)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="faults: retry budget per request (0 disables retries)",
    )
    parser.add_argument(
        "--hedge",
        type=float,
        default=None,
        metavar="DELAY_S",
        help="faults: launch a hedged duplicate after this many seconds "
        "without a response (off by default)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=1.0,
        help="faults: per-attempt timeout in seconds",
    )
    parser.add_argument(
        "--planes",
        type=str,
        nargs="+",
        default=None,
        choices=("knative", "grpc", "s-spright", "d-spright", "lambda-nic"),
        help="recovery/cluster: restrict the suite to these dataplanes",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=3,
        help="cluster: node count for the multi-node sweep points",
    )
    parser.add_argument(
        "--placement",
        type=str,
        default="all",
        choices=("all",) + cluster_exp.POLICIES,
        help="cluster: restrict the sweep to one placement policy",
    )
    parser.add_argument(
        "--no-overload",
        action="store_true",
        help="recovery: skip the overload/admission-control comparison",
    )
    parser.add_argument(
        "--plane",
        type=str,
        default="s-spright",
        choices=("knative", "grpc", "s-spright", "d-spright"),
        help="trace: which dataplane to run traced",
    )
    parser.add_argument(
        "--workload",
        type=str,
        default="boutique",
        choices=sorted(trace_exp.WORKLOADS),
        help="trace: which workload to run traced",
    )
    parser.add_argument(
        "--functions",
        type=int,
        default=12,
        help="traffic: number of functions in the synthetic fleet",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="traffic: worker processes for the fleet runner (output is "
        "byte-identical to the serial run)",
    )
    parser.add_argument(
        "--policies",
        type=str,
        nargs="+",
        default=None,
        choices=("fixed", "kpa", "histogram", "pinned"),
        help="traffic: restrict the sweep to these keep-alive policies",
    )
    parser.add_argument(
        "--patterns",
        type=str,
        nargs="+",
        default=None,
        choices=("flat", "diurnal", "bursty"),
        help="traffic: restrict the sweep to these fleet arrival patterns",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable causal span tracing for every node this run creates "
        "(with --out, writes Chrome/Perfetto trace-event JSON)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable the simulated-CPU profiler for every node this run "
        "creates (with --out, writes folded flamegraph stacks)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also write the report (and a JSON copy) under this directory",
    )
    parser.add_argument(
        "--bench-dir",
        type=str,
        default=".",
        help="bench: directory holding BENCH_<n>.json trajectory files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="bench: allowed fractional throughput drop vs the previous "
        "trajectory point before the gate reports FAILED",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run every SPRIGHT chain in memory-safety checked mode: the "
        "generation-tagged sanitizer watches the shared pools, counts "
        "violations under sanitizer/* node counters, and reports buffers "
        "leaked at chain teardown",
    )
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    if argv and argv[0] == "run":
        return _run(argv[1:])
    args = build_parser().parse_args(argv)
    if args.sanitize:
        set_default_sanitize(True)
    if args.trace or args.profile:
        obs.set_default_observe(trace=args.trace, profile=args.profile)
    report = COMMANDS[args.command](args)
    print(report)
    if args.out:
        from pathlib import Path

        from .stats import write_json

        directory = Path(args.out)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{args.command}.txt").write_text(report + "\n")
        write_json(
            directory / f"{args.command}.json",
            {"command": args.command, "report": report},
        )
        if (args.trace or args.profile) and args.command != "trace":
            for index, session in enumerate(obs.active_sessions(), start=1):
                obs.export.write_artifacts(
                    directory,
                    tracer=session.tracer,
                    registry=session.registry,
                    profiler=session.profiler,
                    basename=f"{args.command}-node{index}",
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
