"""Resilience experiment: the four planes under injected faults.

Reruns the online-boutique (closed loop) and motion-detection (open loop)
workloads with a :class:`~repro.faults.FaultPlan` armed — packet loss on
the veth/NIC path, pod crashes, ring overflow — and a gateway-side
:class:`~repro.faults.ResiliencePolicy` (timeout + retries + optional
hedging + circuit breaker) absorbing what it can. The output is a
*resilience table*: per plane and workload, p50/p99/p999 latency of the
requests that completed, goodput (successful completions per second),
and how hard the policy had to work (retries, hedges, breaker trips).

With an empty plan and an inert policy every run is bit-identical to the
fault-free experiments: the injector makes zero RNG draws while disarmed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..faults import (
    FaultPlan,
    ResiliencePolicy,
    default_resilience_for_plane,
    load_plan,
)
from ..stats import format_table, percentile_cells_ms
from ..workloads import boutique
from .boutique_exp import SPAWN_RATES, USERS, knative_boutique_params
from .common import run_closed_loop
from .motion_exp import run_motion

ALL_PLANES = ("knative", "grpc", "s-spright", "d-spright")

# Counter names the table aggregates, all maintained by repro.faults.
RESILIENCE_COUNTERS = ("retry", "hedge", "hedge_win", "timeout", "exhausted")


@dataclass
class FaultRunResult:
    """One (plane, workload) cell of the resilience table."""

    plane: str
    workload: str
    duration: float
    sent: int
    completed: int
    failed: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    injected: dict = field(default_factory=dict)
    resilience: dict = field(default_factory=dict)
    breaker_trips: int = 0

    @property
    def goodput(self) -> float:
        """Successful completions per simulated second."""
        return self.completed / self.duration if self.duration else 0.0

    def as_dict(self) -> dict:
        return {
            "plane": self.plane,
            "workload": self.workload,
            "sent": self.sent,
            "completed": self.completed,
            "failed": self.failed,
            "goodput": self.goodput,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "injected": dict(self.injected),
            "resilience": dict(self.resilience),
            "breaker_trips": self.breaker_trips,
        }


def _harvest(node, plane_obj) -> tuple[dict, dict, int]:
    """Pull faults/* counters and breaker trips out of a finished run."""
    counters = node.counters.as_dict()
    injected = {
        name.rsplit("/", 1)[-1]: count
        for name, count in sorted(counters.items())
        if name.startswith("faults/injected/")
    }
    resilience = {
        name: counters.get(f"faults/resilience/{name}", 0)
        for name in RESILIENCE_COUNTERS
    }
    # Failures the chain absorbed (SPRIGHT worker-side) also count as injected
    # effects worth surfacing, as do per-kind terminal failures.
    for name, count in sorted(counters.items()):
        if name.startswith("faults/failed/"):
            injected.setdefault(f"failed_{name.rsplit('/', 1)[-1]}", count)
    trips = plane_obj.resilience.breaker_trips() if plane_obj.resilience else 0
    return injected, resilience, trips


def run_faults_boutique(
    plane: str,
    fault_plan: Optional[FaultPlan] = None,
    policy: Optional[ResiliencePolicy] = None,
    scale: float = 0.05,
    duration: float = 30.0,
    seed: int = 2022,
) -> FaultRunResult:
    """Boutique closed loop on one plane with faults + resilience armed."""
    users = max(8, int(USERS[plane] * scale))
    spawn_rate = max(4.0, SPAWN_RATES[plane] * scale)
    functions = (
        boutique.spright_functions()
        if plane in ("s-spright", "d-spright")
        else boutique.go_grpc_functions()
    )
    result = run_closed_loop(
        plane,
        functions,
        boutique.request_classes(),
        concurrency=users,
        duration=duration,
        scale=scale,
        seed=seed,
        spawn_rate=spawn_rate,
        think_time=boutique.locust_think_time,
        client_overhead=0.0005,
        knative_params=knative_boutique_params() if plane == "knative" else None,
        fault_plan=fault_plan,
        resilience=policy,
    )
    generator = result.extras["generator"]
    injected, resilience, trips = _harvest(result.node, result.plane_obj)
    p50, p99, p999 = percentile_cells_ms(result.recorder)
    return FaultRunResult(
        plane=plane,
        workload="boutique",
        duration=duration,
        sent=generator.requests_sent,
        completed=result.recorder.count(""),
        failed=generator.requests_failed,
        p50_ms=p50,
        p99_ms=p99,
        p999_ms=p999,
        injected=injected,
        resilience=resilience,
        breaker_trips=trips,
    )


def run_faults_motion(
    plane: str,
    fault_plan: Optional[FaultPlan] = None,
    policy: Optional[ResiliencePolicy] = None,
    duration: float = 600.0,
    seed: int = 2022,
) -> FaultRunResult:
    """Motion open loop on one plane with faults + resilience armed."""
    run = run_motion(
        plane,
        duration=duration,
        seed=seed,
        fault_plan=fault_plan,
        resilience=policy,
    )
    injected, resilience, trips = _harvest(run.node, run.plane_obj)
    p50, p99, p999 = percentile_cells_ms(run.recorder)
    return FaultRunResult(
        plane=plane,
        workload="motion",
        duration=duration,
        sent=run.generator.submitted,
        completed=run.recorder.count(""),
        failed=run.generator.failed,
        p50_ms=p50,
        p99_ms=p99,
        p999_ms=p999,
        injected=injected,
        resilience=resilience,
        breaker_trips=trips,
    )


def default_policy(
    retries: int = 2,
    hedge_delay: Optional[float] = None,
    timeout: float = 1.0,
) -> ResiliencePolicy:
    """The plane-agnostic policy shape: timeout + retries, breaker armed.

    This never clones; the suite default is :func:`default_resilience_for_plane`
    with ``clone_factor="optimal"``, which folds in the lab-measured per-plane
    clone factor (d=2 on the shared-memory planes, d=1 elsewhere).
    """
    return ResiliencePolicy(
        timeout=timeout,
        retries=retries,
        hedge_delay=hedge_delay,
        breaker_threshold=8,
        breaker_reset=2.0,
    )


def run_resilience_suite(
    fault_plan: Optional[FaultPlan] = None,
    policy: Optional[ResiliencePolicy] = None,
    planes: Sequence[str] = ALL_PLANES,
    scale: float = 0.05,
    boutique_duration: float = 30.0,
    motion_duration: float = 600.0,
    seed: int = 2022,
    retries: int = 2,
    hedge_delay: Optional[float] = None,
    timeout: float = 1.0,
    clone_factor="optimal",
) -> list[FaultRunResult]:
    """Both workloads on every plane; the resilience table's row source.

    Passing ``policy`` pins one explicit :class:`ResiliencePolicy` on every
    plane. Without it, each plane gets its shipped default — retries +
    breaker plus the measured-optimal clone factor for that plane
    (``clone_factor`` accepts an int, ``"optimal"``, or ``"off"``).
    """
    if fault_plan is None:
        fault_plan = load_plan("loss-crash")

    def plane_policy(plane: str) -> ResiliencePolicy:
        if policy is not None:
            return policy
        return default_resilience_for_plane(
            plane,
            retries=retries,
            hedge_delay=hedge_delay,
            timeout=timeout,
            clone_factor=clone_factor,
        )

    results = []
    for plane in planes:
        results.append(
            run_faults_boutique(
                plane,
                fault_plan=fault_plan,
                policy=plane_policy(plane),
                scale=scale,
                duration=boutique_duration,
                seed=seed,
            )
        )
    for plane in planes:
        results.append(
            run_faults_motion(
                plane,
                fault_plan=fault_plan,
                policy=plane_policy(plane),
                duration=motion_duration,
                seed=seed,
            )
        )
    return results


def run_config(config: Optional[dict] = None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro faults``."""
    config = dict(config or {})
    plan_spec = config.get("fault_plan", "loss-crash")
    if isinstance(plan_spec, FaultPlan):
        plan = plan_spec
    elif isinstance(plan_spec, dict):
        plan = FaultPlan.from_dict(plan_spec)
    else:
        plan = load_plan(plan_spec)
    duration = config.get("duration", 30.0)
    results = run_resilience_suite(
        fault_plan=plan,
        planes=tuple(config.get("planes", ALL_PLANES)),
        scale=config.get("scale", 0.1),
        boutique_duration=duration,
        motion_duration=config.get("motion_duration", duration * 20),
        seed=config.get("seed", 2022),
        retries=config.get("retries", 2),
        hedge_delay=config.get("hedge_delay"),
        timeout=config.get("request_timeout", 1.0),
        clone_factor=config.get("clone_factor", "optimal"),
    )
    return "\n\n".join(
        [
            format_resilience_table(results, plan_name=plan.name),
            format_fault_counters(results),
        ]
    )


def format_resilience_table(
    results: Sequence[FaultRunResult], plan_name: str = ""
) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                r.plane,
                r.workload,
                r.sent,
                r.failed,
                round(r.goodput, 1),
                round(r.p50_ms, 3),
                round(r.p99_ms, 3),
                round(r.p999_ms, 3),
                r.resilience.get("retry", 0),
                r.resilience.get("hedge", 0),
                r.breaker_trips,
            ]
        )
    title = "Resilience under injected faults"
    if plan_name:
        title += f" (plan: {plan_name})"
    return format_table(
        [
            "plane",
            "workload",
            "sent",
            "failed",
            "goodput (rps)",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "retries",
            "hedges",
            "breaker trips",
        ],
        rows,
        title=title,
    )


def format_fault_counters(results: Sequence[FaultRunResult]) -> str:
    """Per-run faults/* counter dump, the table's audit trail."""
    rows = []
    for r in results:
        for name, count in sorted(r.injected.items()):
            rows.append([r.plane, r.workload, f"injected/{name}", count])
        for name, count in sorted(r.resilience.items()):
            if count:
                rows.append([r.plane, r.workload, f"resilience/{name}", count])
    if not rows:
        rows.append(["-", "-", "(no faults fired)", 0])
    return format_table(
        ["plane", "workload", "counter", "count"],
        rows,
        title="Fault injection + resilience counters",
    )
