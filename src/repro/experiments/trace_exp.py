"""Traced runs: span trees, OpenMetrics, and CPU flamegraphs for one plane.

``spright-repro trace`` runs a short workload with the full observability
stack on — causal span tracing, the metrics registry mirroring every audited
kernel op, and the simulated-CPU profiler — then reports:

* span statistics and **coverage**: the fraction of each request's wall time
  tiled by its phase spans (the acceptance bar is >= 95%; by construction
  phases are contiguous, so completed requests sit at ~100%);
* the **reconciliation table**: per :class:`~repro.audit.OverheadKind`, the
  registry's ``ops/<plane>/<kind>`` counter against the sum over every
  audit :class:`~repro.audit.RequestTrace` — equal *exactly*, because both
  are incremented by the same ``KernelOps`` call under the same condition;
* the profiler's hottest stacks.

Artifacts (Chrome/Perfetto ``trace_event`` JSON, OpenMetrics text, folded
flamegraph stacks) are written by :func:`write_trace_artifacts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..audit import OverheadKind
from ..obs import Observability, coverage, default_observe, set_default_observe
from ..stats import format_table
from ..workloads import boutique
from .boutique_exp import SPAWN_RATES, USERS, knative_boutique_params
from .common import run_closed_loop
from .motion_exp import run_motion

WORKLOADS = ("boutique", "motion")


@dataclass
class TracedRun:
    """One traced run and everything its report needs."""

    plane: str
    workload: str
    duration: float
    obs: Observability
    recorder: object
    node: object
    plane_obj: object
    auditor: Optional[object] = None
    extras: dict = field(default_factory=dict)

    # -- span-tree views -----------------------------------------------------
    def coverages(self) -> list[float]:
        """Per-request phase coverage of the root span's wall time."""
        tracer = self.obs.tracer
        if tracer is None:
            return []
        children = tracer.children_index()
        return [coverage(root, children) for root in tracer.roots()]

    def reconciliation(self) -> list[tuple[str, int, int, bool]]:
        """(kind, registry count, audit-trace sum, exact match) per kind."""
        if self.auditor is None:
            return []
        plane_key = self.plane_obj.plane
        rows = []
        for kind in OverheadKind:
            metric = self.obs.registry.find(f"ops/{plane_key}/{kind.name.lower()}")
            registry_count = int(metric.value) if metric is not None else 0
            audited = sum(
                trace.total(kind) for trace in self.auditor.traces
            )
            rows.append((kind.name.lower(), registry_count, audited, registry_count == audited))
        return rows

    def reconciled(self) -> bool:
        """True when every kind's registry counter equals the audit sum."""
        return all(match for _, _, _, match in self.reconciliation())


def run_traced(
    plane: str = "s-spright",
    workload: str = "boutique",
    scale: float = 0.05,
    duration: float = 10.0,
    seed: int = 2022,
) -> TracedRun:
    """Run one (plane, workload) with tracing + profiling forced on.

    The process-wide observe defaults are saved and restored, so a traced
    run in the middle of a larger program does not leak tracing into later
    experiments.
    """
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; choose from {WORKLOADS}")
    saved = default_observe()
    set_default_observe(trace=True, profile=True)
    try:
        if workload == "boutique":
            users = max(8, int(USERS[plane] * scale))
            spawn_rate = max(4.0, SPAWN_RATES[plane] * scale)
            functions = (
                boutique.spright_functions()
                if plane in ("s-spright", "d-spright")
                else boutique.go_grpc_functions()
            )
            result = run_closed_loop(
                plane,
                functions,
                boutique.request_classes(),
                concurrency=users,
                duration=duration,
                scale=scale,
                seed=seed,
                spawn_rate=spawn_rate,
                think_time=boutique.locust_think_time,
                client_overhead=0.0005,
                knative_params=knative_boutique_params() if plane == "knative" else None,
                audit=True,
            )
            run = TracedRun(
                plane=plane,
                workload=workload,
                duration=duration,
                obs=result.node.obs,
                recorder=result.recorder,
                node=result.node,
                plane_obj=result.plane_obj,
                auditor=result.auditor,
                extras=result.extras,
            )
        else:
            motion = run_motion(plane, duration=duration, seed=seed)
            run = TracedRun(
                plane=plane,
                workload=workload,
                duration=duration,
                obs=motion.node.obs,
                recorder=motion.recorder,
                node=motion.node,
                plane_obj=motion.plane_obj,
                extras={"generator": motion.generator},
            )
    finally:
        set_default_observe(trace=saved[0], profile=saved[1])
    _record_latency_histogram(run)
    return run


def _record_latency_histogram(run: TracedRun) -> None:
    """Post-hoc: fold the recorder's samples into a registry histogram."""
    histogram = run.obs.registry.histogram("latency/request_seconds")
    for latency in run.recorder.all_latencies():
        histogram.observe(latency)


def format_trace_report(run: TracedRun) -> str:
    """The ``spright-repro trace`` report: spans, coverage, reconciliation."""
    tracer = run.obs.tracer
    profiler = run.obs.profiler
    sections = []

    rows = [
        ["plane", run.plane],
        ["workload", run.workload],
        ["duration (s)", run.duration],
        ["requests traced", tracer.requests_started if tracer else 0],
        ["requests finished", tracer.requests_finished if tracer else 0],
        ["spans", len(tracer.finished_spans()) if tracer else 0],
    ]
    covs = run.coverages()
    if covs:
        rows.append(["coverage min", f"{min(covs):.4f}"])
        rows.append(["coverage mean", f"{sum(covs) / len(covs):.4f}"])
        rows.append(["coverage >= 0.95", str(min(covs) >= 0.95)])
    sections.append(format_table(["metric", "value"], rows, title="Traced run"))

    reconciliation = run.reconciliation()
    if reconciliation:
        sections.append(
            format_table(
                ["overhead kind", "registry ops/*", "audit traces", "exact"],
                [
                    [kind, registry_count, audited, "yes" if match else "NO"]
                    for kind, registry_count, audited, match in reconciliation
                ],
                title=f"OpenMetrics <-> audit reconciliation ({run.plane_obj.plane})",
            )
        )

    if profiler is not None and profiler.samples:
        sections.append(
            format_table(
                ["stack", "seconds"],
                [
                    [stack, f"{seconds:.6f}"]
                    for stack, seconds in profiler.top_stacks(10)
                ],
                title="Hottest simulated-CPU stacks",
            )
        )
    return "\n\n".join(sections)


def write_trace_artifacts(run: TracedRun, directory) -> list:
    """Write trace/metrics/flamegraph artifacts; returns written paths."""
    from ..obs import export

    basename = f"{run.plane_obj.plane}-{run.workload}"
    return export.write_artifacts(
        directory,
        tracer=run.obs.tracer,
        registry=run.obs.registry,
        profiler=run.obs.profiler,
        basename=basename,
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro trace``."""
    config = dict(config or {})
    run = run_traced(
        plane=config.get("plane", "s-spright"),
        workload=config.get("workload", "boutique"),
        scale=config.get("scale", 0.1),
        duration=config.get("duration", 10.0),
        seed=config.get("seed", 2022),
    )
    report = format_trace_report(run)
    out = config.get("out")
    if out:
        from pathlib import Path

        paths = write_trace_artifacts(run, Path(out))
        report += "\n\nArtifacts:\n" + "\n".join(f"  {path}" for path in paths)
    return report
