"""E3/E11 (Fig 5 + §3.2.2 spot values): event-based vs polling shared memory.

A 2-function chain driven by an ab-style closed loop at concurrency levels
1..512, comparing Knative, S-SPRIGHT (SPROXY), and D-SPRIGHT (DPDK rings) on
RPS, mean latency, and CPU broken into gateway and function components.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataplane import nginx_function
from ..stats import format_table
from .common import ScenarioResult, geometric_concurrency_levels, run_closed_loop
from ..dataplane.base import RequestClass

CHAIN = ["fn-1", "fn-2"]


@dataclass
class Fig5Point:
    plane: str
    concurrency: int
    rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    gateway_cpu: float
    function_cpu: float
    queue_proxy_cpu: float
    total_cpu: float


@dataclass
class Fig5Result:
    points: list[Fig5Point] = field(default_factory=list)

    def series(self, plane: str) -> list[Fig5Point]:
        return sorted(
            (point for point in self.points if point.plane == plane),
            key=lambda point: point.concurrency,
        )

    def at(self, plane: str, concurrency: int) -> Fig5Point:
        for point in self.points:
            if point.plane == plane and point.concurrency == concurrency:
                return point
        raise KeyError(f"no point for {plane} @ {concurrency}")


def _functions(plane: str):
    """NGINX servers for Knative; the lean C ports for SPRIGHT (§3.8)."""
    from ..runtime import FunctionSpec

    if plane in ("s-spright", "d-spright"):
        return [
            FunctionSpec(name=name, service_time=10e-6, service_time_cv=0.2)
            for name in CHAIN
        ]
    return [nginx_function(name, service_time=10e-6) for name in CHAIN]


def _request_classes():
    return [RequestClass(name="fig5", sequence=CHAIN, payload_size=100)]


def run_point(
    plane: str, concurrency: int, duration: float = 2.0, seed: int = 2022
) -> Fig5Point:
    result: ScenarioResult = run_closed_loop(
        plane,
        _functions(plane),
        _request_classes(),
        concurrency=concurrency,
        duration=duration,
        seed=seed,
        client_overhead=0.0007,  # ab client + loopback per request
    )
    return Fig5Point(
        plane=plane,
        concurrency=concurrency,
        rps=result.rps,
        mean_latency_ms=result.latency_ms("mean"),
        p95_latency_ms=result.latency_ms("p95"),
        gateway_cpu=result.cpu_percent("gw"),
        function_cpu=result.cpu_percent("fn"),
        queue_proxy_cpu=result.cpu_percent("qp"),
        total_cpu=result.total_cpu_percent(),
    )


def run_fig5(
    planes: tuple[str, ...] = ("knative", "s-spright", "d-spright"),
    max_concurrency: int = 512,
    duration: float = 2.0,
    levels: tuple[int, ...] = (),
) -> Fig5Result:
    result = Fig5Result()
    chosen = list(levels) or geometric_concurrency_levels(max_concurrency)
    for plane in planes:
        for concurrency in chosen:
            result.points.append(run_point(plane, concurrency, duration=duration))
    return result


def format_report(result: Fig5Result) -> str:
    rows = [
        [
            point.plane,
            point.concurrency,
            f"{point.rps / 1e3:.1f}K",
            point.mean_latency_ms,
            point.gateway_cpu,
            point.function_cpu,
            point.queue_proxy_cpu,
            point.total_cpu,
        ]
        for point in sorted(result.points, key=lambda p: (p.plane, p.concurrency))
    ]
    return format_table(
        ["plane", "conc", "RPS", "latency(ms)", "GW%", "fn%", "QP%", "total%"],
        rows,
        title="Fig 5: polling vs event-driven shared memory (2-fn chain)",
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro fig5``."""
    config = dict(config or {})
    result = run_fig5(
        max_concurrency=config.get("max_concurrency", 512),
        duration=config.get("duration", 1.0),
    )
    return format_report(result)
