"""Traffic lab: fleet-scale keep-alive economics across dataplanes.

The §4.2.2 / Fig 11 argument, amplified to fleet scale: Knative's
scale-to-zero trades cold starts against wasted warm CPU, while
S-SPRIGHT's event-driven pods make the "always warm" corner of that
trade-off free. This lab sweeps keep-alive policies (fixed window, KPA
grace, hybrid histogram prediction, pinned min-scale) over every
dataplane under a synthetic Azure-Functions-style fleet — Zipf function
popularity, diurnal or bursty per-function arrivals — and reports the
economics: cold starts, cold-start penalty, wasted warm pod-seconds and
CPU-seconds, goodput, tail latency, and SLO attainment.

Each (pattern, plane, policy) cell is an independent deterministic
simulation (:func:`repro.traffic.fleet.simulate_cell`); the fleet runner
shards cells over worker processes with byte-identical output to the
serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..obs import MetricsRegistry
from ..stats import format_table, pct
from ..traffic import (
    PLANE_PROFILES,
    POLICIES,
    CellResult,
    FleetParams,
    SloPolicy,
    build_specs,
    publish_results,
    run_cells,
)

ALL_PLANES = tuple(sorted(PLANE_PROFILES))
ALL_POLICIES = ("fixed", "kpa", "histogram", "pinned")
ALL_PATTERNS = ("diurnal", "bursty")


@dataclass
class TrafficLab:
    """One full sweep: results plus the registry the economics publish to."""

    results: list[CellResult]
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    processes: int = 1

    def cell(self, pattern: str, plane: str, policy: str) -> CellResult:
        for result in self.results:
            if (result.pattern, result.plane, result.policy) == (
                pattern,
                plane,
                policy,
            ):
                return result
        raise KeyError(f"no cell ({pattern}, {plane}, {policy})")


def run_traffic_lab(
    planes: Sequence[str] = ALL_PLANES,
    policies: Sequence[str] = ALL_POLICIES,
    patterns: Sequence[str] = ALL_PATTERNS,
    functions: int = 12,
    duration: float = 14400.0,
    total_rate: float = 0.8,
    seed: int = 2022,
    slo_threshold: float = 0.25,
    processes: int = 1,
    fleet: Optional[FleetParams] = None,
) -> TrafficLab:
    """Sweep planes x policies x patterns over one synthetic fleet.

    ``fleet`` overrides the (functions, duration, total_rate, seed)
    shorthand when callers need full control of the arrival model. The
    default four simulated hours x 12 functions keeps the whole 32-cell
    grid under a few seconds of wall-clock while still exercising
    thousands of idle windows per policy.
    """
    for policy in policies:
        if policy not in POLICIES:
            raise ValueError(f"unknown keep-alive policy {policy!r}")
    if fleet is None:
        fleet = FleetParams(
            functions=functions,
            duration=duration,
            total_rate=total_rate,
            seed=seed,
        )
    specs = build_specs(
        planes,
        policies,
        fleet,
        patterns=patterns,
        slo=SloPolicy(threshold_s=slo_threshold),
    )
    results = run_cells(specs, processes=processes)
    lab = TrafficLab(results=results, processes=processes)
    publish_results(results, lab.registry)
    return lab


def format_traffic_table(lab: TrafficLab) -> str:
    """The planes x policies economics table (one row per cell)."""
    rows = []
    for result in lab.results:
        rows.append(
            [
                result.pattern,
                result.plane,
                result.policy,
                result.requests,
                result.cold_starts,
                f"{result.cold_penalty_s:,.1f}",
                f"{result.wasted_warm_pod_s:,.0f}",
                f"{result.wasted_warm_cpu_s:,.0f}",
                f"{result.goodput:.3f}",
                f"{result.p50_ms:.2f}",
                f"{result.p99_ms:.2f}",
                f"{result.p999_ms:.2f}",
                f"{pct(result.slo_attainment):.2f}",
            ]
        )
    title = (
        "Traffic lab: keep-alive economics per (pattern, plane, policy) cell\n"
        f"({lab.results[0].functions if lab.results else 0} functions, "
        f"{lab.results[0].duration if lab.results else 0:,.0f} simulated "
        "seconds; wasted warm CPU weights idle pod-seconds by each plane's "
        "idle-pod CPU burn)"
    )
    return format_table(
        [
            "pattern",
            "plane",
            "policy",
            "requests",
            "cold",
            "penalty (s)",
            "idle pod-s",
            "idle CPU-s",
            "goodput",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "SLO %",
        ],
        rows,
        title=title,
    )


def format_verdict(lab: TrafficLab) -> str:
    """The §4.2.2 takeaway, computed from the sweep itself."""
    lines = ["Verdict (per pattern): best zero-cold-start configuration"]
    patterns = sorted({result.pattern for result in lab.results})
    for pattern in patterns:
        cells = [r for r in lab.results if r.pattern == pattern]
        warm = [r for r in cells if r.cold_starts == 0]
        if not warm:
            lines.append(f"  {pattern}: no policy avoided cold starts")
            continue
        best = min(warm, key=lambda r: (r.wasted_warm_cpu_s, -r.slo_attainment))
        lines.append(
            f"  {pattern}: {best.plane}/{best.policy} — 0 cold starts, "
            f"{best.wasted_warm_cpu_s:,.0f} idle CPU-s, "
            f"{pct(best.slo_attainment):.2f}% SLO"
        )
    return "\n".join(lines)


def format_report(lab: TrafficLab) -> str:
    return "\n\n".join([format_traffic_table(lab), format_verdict(lab)])


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro traffic``."""
    config = dict(config or {})
    lab = run_traffic_lab(
        planes=tuple(config.get("planes") or ALL_PLANES),
        policies=tuple(config.get("policies") or ALL_POLICIES),
        patterns=tuple(config.get("patterns") or ALL_PATTERNS),
        functions=config.get("functions", 12),
        duration=config.get("duration", 14400.0),
        seed=config.get("seed", 2022),
        slo_threshold=config.get("slo_threshold", 0.25),
        processes=config.get("processes", 1),
    )
    return format_report(lab)
