"""E8 (Fig 11): IoT motion detection — cold start vs always-warm.

Knative runs with scale-to-zero enabled (30 s grace period) on cold-start
pods, so bursts arriving after an idle gap pay seconds of startup latency
that cascades down the 2-function chain. S-SPRIGHT keeps one pod per
function warm — affordable because its event-driven pods consume no CPU
when idle — and shows flat response times throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime import Autoscaler, AutoscalerPolicy, Kubelet, MetricsServer
from ..stats import LatencyRecorder, format_table
from ..workloads import OpenLoopGenerator
from ..workloads.motion import (
    MotionTraceParams,
    motion_functions,
    synthesize_motion_trace,
)
from .common import attach_recovery, build_plane, make_node


@dataclass
class MotionRun:
    plane: str
    duration: float
    recorder: LatencyRecorder
    node: object
    plane_obj: object
    cold_starts: int
    generator: object = None  # the OpenLoopGenerator (submitted/failed counts)
    supervisor: object = None  # the PodSupervisor, when recovery is attached

    def latency_ms(self, which: str = "mean") -> float:
        summary = self.recorder.summary("")
        return getattr(summary, which) * 1e3

    def max_latency_s(self) -> float:
        return self.recorder.summary("").maximum

    def fn_cpu_percent(self) -> float:
        return self.node.cpu_percent_prefix(f"{self.plane_obj.plane}/fn", self.duration)

    def qp_cpu_percent(self) -> float:
        return self.node.cpu_percent_prefix(f"{self.plane_obj.plane}/qp", self.duration)

    def latency_series(self, bucket: float = 30.0):
        return self.recorder.latency_series(bucket=bucket)


def run_motion(
    plane: str,
    duration: float = 3600.0,
    seed: int = 2022,
    grace_period: float = 30.0,
    trace_params: Optional[MotionTraceParams] = None,
    fault_plan=None,
    resilience=None,
    admission=None,
    recovery=None,
    sanitize=None,
) -> MotionRun:
    """One plane over the same synthetic MERL-like trace.

    ``fault_plan``/``resilience`` (see :mod:`repro.faults`) rerun the trace
    under injected failures with gateway-side retries; ``admission``/
    ``recovery`` (see :mod:`repro.recovery`) bound the front door and attach
    the pod supervisor. All default inert.
    """
    params = trace_params or MotionTraceParams(duration=duration)
    node = make_node(seed=seed)
    zero_scale = plane in ("knative", "grpc")
    functions = motion_functions(min_scale=0 if zero_scale else 1)
    kubelet = Kubelet(
        node,
        cold_start_enabled=zero_scale,
        termination_lag=30.0 if zero_scale else 0.0,
    )
    metrics = MetricsServer(registry=node.obs.registry)
    spright_params = None
    if sanitize is not None:
        from ..dataplane import SprightParams

        spright_params = SprightParams(sanitize=sanitize)
    plane_obj = build_plane(
        plane,
        node,
        functions,
        kubelet=kubelet,
        metrics_server=metrics,
        spright_params=spright_params,
    )
    if fault_plan is not None:
        node.faults.arm(fault_plan)
    if resilience is not None:
        plane_obj.use_resilience(resilience)
    if admission is not None:
        plane_obj.use_admission(admission)
    supervisor = None
    if recovery is not None:
        supervisor = attach_recovery(node, plane_obj, recovery)
    if zero_scale:
        autoscaler = Autoscaler(node, metrics)
        for deployment in plane_obj.deployments.values():
            autoscaler.register(
                deployment,
                AutoscalerPolicy(scale_to_zero=True, grace_period=grace_period),
            )
        autoscaler.start()
    recorder = LatencyRecorder()
    trace = synthesize_motion_trace(node, params)
    generator = OpenLoopGenerator(node, plane_obj, trace, recorder)
    generator.start()
    node.run(until=duration)
    return MotionRun(
        plane=plane,
        duration=duration,
        recorder=recorder,
        node=node,
        plane_obj=plane_obj,
        cold_starts=node.counters.get(f"{plane_obj.plane}/cold_starts"),
        generator=generator,
        supervisor=supervisor,
    )


def run_fig11(duration: float = 3600.0, seed: int = 2022):
    return {
        "knative": run_motion("knative", duration=duration, seed=seed),
        "s-spright": run_motion("s-spright", duration=duration, seed=seed),
    }


def format_report(runs: dict) -> str:
    rows = []
    for plane, run in runs.items():
        summary = run.recorder.summary("")
        rows.append(
            [
                plane,
                summary.count,
                summary.mean * 1e3,
                summary.p99 * 1e3,
                run.max_latency_s(),
                run.cold_starts,
                round(run.fn_cpu_percent() + run.qp_cpu_percent(), 1),
            ]
        )
    return format_table(
        ["plane", "events", "mean (ms)", "p99 (ms)", "max (s)", "cold starts", "CPU %"],
        rows,
        title="Fig 11: motion detection — cold start vs warm event-driven pods",
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro motion``."""
    config = dict(config or {})
    runs = run_fig11(
        duration=config.get("duration", 3600.0), seed=config.get("seed", 2022)
    )
    return format_report(runs)
