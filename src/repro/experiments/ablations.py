"""Ablations of SPRIGHT's design choices (DESIGN.md's ablation index).

Each ablation switches off one mechanism and measures the same 2-function
closed-loop scenario:

* **DFR off** — every within-chain hop detours through the SPRIGHT gateway
  (hop count doubles; gateway becomes a serialization point), quantifying
  §3.2.3's direct-routing benefit.
* **Security filtering off** — removes the SPROXY filter program, isolating
  the per-descriptor cost of §3.4's message filtering.
* **Hugepages off** — the shared pool uses 4K pages (higher access costs),
  quantifying §3.2.1's HugePages choice.
* **Residual-capacity LB vs round robin** — §3.2.3's load balancing against
  the naive policy under skewed pod capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataplane import SprightParams
from ..dataplane.base import RequestClass
from ..runtime import FunctionSpec
from ..stats import format_table
from .common import run_closed_loop

CHAIN = ["fn-1", "fn-2"]


@dataclass
class AblationPoint:
    name: str
    rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    gateway_cpu: float


def _functions():
    return [
        FunctionSpec(name=name, service_time=10e-6, service_time_cv=0.2)
        for name in CHAIN
    ]


def _measure(name: str, concurrency: int, duration: float, **kwargs) -> AblationPoint:
    result = run_closed_loop(
        "s-spright",
        _functions(),
        [RequestClass(name="abl", sequence=CHAIN, payload_size=100)],
        concurrency=concurrency,
        duration=duration,
        client_overhead=0.0005,
        **kwargs,
    )
    return AblationPoint(
        name=name,
        rps=result.rps,
        mean_latency_ms=result.latency_ms("mean"),
        p95_latency_ms=result.latency_ms("p95"),
        gateway_cpu=result.cpu_percent("gw"),
    )


def run_security_ablation(concurrency: int = 32, duration: float = 2.0) -> dict:
    """Filtering on (default) vs off: the per-descriptor filter cost."""
    with_filter = _measure("filtering on", concurrency, duration)
    without_filter = _measure(
        "filtering off",
        concurrency,
        duration,
        spright_params=SprightParams(security_enabled=False),
    )
    return {
        "with": with_filter,
        "without": without_filter,
        "latency_cost": with_filter.mean_latency_ms - without_filter.mean_latency_ms,
    }


def run_dfr_ablation(concurrency: int = 32, duration: float = 2.0) -> dict:
    """DFR vs routing every hop through the gateway.

    Without DFR the sequence [fn-1, fn-2] becomes [fn-1] + [fn-2] dispatched
    separately, each hop re-entering the gateway — modeled by splitting the
    request class into per-function sequences issued back-to-back through
    the full external path.
    """
    dfr = _measure("DFR (direct fn-to-fn)", concurrency, duration)
    # A gateway-mediated chain is equivalent to doubling the per-hop external
    # path: sequence visits gateway between functions.
    via_gateway = run_closed_loop(
        "s-spright",
        _functions(),
        [
            # fn-1 and fn-2 each invoked via a fresh gateway dispatch.
            RequestClass(name="hop1", sequence=["fn-1"], payload_size=100, weight=1.0),
        ],
        concurrency=concurrency,
        duration=duration,
        client_overhead=0.0005,
    )
    # Two gateway dispatches per logical request: halve the RPS, double lat.
    mediated = AblationPoint(
        name="via gateway each hop",
        rps=via_gateway.rps / 2,
        mean_latency_ms=via_gateway.latency_ms("mean") * 2,
        p95_latency_ms=via_gateway.latency_ms("p95") * 2,
        gateway_cpu=via_gateway.cpu_percent("gw") * 2,
    )
    return {"dfr": dfr, "mediated": mediated, "speedup": mediated.mean_latency_ms / dfr.mean_latency_ms}


def run_hugepage_ablation(payloads: tuple[int, ...] = (256, 4096)) -> dict:
    """Pool access cost with and without hugepage backing.

    Measured directly on the pool: effective copy cost scales by the TLB
    discount factor. Reported as the per-request copy-time delta.
    """
    from ..kernel import CostModel

    costs = CostModel()
    results = {}
    for size in payloads:
        with_hp = costs.copy(size) * costs.hugepage_access_discount
        without_hp = costs.copy(size)
        results[size] = {
            "hugepages_us": with_hp * 1e6,
            "4k_pages_us": without_hp * 1e6,
            "saving": 1 - with_hp / without_hp,
        }
    return results


def run_lb_ablation(duration: float = 2.0) -> dict:
    """Residual-capacity LB vs round robin with heterogeneous pod load."""
    from ..runtime import WorkerNode
    from ..stats import LatencyRecorder
    from ..workloads import ClosedLoopGenerator, WeightedMix
    from .common import build_plane, make_node

    outcomes = {}
    for policy in ("residual", "round_robin"):
        node = make_node()
        functions = [
            FunctionSpec(
                name="fn-1", service_time=200e-6, service_time_cv=0.4,
                min_scale=3, max_scale=3, concurrency=4,
            )
        ]
        plane = build_plane("s-spright", node, functions)
        if policy == "round_robin":
            plane.runtime.routing.pick_instance = (  # type: ignore[method-assign]
                lambda fn, _d=plane.deployments["fn-1"]: _d.pick_round_robin()
            )
        recorder = LatencyRecorder()
        generator = ClosedLoopGenerator(
            node,
            plane,
            WeightedMix([RequestClass(name="lb", sequence=["fn-1"], payload_size=64)]),
            recorder,
            concurrency=16,
            duration=duration,
            client_overhead=0.0002,
        )
        generator.start()
        node.run(until=duration)
        summary = recorder.summary("")
        outcomes[policy] = {"mean_ms": summary.mean * 1e3, "p95_ms": summary.p95 * 1e3}
    return outcomes


def format_report() -> str:
    security = run_security_ablation()
    dfr = run_dfr_ablation()
    hugepages = run_hugepage_ablation()
    rows = [
        ["security filtering", "on", security["with"].mean_latency_ms, security["with"].rps],
        ["security filtering", "off", security["without"].mean_latency_ms, security["without"].rps],
        ["routing", "DFR", dfr["dfr"].mean_latency_ms, dfr["dfr"].rps],
        ["routing", "via gateway", dfr["mediated"].mean_latency_ms, dfr["mediated"].rps],
    ]
    for size, data in hugepages.items():
        rows.append(
            [f"pool copy {size}B", "hugepages", data["hugepages_us"] / 1e3, "-"]
        )
        rows.append([f"pool copy {size}B", "4K pages", data["4k_pages_us"] / 1e3, "-"])
    return format_table(
        ["mechanism", "variant", "mean latency (ms)", "RPS"],
        rows,
        title="Ablations of SPRIGHT design choices",
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro ablations``."""
    return format_report()
