"""E2 (Fig 2): sidecar proxy comparison — RPS, latency, cycles/request.

wrk-style closed loop against a single NGINX function pod equipped with each
sidecar: Null (none), Knative queue proxy, Envoy, OpenFaaS of-watchdog.
Traffic is the paper's mix: 2% 10 KB requests, 98% 100 B requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataplane.sidecars import ALL_SIDECARS, SidecarPod, SidecarSpec
from ..runtime import WorkerNode
from ..stats import LatencyRecorder, format_table


@dataclass
class SidecarResult:
    name: str
    rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    cycles_per_request: dict


def _request_size(node: WorkerNode) -> int:
    """wrk mix: 2% of requests are 10 KB, the rest 100 B."""
    if node.rng.uniform("fig2/mix", 0.0, 1.0) < 0.02:
        return 10 * 1024
    return 100


def run_sidecar(
    spec: SidecarSpec,
    concurrency: int = 8,
    duration: float = 5.0,
    seed: int = 2022,
    client_overhead: float = 0.0003,
) -> SidecarResult:
    node = WorkerNode()
    pod = SidecarPod(node, spec)
    recorder = LatencyRecorder()

    def user(env):
        while env.now < duration:
            start = env.now
            size = _request_size(node)
            yield env.process(pod.handle_request(size))
            recorder.record(env.now, env.now - start)
            if client_overhead:
                yield env.timeout(client_overhead)

    for _ in range(concurrency):
        node.env.process(user(node.env))
    node.run(until=duration)
    summary = recorder.summary("")
    return SidecarResult(
        name=spec.name,
        rps=summary.count / duration,
        mean_latency_ms=summary.mean * 1e3,
        p95_latency_ms=summary.p95 * 1e3,
        cycles_per_request=pod.cycles_per_request(),
    )


def run_fig2(duration: float = 5.0, concurrency: int = 8) -> list[SidecarResult]:
    return [
        run_sidecar(spec, concurrency=concurrency, duration=duration)
        for spec in ALL_SIDECARS
    ]


def format_report(results: list[SidecarResult]) -> str:
    rows = []
    for result in results:
        cycles = result.cycles_per_request
        total_mcycles = sum(cycles.values()) / 1e6
        rows.append(
            [
                result.name,
                f"{result.rps / 1e3:.1f}K",
                result.mean_latency_ms,
                f"{cycles['sidecar container'] / 1e6:.2f}M",
                f"{cycles['NGINX container'] / 1e6:.2f}M",
                f"{cycles['kernel stack'] / 1e6:.2f}M",
                f"{total_mcycles:.2f}M",
            ]
        )
    return format_table(
        ["sidecar", "RPS", "latency (ms)", "sidecar cyc", "nginx cyc", "kernel cyc", "total cyc/req"],
        rows,
        title="Fig 2: sidecar proxy performance and overhead breakdown",
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro fig2``."""
    config = dict(config or {})
    return format_report(run_fig2(duration=config.get("duration", 5.0)))
