"""Shared experiment plumbing: plane construction, scenario runs, reports.

Every experiment runner returns a plain dict of numbers so benchmarks,
examples, and the CLI can all print or assert on the same results. Runs are
deterministic for a given seed.

Scaling: the paper's full runs (25K Locust users, 150 s, 40 cores) take far
too long in a pure-Python DES, so runners accept a ``scale`` in (0, 1]:
users, cores, and proxy core counts shrink proportionally, which preserves
the ratios the paper reports (who wins and by what factor) — the quantities
EXPERIMENTS.md compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..audit import Auditor
from ..faults import FaultPlan, ResiliencePolicy
from ..dataplane import (
    DSprightDataplane,
    GrpcDataplane,
    KnativeDataplane,
    KnativeParams,
    LambdaNicDataplane,
    RequestClass,
    SprightParams,
    SSprightDataplane,
)
from ..kernel import NodeConfig
from ..recovery import AdmissionPolicy, PodSupervisor, SupervisorPolicy
from ..runtime import FunctionSpec, Kubelet, MetricsServer, WorkerNode
from ..stats import LatencyRecorder
from ..workloads import ClosedLoopGenerator, WeightedMix

PLANES = {
    "knative": KnativeDataplane,
    "grpc": GrpcDataplane,
    "s-spright": SSprightDataplane,
    "d-spright": DSprightDataplane,
    "lambda-nic": LambdaNicDataplane,
}


@dataclass
class ScenarioResult:
    """Everything a run produced, for reporting and assertions."""

    plane: str
    duration: float
    recorder: LatencyRecorder
    node: WorkerNode
    plane_obj: object
    auditor: Optional[Auditor] = None
    extras: dict = field(default_factory=dict)

    @property
    def rps(self) -> float:
        return self.recorder.count("") / self.duration

    def latency_ms(self, which: str = "mean") -> float:
        summary = self.recorder.summary("")
        return getattr(summary, which) * 1e3

    def cpu_percent(self, prefix: str) -> float:
        return self.node.cpu_percent_prefix(
            f"{self.plane_obj.plane}/{prefix}", self.duration
        )

    def total_cpu_percent(self) -> float:
        return self.node.cpu_percent_prefix(f"{self.plane_obj.plane}/", self.duration)

    def sanitizer_violations(self) -> int:
        """Total memory-safety violations counted during this run."""
        return sum(
            count
            for name, count in self.node.counters.as_dict().items()
            if name.startswith("sanitizer/")
        )


def make_node(scale: float = 1.0, seed: int = 2022, cores: int = 40) -> WorkerNode:
    config = NodeConfig(root_seed=seed)
    config.cores = max(4, int(round(cores * scale)))
    return WorkerNode(config)


def build_plane(
    name: str,
    node: WorkerNode,
    functions: list[FunctionSpec],
    metrics_server: Optional[MetricsServer] = None,
    kubelet: Optional[Kubelet] = None,
    knative_params: Optional[KnativeParams] = None,
    spright_params: Optional[SprightParams] = None,
    cold_start: bool = False,
):
    """Construct and deploy one of the four planes by name."""
    plane_cls = PLANES.get(name)
    if plane_cls is None:
        raise KeyError(f"unknown plane {name!r}; choose from {sorted(PLANES)}")
    kwargs: dict = {"kubelet": kubelet, "cold_start": cold_start}
    if plane_cls is KnativeDataplane and knative_params is not None:
        kwargs["params"] = knative_params
    if issubclass(plane_cls, (SSprightDataplane, DSprightDataplane)):
        if spright_params is not None:
            kwargs["params"] = spright_params
        kwargs["metrics_server"] = metrics_server
    plane = plane_cls(node, functions, **{k: v for k, v in kwargs.items() if v is not None or k == "kubelet"})
    plane.deploy()
    return plane


def attach_recovery(
    node: WorkerNode, plane, policy: SupervisorPolicy
) -> PodSupervisor:
    """Wire a pod supervisor over every deployment of a built plane.

    SPRIGHT planes additionally get shared-memory orphan scavenging and the
    post-restart transport-registration check via their chain runtime; the
    other planes just get detect/restart/backoff.
    """
    supervisor = PodSupervisor(node, policy=policy)
    chain_runtime = getattr(plane, "runtime", None)
    reclaimer = getattr(chain_runtime, "reclaim_orphans", None)
    verifier = getattr(chain_runtime, "verify_registration", None)
    for name, deployment in plane.deployments.items():
        supervisor.watch(name, deployment, reclaimer=reclaimer, verifier=verifier)
    supervisor.start()
    return supervisor


def run_closed_loop(
    plane_name: str,
    functions: list[FunctionSpec],
    request_classes: Sequence[RequestClass],
    concurrency: int,
    duration: float,
    scale: float = 1.0,
    seed: int = 2022,
    spawn_rate: Optional[float] = None,
    think_time: Optional[Callable] = None,
    client_overhead: float = 0.0007,
    warmup: float = 0.0,
    audit: bool = False,
    knative_params: Optional[KnativeParams] = None,
    spright_params: Optional[SprightParams] = None,
    sanitize: Optional[bool] = None,
    fault_plan: Optional[FaultPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
    recovery: Optional[SupervisorPolicy] = None,
) -> ScenarioResult:
    """One closed-loop scenario on a fresh node.

    ``sanitize`` forces memory-safety checked mode on (True) or off (False)
    for SPRIGHT planes; None defers to the params / process-wide default.
    ``fault_plan`` arms the node's fault injector; ``resilience`` attaches a
    gateway-side retry/hedge/breaker policy; ``admission`` bounds the front
    door (queue limits / token bucket / CoDel shedding); ``recovery``
    attaches a :class:`~repro.recovery.PodSupervisor` watching every
    deployment (with SPRIGHT chain scavenging and post-restart registration
    checks where the plane supports them). All default to inert, keeping
    fault-free runs bit-identical.
    """
    node = make_node(scale=scale, seed=seed)
    if sanitize is not None:
        spright_params = replace(
            spright_params or SprightParams(), sanitize=sanitize
        )
    plane = build_plane(
        plane_name,
        node,
        functions,
        knative_params=knative_params,
        spright_params=spright_params,
    )
    if fault_plan is not None:
        node.faults.arm(fault_plan)
    if resilience is not None:
        plane.use_resilience(resilience)
    if admission is not None:
        plane.use_admission(admission)
    supervisor: Optional[PodSupervisor] = None
    if recovery is not None:
        supervisor = attach_recovery(node, plane, recovery)
    recorder = LatencyRecorder()
    auditor = Auditor(name=plane_name) if audit else None
    generator = ClosedLoopGenerator(
        node,
        plane,
        WeightedMix(list(request_classes)),
        recorder,
        concurrency=concurrency,
        duration=duration,
        spawn_rate=spawn_rate,
        think_time=think_time,
        client_overhead=client_overhead,
        auditor=auditor,
        warmup=warmup,
    )
    generator.start()
    node.run(until=duration)
    return ScenarioResult(
        plane=plane_name,
        duration=duration,
        recorder=recorder,
        node=node,
        plane_obj=plane,
        auditor=auditor,
        extras={"generator": generator, "supervisor": supervisor},
    )


def geometric_concurrency_levels(maximum: int = 512) -> list[int]:
    """1, 2, 4, ..., maximum — Fig 5's x axis."""
    levels = []
    level = 1
    while level <= maximum:
        levels.append(level)
        level *= 2
    return levels


def ratio(numerator: float, denominator: float) -> float:
    if denominator == 0:
        return math.inf
    return numerator / denominator
