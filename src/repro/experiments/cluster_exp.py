"""Cluster experiment: nodes × placement policy × plane (§3.8 + λ-NIC).

Two questions, one sweep:

1. **Does chain-locality placement win for SPRIGHT?** Every node boundary
   a placement introduces turns a ~2 µs shared-memory descriptor hop into
   a serialized cross-node transfer (~30 µs of wire + kernel work), so the
   policy that maximizes same-node segments should have the fewest
   cross-node hops and the lowest p99. The sweep runs the same mixed chain
   under ``bin_pack`` / ``spread`` / ``chain_locality`` and compares.

2. **Does λ-NIC offload cost ~zero host cores?** A side probe runs an
   all-offloadable two-function chain on one node under both ``s-spright``
   and ``lambda-nic``: the latter intercepts requests at the NIC's XDP
   layer and serves them on NIC cores, so its host CPU should collapse to
   the budget-fallback residue. The mixed chain (with a 200 µs heavy
   function the NIC refuses) shows the host fallback engaging.

The report ends with computed verdict lines CI greps for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..cluster import (
    POLICIES,
    ClusterDataplane,
    ClusterScheduler,
    build_cluster,
)
from ..dataplane import RequestClass
from ..runtime import ChainSpec, FunctionSpec
from ..runtime.scheduler import NodeDescriptor
from ..stats import LatencyRecorder, format_table
from ..workloads import ClosedLoopGenerator, WeightedMix

#: default plane set for the sweep (knative/d-spright accepted via --planes)
CLUSTER_PLANES = ("grpc", "s-spright", "lambda-nic")
ALL_PLANES = ("knative", "grpc", "s-spright", "d-spright", "lambda-nic")
DEFAULT_NODE_COUNTS = (1, 3)


def mixed_chain() -> ChainSpec:
    """Six functions, asymmetric core requests (0.5/0.5/0.5/1.5/0.5/0.5).

    Sized against the 2.0-core scheduler capacity so the three policies
    produce *different* split patterns on 3 nodes: ``chain_locality``
    keeps segments [f1 f2 f3][f4 f5][f6] (3 boundaries incl. the response
    leg), ``bin_pack`` shreds to 4 and ``spread`` to 6. The short
    functions are match-action expressible (λ-NIC eligible); the 200 µs
    ``f4`` is far over the NIC ceiling and always runs on host pods.
    """
    return ChainSpec(
        "cluster-mixed",
        [
            FunctionSpec("f1", 30e-6, nic_offloadable=True),
            FunctionSpec("f2", 25e-6, nic_offloadable=True),
            FunctionSpec("f3", 35e-6, nic_offloadable=True),
            FunctionSpec("f4", 200e-6),
            FunctionSpec("f5", 20e-6, nic_offloadable=True),
            FunctionSpec("f6", 30e-6, nic_offloadable=True),
        ],
    )


def short_chain() -> ChainSpec:
    """The λ-NIC poster child: two tiny kvstore-style lookups."""
    return ChainSpec(
        "cluster-kv",
        [
            FunctionSpec("kv-get", 4e-6, nic_offloadable=True, nic_insns=64),
            FunctionSpec("kv-check", 3e-6, nic_offloadable=True, nic_insns=48),
        ],
    )


def scheduler_capacity(nodes: int) -> float:
    """Schedulable cores per node: roomy when everything fits on one node,
    tight (2.0) otherwise so multi-node placement is actually forced."""
    return 8.0 if nodes == 1 else 2.0


@dataclass
class ClusterRun:
    """One (plane, policy, nodes) cell of the sweep."""

    plane: str
    policy: str
    nodes: int
    duration: float
    recorder: LatencyRecorder
    dataplane: ClusterDataplane
    extras: dict = field(default_factory=dict)

    @property
    def rps(self) -> float:
        return self.recorder.count("") / self.duration

    @property
    def p99_ms(self) -> float:
        return self.recorder.summary("").p99 * 1e3

    @property
    def hops_per_request(self) -> float:
        return self.dataplane.per_request_hops()

    @property
    def host_cpu_percent(self) -> float:
        return self.dataplane.host_cpu_percent(self.duration)

    @property
    def nic_cores(self) -> float:
        return self.dataplane.nic_cpu_cores(self.duration)

    @property
    def leaked_slots(self) -> int:
        return self.dataplane.leaked_slots()


def run_cluster_case(
    plane: str,
    policy: str,
    nodes: int,
    duration: float = 2.0,
    seed: int = 2022,
    concurrency: int = 16,
    chain_factory=mixed_chain,
    capacity: Optional[float] = None,
    sanitize: Optional[bool] = None,
    drain: float = 0.5,
) -> ClusterRun:
    """Build a cluster, place the chain, drive a closed loop, drain, report.

    The post-duration ``drain`` lets in-flight requests finish so the
    leaked-slot count reflects real leaks, not requests cut off mid-chain.
    """
    chain = chain_factory()
    fabric = build_cluster(nodes, seed=seed, cores=8)
    scheduler = ClusterScheduler(
        [
            NodeDescriptor(name=name, cores=capacity or scheduler_capacity(nodes))
            for name in fabric.nodes
        ]
    )
    placement = scheduler.place(chain, policy)
    dataplane = ClusterDataplane(
        fabric, chain, plane, placement, sanitize=sanitize
    )
    recorder = LatencyRecorder()
    request_class = RequestClass("seq", sequence=chain.function_names)
    generator = ClosedLoopGenerator(
        dataplane.ingress_node,
        dataplane,
        WeightedMix([request_class]),
        recorder,
        concurrency=concurrency,
        duration=duration,
        client_overhead=0.0007,
    )
    generator.start()
    fabric.env.run(until=duration)
    fabric.env.run(until=duration + drain)
    run = ClusterRun(
        plane=plane,
        policy=policy,
        nodes=nodes,
        duration=duration,
        recorder=recorder,
        dataplane=dataplane,
        extras={"placement": placement, "generator": generator},
    )
    dataplane.teardown()
    return run


def run_cluster_sweep(
    planes: Sequence[str] = CLUSTER_PLANES,
    policies: Sequence[str] = POLICIES,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    duration: float = 2.0,
    seed: int = 2022,
    sanitize: Optional[bool] = None,
) -> dict:
    """The full sweep plus the single-node λ-NIC offload probe."""
    runs: list[ClusterRun] = []
    for plane in planes:
        for nodes in node_counts:
            # On one node every policy yields the same placement; running
            # chain_locality alone keeps the table free of duplicate rows.
            for policy in (("chain_locality",) if nodes == 1 else policies):
                runs.append(
                    run_cluster_case(
                        plane,
                        policy,
                        nodes,
                        duration=duration,
                        seed=seed,
                        sanitize=sanitize,
                    )
                )
    probe = {
        plane: run_cluster_case(
            plane,
            "chain_locality",
            1,
            duration=duration,
            seed=seed,
            chain_factory=short_chain,
            sanitize=sanitize,
        )
        for plane in ("s-spright", "lambda-nic")
    }
    return {"runs": runs, "probe": probe}


def compute_verdicts(sweep: dict) -> list[str]:
    """The acceptance checks, as stable grep-able lines."""
    runs: list[ClusterRun] = sweep["runs"]
    probe: dict = sweep["probe"]
    verdicts: list[str] = []

    multinode = [r for r in runs if r.plane == "s-spright" and r.nodes > 1]
    by_policy = {r.policy: r for r in multinode}
    if len(by_policy) == len(POLICIES):
        locality = by_policy["chain_locality"]
        rivals = [by_policy["bin_pack"], by_policy["spread"]]
        wins = all(
            locality.p99_ms < rival.p99_ms
            and locality.hops_per_request <= rival.hops_per_request
            for rival in rivals
        )
        verdicts.append(
            "verdict: chain_locality wins for s-spright "
            f"(p99 {locality.p99_ms:.3f} ms vs bin_pack "
            f"{by_policy['bin_pack'].p99_ms:.3f} / spread "
            f"{by_policy['spread'].p99_ms:.3f}; hops "
            f"{locality.hops_per_request:.1f} vs "
            f"{by_policy['bin_pack'].hops_per_request:.1f}/"
            f"{by_policy['spread'].hops_per_request:.1f}): "
            f"{'yes' if wins else 'NO'}"
        )

    if "s-spright" in probe and "lambda-nic" in probe:
        host = probe["s-spright"]
        nic = probe["lambda-nic"]
        near_zero = nic.host_cpu_percent < max(10.0, 0.1 * host.host_cpu_percent)
        verdicts.append(
            "verdict: lambda-nic zero-host offload "
            f"(host CPU {nic.host_cpu_percent:.1f}% vs s-spright "
            f"{host.host_cpu_percent:.1f}%, NIC {nic.nic_cores:.2f} cores): "
            f"{'yes' if near_zero else 'NO'}"
        )

    lambda_runs = [r for r in runs if r.plane == "lambda-nic"]
    if lambda_runs:
        offloaded = sum(r.dataplane.offloaded for r in lambda_runs)
        host_served = sum(r.dataplane.host_serves for r in lambda_runs)
        engaged = offloaded > 0 and host_served > 0
        verdicts.append(
            "verdict: lambda-nic heavy-function host fallback engaged "
            f"(offloaded {offloaded}, host-served {host_served}): "
            f"{'yes' if engaged else 'NO'}"
        )

    leaked = sum(r.leaked_slots for r in runs) + sum(
        r.leaked_slots for r in probe.values()
    )
    verdicts.append(f"leaked shm slots: {leaked}")
    return verdicts


def format_report(sweep: dict) -> str:
    runs: list[ClusterRun] = sweep["runs"]
    probe: dict = sweep["probe"]
    rows = [
        [
            run.plane,
            run.policy,
            run.nodes,
            f"{run.hops_per_request:.1f}",
            f"{run.p99_ms:.3f}",
            f"{run.rps:.0f}",
            f"{run.host_cpu_percent:.1f}",
            f"{run.nic_cores:.2f}",
            run.leaked_slots,
        ]
        for run in runs
    ]
    table = format_table(
        ["plane", "policy", "nodes", "xnode hops/req", "p99 ms", "rps",
         "host CPU %", "NIC cores", "leaked"],
        rows,
        title="Cluster sweep: nodes x placement policy x plane (mixed chain)",
    )
    probe_rows = [
        [
            run.plane,
            f"{run.rps:.0f}",
            f"{run.p99_ms:.3f}",
            f"{run.host_cpu_percent:.1f}",
            f"{run.nic_cores:.2f}",
            run.dataplane.offloaded,
            run.dataplane.host_serves,
        ]
        for run in probe.values()
    ]
    probe_table = format_table(
        ["plane", "rps", "p99 ms", "host CPU %", "NIC cores", "offloaded",
         "host-served"],
        probe_rows,
        title="Offload probe: all-short kv chain, 1 node",
    )
    return "\n\n".join(
        [table, probe_table, "\n".join(compute_verdicts(sweep))]
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro cluster``."""
    config = dict(config or {})
    placement = config.get("placement", "all")
    policies = POLICIES if placement == "all" else (placement,)
    nodes = config.get("nodes", 3)
    node_counts = (1, nodes) if nodes > 1 else (1,)
    sweep = run_cluster_sweep(
        planes=tuple(config.get("planes") or CLUSTER_PLANES),
        policies=policies,
        node_counts=node_counts,
        duration=config.get("duration", 2.0),
        seed=config.get("seed", 2022),
    )
    return format_report(sweep)
