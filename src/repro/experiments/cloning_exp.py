"""The request-cloning lab experiment (``spright-repro cloning``).

Two halves:

1. **Analytic validation** — run the stripped-down PS harness
   (:mod:`repro.cloning.lab`) at (load, clone-factor) points in the two
   regimes the oracle has closed forms for, and check the DES mean response
   matches ``T = E[S_min] / (1 - lambda * E[S_min])`` within tolerance.
   Exponential service (cloning helps: E[S_min] = S/d) and deterministic
   service (cloning is waste: E[S_min] = S) bracket the behaviour space.

2. **Plane sweep** — clone factor x plane on the *real* dataplanes, PS
   pods, 16 KB payloads. Every clone pays its plane's dispatch cost
   (descriptor-only for shared-memory SPRIGHT, full marshal for Knative)
   plus the plane's whole per-delivery pipeline, so the measured optimal
   clone factor is plane-dependent: SPRIGHT keeps winning from extra
   clones after Knative's per-clone overhead has erased the min-of-d gain.

Every verdict is printed as a grep-able ``verdict:`` line so CI can gate
on the outcome without parsing tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cloning import LabResult, expected_min_service, run_clone_point
from ..faults import ResiliencePolicy, clone_cost_for_plane
from ..runtime import FunctionSpec
from ..dataplane import RequestClass
from .common import ScenarioResult, run_closed_loop

#: (target PS load, clone factor) validation points per service regime.
VALIDATION_POINTS = {
    "exp": ((0.3, 2), (0.5, 2), (0.5, 3), (0.65, 3)),
    "deterministic": ((0.3, 2), (0.5, 2), (0.65, 3)),
}
VALIDATION_TOLERANCE = 0.05
SERVICE_MEAN = 1e-3  # 1 ms mean service, the lab's time unit

SWEEP_PLANES = ("s-spright", "knative")
SWEEP_CLONE_FACTORS = (1, 2, 3, 4)
SWEEP_REPLICAS = 4
SWEEP_PAYLOAD = 16384  # makes Knative's per-byte marshal cost visible


@dataclass
class CloningLab:
    """Everything the cloning experiment measured."""

    validation: dict[str, list[LabResult]]
    sweep: dict[str, dict[int, ScenarioResult]]
    optimal: dict[str, int] = field(default_factory=dict)

    def regime_ok(self, dist: str) -> bool:
        return all(
            point.within(VALIDATION_TOLERANCE) for point in self.validation[dist]
        )


def run_validation(
    duration: float = 20.0, seed: int = 2022
) -> dict[str, list[LabResult]]:
    """DES vs oracle at every configured (load, d) point, both regimes.

    ``load`` is the utilization of the *equivalent* M/G/1-PS queue
    (``lambda * E[S_min]``), so the arrival rate is derived per point —
    comparing regimes at equal effective load, not equal arrival rate.
    """
    results: dict[str, list[LabResult]] = {}
    for dist, points in VALIDATION_POINTS.items():
        regime: list[LabResult] = []
        for load, clone_factor in points:
            smin = expected_min_service(SERVICE_MEAN, clone_factor, dist)
            lam = load / smin
            regime.append(
                run_clone_point(
                    lam,
                    SERVICE_MEAN,
                    clone_factor,
                    dist=dist,
                    duration=duration,
                    warmup=min(2.0, duration * 0.1),
                    seed=seed,
                )
            )
        results[dist] = regime
    return results


def sweep_function() -> FunctionSpec:
    """The PS function the plane sweep deploys on every plane."""
    return FunctionSpec(
        name="clone-fn",
        service_time=SERVICE_MEAN,
        service_dist="exp",
        service_discipline="ps",
        concurrency=256,
        min_scale=SWEEP_REPLICAS,
        max_scale=SWEEP_REPLICAS,
    )


def sweep_request_class() -> RequestClass:
    return RequestClass(
        name="clone-sweep",
        sequence=["clone-fn"],
        payload_size=SWEEP_PAYLOAD,
        response_size=1024,
    )


def run_plane_sweep(
    duration: float = 6.0,
    seed: int = 2022,
    planes: tuple[str, ...] = SWEEP_PLANES,
    clone_factors: tuple[int, ...] = SWEEP_CLONE_FACTORS,
) -> dict[str, dict[int, ScenarioResult]]:
    """Clone factor x plane on the real dataplanes (closed loop, PS pods)."""
    sweep: dict[str, dict[int, ScenarioResult]] = {}
    for plane in planes:
        cost = clone_cost_for_plane(plane)
        sweep[plane] = {}
        for d in clone_factors:
            policy = ResiliencePolicy(clone_factor=d, clone_cost=cost)
            sweep[plane][d] = run_closed_loop(
                plane,
                [sweep_function()],
                [sweep_request_class()],
                concurrency=4,
                duration=duration,
                scale=0.1,
                seed=seed,
                client_overhead=0.002,
                resilience=policy if policy.enabled() else None,
            )
    return sweep


def measured_optimum(per_d: dict[int, ScenarioResult]) -> int:
    """The clone factor with the lowest mean response time."""
    return min(per_d, key=lambda d: per_d[d].latency_ms("mean"))


def run_cloning_lab(
    validation_duration: float = 20.0,
    sweep_duration: float = 6.0,
    seed: int = 2022,
) -> CloningLab:
    validation = run_validation(duration=validation_duration, seed=seed)
    sweep = run_plane_sweep(duration=sweep_duration, seed=seed)
    lab = CloningLab(validation=validation, sweep=sweep)
    for plane, per_d in sweep.items():
        lab.optimal[plane] = measured_optimum(per_d)
    return lab


# -- reporting -----------------------------------------------------------------
def format_validation_table(validation: dict[str, list[LabResult]]) -> str:
    lines = [
        "Cloning validation: DES vs M/G/1-PS(S_min) oracle "
        f"(tolerance {VALIDATION_TOLERANCE:.0%})",
        f"{'regime':<14} {'load':>5} {'d':>2} {'jobs':>7} "
        f"{'DES ms':>8} {'oracle ms':>10} {'err %':>6}  pass",
    ]
    for dist, points in validation.items():
        for point in points:
            load = point.lam * expected_min_service(
                SERVICE_MEAN, point.clone_factor, dist
            )
            lines.append(
                f"{dist:<14} {load:>5.2f} {point.clone_factor:>2} "
                f"{point.completed:>7} {point.mean_response * 1e3:>8.4f} "
                f"{point.analytic * 1e3:>10.4f} "
                f"{point.relative_error * 100:>6.2f}  "
                f"{'yes' if point.within(VALIDATION_TOLERANCE) else 'NO'}"
            )
    return "\n".join(lines)


def format_sweep_table(lab: CloningLab) -> str:
    lines = [
        "Clone-factor sweep on real dataplanes "
        f"(exp service, PS pods, {SWEEP_REPLICAS} replicas, "
        f"{SWEEP_PAYLOAD // 1024} KB payload)",
        f"{'plane':<12} " + " ".join(f"{f'd={d} ms':>10}" for d in SWEEP_CLONE_FACTORS)
        + f"  {'optimal d':>9}",
    ]
    for plane, per_d in lab.sweep.items():
        cells = " ".join(
            f"{per_d[d].latency_ms('mean'):>10.3f}" if d in per_d else f"{'-':>10}"
            for d in SWEEP_CLONE_FACTORS
        )
        lines.append(f"{plane:<12} {cells}  {lab.optimal[plane]:>9}")
    return "\n".join(lines)


def format_counters(lab: CloningLab) -> str:
    """Cloning counters from the heaviest SPRIGHT sweep point."""
    plane = lab.sweep.get("s-spright") or next(iter(lab.sweep.values()))
    heaviest = plane[max(plane)]
    counters = heaviest.node.counters.as_dict()
    lines = [f"cloning counters ({heaviest.plane}, d={max(plane)}):"]
    for name in ("clones", "win_clone", "win_primary", "cancelled"):
        lines.append(f"  cloning/{name:<12} {counters.get(f'cloning/{name}', 0):>10}")
    return "\n".join(lines)


def format_verdicts(lab: CloningLab) -> str:
    lines = []
    for dist in VALIDATION_POINTS:
        ok = lab.regime_ok(dist)
        lines.append(
            f"verdict: analytic match ({dist} regime): {'yes' if ok else 'NO'}"
        )
    spright_d = lab.optimal.get("s-spright")
    knative_d = lab.optimal.get("knative")
    if spright_d is not None and knative_d is not None:
        ok = spright_d >= knative_d
        lines.append(
            "verdict: plane-dependent optimal clone factor "
            f"(s-spright d={spright_d} >= knative d={knative_d}): "
            f"{'yes' if ok else 'NO'}"
        )
    return "\n".join(lines)


def format_report(lab: CloningLab) -> str:
    return "\n\n".join(
        [
            format_validation_table(lab.validation),
            format_sweep_table(lab),
            format_counters(lab),
            format_verdicts(lab),
        ]
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro cloning``."""
    config = dict(config or {})
    duration = config.get("duration", 20.0)
    lab = run_cloning_lab(
        validation_duration=duration,
        sweep_duration=config.get("sweep_duration", duration * 0.3),
        seed=config.get("seed", 2022),
    )
    return format_report(lab)
