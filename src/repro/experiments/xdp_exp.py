"""E10 (§3.5): eBPF XDP/TC acceleration of the external data path.

Compares S-SPRIGHT with and without XDP/TC redirection on the
ingress -> SPRIGHT-gateway leg. The paper reports 1.3x throughput and ~20%
latency reduction under peak load for the accelerated path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataplane import SprightParams, nginx_function
from ..dataplane.base import RequestClass
from ..stats import format_table
from .common import run_closed_loop

CHAIN = ["fn-1", "fn-2"]


@dataclass
class XdpPoint:
    accelerated: bool
    rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    gateway_cpu: float


def run_point(
    accelerated: bool,
    concurrency: int = 64,
    duration: float = 2.0,
    seed: int = 2022,
) -> XdpPoint:
    result = run_closed_loop(
        "s-spright",
        [nginx_function(name) for name in CHAIN],
        [RequestClass(name="xdp", sequence=CHAIN, payload_size=100)],
        concurrency=concurrency,
        duration=duration,
        seed=seed,
        client_overhead=0.0004,
        spright_params=SprightParams(use_xdp_acceleration=accelerated),
    )
    return XdpPoint(
        accelerated=accelerated,
        rps=result.rps,
        mean_latency_ms=result.latency_ms("mean"),
        p95_latency_ms=result.latency_ms("p95"),
        gateway_cpu=result.cpu_percent("gw"),
    )


def run_xdp_comparison(concurrency: int = 64, duration: float = 2.0) -> dict:
    baseline = run_point(False, concurrency=concurrency, duration=duration)
    accelerated = run_point(True, concurrency=concurrency, duration=duration)
    return {
        "baseline": baseline,
        "accelerated": accelerated,
        "throughput_gain": accelerated.rps / baseline.rps,
        "latency_reduction": 1 - accelerated.mean_latency_ms / baseline.mean_latency_ms,
    }


def format_report(comparison: dict) -> str:
    rows = [
        [
            "kernel stack" if not point.accelerated else "XDP/TC redirect",
            f"{point.rps / 1e3:.1f}K",
            point.mean_latency_ms,
            point.p95_latency_ms,
            point.gateway_cpu,
        ]
        for point in (comparison["baseline"], comparison["accelerated"])
    ]
    title = (
        "§3.5: external-path acceleration "
        f"(throughput x{comparison['throughput_gain']:.2f}, "
        f"latency -{comparison['latency_reduction'] * 100:.0f}%)"
    )
    return format_table(
        ["external path", "RPS", "mean (ms)", "p95 (ms)", "GW CPU %"], rows, title=title
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro xdp``."""
    config = dict(config or {})
    return format_report(run_xdp_comparison(duration=config.get("duration", 2.0)))
