"""E5/E6/E7 (Figs 9, 10, Table 5): the online boutique under four planes.

Locust-style closed loop (think time 1-10 s, spawn-rate ramp) over the six
Table 3 chains. The paper drives Knative and gRPC at 5K users and the two
SPRIGHT variants at 25K; at ``scale`` < 1 both the user population and the
node's cores shrink together, preserving the offered-load-to-capacity ratio
(and therefore the overload behaviour Fig 9/10 show).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dataplane import KnativeParams
from ..stats import LatencyRecorder, format_table
from ..workloads import boutique
from .common import ScenarioResult, run_closed_loop

# Paper concurrency levels per plane.
USERS = {"knative": 5000, "grpc": 5000, "s-spright": 25000, "d-spright": 25000}
SPAWN_RATES = {"knative": 200, "grpc": 200, "s-spright": 500, "d-spright": 500}


def knative_boutique_params() -> KnativeParams:
    """Boutique mode: Istio mediates fn-to-fn; no 2-core pinned front-end."""
    return KnativeParams(
        broker_pinned_cores=None,
        broker_path_cpu=30e-6,
        broker_overhead_cpu=300e-6,   # Envoy-grade mediation per transition
    )


@dataclass
class BoutiqueRun:
    plane: str
    users: int
    duration: float
    recorder: LatencyRecorder
    result: ScenarioResult

    @property
    def rps(self) -> float:
        return self.result.rps

    def latency_ms(self, which: str = "mean") -> float:
        return self.result.latency_ms(which)

    def chain_cdf(self, chain: str):
        return self.recorder.cdf(group=chain)

    def chain_summary(self, chain: str):
        return self.recorder.summary(group=chain)

    def rps_series(self, bucket: float = 5.0):
        return self.recorder.throughput_series(bucket=bucket, until=self.duration)

    def latency_series(self, bucket: float = 5.0):
        return self.recorder.latency_series(bucket=bucket)

    def cpu(self, prefix: str) -> float:
        return self.result.cpu_percent(prefix)


def run_boutique(
    plane: str,
    scale: float = 0.1,
    duration: float = 60.0,
    seed: int = 2022,
    users: Optional[int] = None,
) -> BoutiqueRun:
    users = users if users is not None else max(8, int(USERS[plane] * scale))
    spawn_rate = max(4.0, SPAWN_RATES[plane] * scale)
    functions = (
        boutique.spright_functions()
        if plane in ("s-spright", "d-spright")
        else boutique.go_grpc_functions()
    )
    result = run_closed_loop(
        plane,
        functions,
        boutique.request_classes(),
        concurrency=users,
        duration=duration,
        scale=scale,
        seed=seed,
        spawn_rate=spawn_rate,
        think_time=boutique.locust_think_time,
        client_overhead=0.0005,
        knative_params=knative_boutique_params() if plane == "knative" else None,
    )
    return BoutiqueRun(
        plane=plane,
        users=users,
        duration=duration,
        recorder=result.recorder,
        result=result,
    )


@dataclass
class BoutiqueComparison:
    runs: dict = field(default_factory=dict)

    def run_all(
        self, scale: float = 0.1, duration: float = 60.0, seed: int = 2022
    ) -> "BoutiqueComparison":
        for plane in ("knative", "grpc", "s-spright", "d-spright"):
            self.runs[plane] = run_boutique(
                plane, scale=scale, duration=duration, seed=seed
            )
        return self

    def table5(self) -> list[list]:
        """Table 5's layout: 95/99/mean latency per plane."""
        rows = []
        for plane, run in self.runs.items():
            summary = run.recorder.summary("")
            rows.append(
                [
                    plane,
                    run.users,
                    summary.p95 * 1e3,
                    summary.p99 * 1e3,
                    summary.mean * 1e3,
                ]
            )
        return rows


def format_table5(comparison: BoutiqueComparison) -> str:
    return format_table(
        ["plane", "users", "p95 (ms)", "p99 (ms)", "mean (ms)"],
        comparison.table5(),
        title="Table 5: online boutique latency across planes",
    )


def format_fig9(comparison: BoutiqueComparison, bucket: float = 5.0) -> str:
    rows = []
    for plane, run in comparison.runs.items():
        for time_point, rps in run.rps_series(bucket=bucket):
            rows.append([plane, time_point, rps])
    return format_table(
        ["plane", "t (s)", "RPS"], rows, title="Fig 9: boutique RPS time series"
    )


def format_fig10(comparison: BoutiqueComparison) -> str:
    rows = []
    for plane, run in comparison.runs.items():
        for chain in sorted(boutique.CALL_SEQUENCES):
            if run.recorder.count(chain) == 0:
                continue
            summary = run.chain_summary(chain)
            rows.append(
                [plane, chain, summary.count, summary.mean * 1e3, summary.p95 * 1e3]
            )
        rows.append(
            [
                plane,
                "CPU: gw/fn/qp %",
                round(run.cpu("gw")),
                round(run.cpu("fn")),
                round(run.cpu("qp")),
            ]
        )
    return format_table(
        ["plane", "chain", "count", "mean (ms)", "p95 (ms)"],
        rows,
        title="Fig 10: boutique per-chain latency + CPU",
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro boutique``."""
    config = dict(config or {})
    comparison = BoutiqueComparison().run_all(
        scale=config.get("scale", 0.1),
        duration=config.get("duration", 60.0),
        seed=config.get("seed", 2022),
    )
    return "\n\n".join(
        [
            format_fig9(comparison, bucket=10.0),
            format_fig10(comparison),
            format_table5(comparison),
        ]
    )
