"""E9 (Fig 12): parking image detection & charging — pre-warm vs SPRIGHT.

The workload is strictly periodic (164 snapshots every 240 s), so Knative is
given the best case the paper grants it: functions are pre-warmed 20 s before
each burst and scaled to zero in between (30 s grace, with the observed slow
80 s termination). S-SPRIGHT simply keeps its pods warm. The paper reports
S-SPRIGHT saving ~41% CPU and ~16% response time over the 700 s experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime import Autoscaler, AutoscalerPolicy, Kubelet, MetricsServer
from ..stats import LatencyRecorder, format_table
from ..workloads import OpenLoopGenerator
from ..workloads.parking import (
    ParkingTraceParams,
    next_burst_times,
    parking_functions,
    synthesize_parking_trace,
)
from .common import build_plane, make_node

PREWARM_LEAD = 20.0  # seconds before each burst (§4.2.2)


@dataclass
class ParkingRun:
    plane: str
    duration: float
    recorder: LatencyRecorder
    node: object
    plane_obj: object

    def latency_ms(self, which: str = "mean") -> float:
        return getattr(self.recorder.summary(""), which) * 1e3

    def total_cpu_core_seconds(self) -> float:
        prefix = f"{self.plane_obj.plane}/"
        accounting = self.node.cpu.accounting
        return sum(
            busy
            for tag, busy in accounting.total_busy.items()
            if tag.startswith(prefix)
        )

    def cpu_series(self, bucket: float = 1.0):
        return self.node.cpu_series_prefix(f"{self.plane_obj.plane}/", self.duration)

    def latency_series(self, bucket: float = 30.0):
        return self.recorder.latency_series(bucket=bucket)


def run_parking(
    plane: str,
    duration: float = 700.0,
    seed: int = 2022,
    prewarm: bool = True,
    trace_params: Optional[ParkingTraceParams] = None,
) -> ParkingRun:
    params = trace_params or ParkingTraceParams(duration=duration)
    node = make_node(seed=seed)
    zero_scale = plane in ("knative", "grpc")
    functions = parking_functions(min_scale=0 if zero_scale else 1)
    kubelet = Kubelet(
        node,
        cold_start_enabled=zero_scale,
        termination_lag=node.config.termination_lag if zero_scale else 0.0,
    )
    metrics = MetricsServer(registry=node.obs.registry)
    plane_obj = build_plane(plane, node, functions, kubelet=kubelet, metrics_server=metrics)
    if zero_scale:
        autoscaler = Autoscaler(node, metrics)
        for deployment in plane_obj.deployments.values():
            autoscaler.register(
                deployment,
                AutoscalerPolicy(scale_to_zero=True, grace_period=30.0),
            )
        autoscaler.start()
        if prewarm:
            for burst_time in next_burst_times(params):
                for deployment in plane_obj.deployments.values():
                    autoscaler.prewarm(
                        deployment, at_time=max(0.0, burst_time - PREWARM_LEAD)
                    )
    recorder = LatencyRecorder()
    trace = synthesize_parking_trace(node, params)
    OpenLoopGenerator(node, plane_obj, trace, recorder).start()
    node.run(until=duration)
    return ParkingRun(
        plane=plane,
        duration=duration,
        recorder=recorder,
        node=node,
        plane_obj=plane_obj,
    )


def run_fig12(duration: float = 700.0, seed: int = 2022):
    return {
        "knative": run_parking("knative", duration=duration, seed=seed, prewarm=True),
        "s-spright": run_parking("s-spright", duration=duration, seed=seed),
    }


def format_report(runs: dict) -> str:
    rows = []
    for plane, run in runs.items():
        summary = run.recorder.summary("")
        rows.append(
            [
                plane,
                summary.count,
                summary.mean,
                summary.p95,
                round(run.total_cpu_core_seconds(), 1),
            ]
        )
    knative = runs.get("knative")
    spright = runs.get("s-spright")
    title = "Fig 12: parking detection & charging — pre-warmed Knative vs S-SPRIGHT"
    if knative and spright:
        cpu_saving = 1 - spright.total_cpu_core_seconds() / max(
            1e-9, knative.total_cpu_core_seconds()
        )
        latency_saving = 1 - spright.recorder.summary("").mean / max(
            1e-9, knative.recorder.summary("").mean
        )
        title += (
            f"\nS-SPRIGHT saves {cpu_saving * 100:.0f}% CPU and "
            f"{latency_saving * 100:.0f}% mean response time"
        )
    return format_table(
        ["plane", "requests", "mean (s)", "p95 (s)", "CPU core-seconds"],
        rows,
        title=title,
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro parking``."""
    config = dict(config or {})
    runs = run_fig12(
        duration=config.get("duration", 700.0), seed=config.get("seed", 2022)
    )
    return format_report(runs)
