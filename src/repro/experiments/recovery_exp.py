"""Recovery experiment: self-healing under crash storms and overload.

Two scenario families, each run per plane over the boutique (closed loop)
and motion (open loop) workloads:

* **crash-storm** — the ``crash-storm`` fault plan kills pods permanently;
  the :class:`~repro.recovery.PodSupervisor` must detect each crash,
  reclaim the dead instance's shared-memory orphans, and bring up a
  replacement behind backoff. The availability table reports goodput, MTTR
  (detect -> replacement ready), restart/orphan counters, and tail latency
  *during* the recovery window vs *after* it — the paper-style "how bad was
  the dip and how fast did it close";
* **overload** — no faults: the closed loop is driven far past capacity,
  with and without gateway admission control. The point of comparison is
  the no-collapse property: shedding early (bounded queues + CoDel-style
  degradation, lowest-priority classes first) must not cost goodput.

Every run is deterministic per seed. With no plan armed and no recovery or
admission attached, the underlying runners are byte-identical to the
fault-free experiments (regression-tested in ``tests/test_recovery.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..faults import FaultPlan, load_plan
from ..recovery import AdmissionPolicy, SupervisorPolicy
from ..stats import format_table, window_percentile_cells_ms
from ..workloads import boutique
from .boutique_exp import SPAWN_RATES, USERS, knative_boutique_params
from .common import run_closed_loop
from .motion_exp import run_motion

ALL_PLANES = ("knative", "grpc", "s-spright", "d-spright")

#: extra simulated seconds after the load stops, letting in-flight requests
#: finish so the zero-leaked-slots check sees a quiesced pool.
DRAIN = 10.0


@dataclass
class RecoveryRunResult:
    """One (plane, workload, scenario) row of the availability table."""

    plane: str
    workload: str
    scenario: str
    duration: float
    sent: int
    completed: int
    failed: int
    shed: int
    crashes_detected: int = 0
    restarts: int = 0
    restored: int = 0
    orphans_reclaimed: int = 0
    sanitizer_orphans: int = 0
    mttr_mean_s: float = 0.0
    mttr_max_s: float = 0.0
    p99_during_ms: float = float("nan")
    p999_during_ms: float = float("nan")
    p99_after_ms: float = float("nan")
    p999_after_ms: float = float("nan")
    leaked_slots: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Successful completions per simulated second of offered load."""
        return self.completed / self.duration if self.duration else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.sent if self.sent else 0.0

    def as_dict(self) -> dict:
        return {
            "plane": self.plane,
            "workload": self.workload,
            "scenario": self.scenario,
            "sent": self.sent,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "goodput": self.goodput,
            "shed_rate": self.shed_rate,
            "crashes_detected": self.crashes_detected,
            "restarts": self.restarts,
            "restored": self.restored,
            "orphans_reclaimed": self.orphans_reclaimed,
            "sanitizer_orphans": self.sanitizer_orphans,
            "mttr_mean_s": self.mttr_mean_s,
            "mttr_max_s": self.mttr_max_s,
            "p99_during_ms": self.p99_during_ms,
            "p999_during_ms": self.p999_during_ms,
            "p99_after_ms": self.p99_after_ms,
            "p999_after_ms": self.p999_after_ms,
            "leaked_slots": self.leaked_slots,
            "extras": dict(self.extras),
        }


def prioritized_request_classes() -> list:
    """Boutique's chains with workload-class priorities for degradation.

    Ch-3 (the weight-10 browse chain) is the bulk tier shed first; the
    low-volume Ch-1/Ch-6 chains are the protected tier shed last.
    """
    tiers = {"Ch-1": 2, "Ch-6": 2, "Ch-3": 0}
    return [
        replace(cls, priority=tiers.get(cls.name, 1))
        for cls in boutique.request_classes()
    ]


def default_recovery_policy() -> SupervisorPolicy:
    """The CLI's supervisor shape: fast sweeps, sub-second restart cost."""
    return SupervisorPolicy(check_interval=0.25, restart_cost_mean=0.5)


def default_admission_policy(queue_limit: int = 64) -> AdmissionPolicy:
    """The CLI's admission shape: queue bound + CoDel-style degradation."""
    return AdmissionPolicy(
        queue_limit=queue_limit, target_delay=0.25, delay_window=0.5
    )


def _leak_check(plane_obj) -> tuple[int, int]:
    """(leaked slots, sanitizer-observed orphan reclaims) for SPRIGHT planes.

    Counts buffers still live after the drain via the chain sanitizer's
    teardown check (allocation sites land in its violation log); planes
    without a shared-memory pool trivially leak nothing.
    """
    runtime = getattr(plane_obj, "runtime", None)
    if runtime is None:
        return 0, 0
    sanitizer = runtime.sanitizer
    if sanitizer is None:
        return len(runtime.pool.live_handles()), 0
    return len(sanitizer.check_teardown(runtime.pool)), sanitizer.orphan_reclaims


def _recovery_window(
    fault_plan: Optional[FaultPlan], supervisor, duration: float
) -> tuple[float, float]:
    """[first fault, last replacement ready) — the degraded interval."""
    if fault_plan is None or not fault_plan.faults:
        return 0.0, 0.0
    start = min(spec.at for spec in fault_plan.faults)
    if supervisor is not None and supervisor.restored_at:
        end = min(max(supervisor.restored_at), duration)
    else:
        end = duration
    return start, end


def _harvest_recovery(node, supervisor) -> dict:
    counters = node.counters.as_dict()
    return {
        "crashes_detected": counters.get("recovery/crashes_detected", 0),
        "restarts": counters.get("recovery/restarts", 0),
        "restored": counters.get("recovery/restored", 0),
        "orphans_reclaimed": counters.get("recovery/orphans_reclaimed", 0),
        "shed": counters.get("recovery/shed", 0),
        "mttr_mean_s": supervisor.mttr_mean() if supervisor else 0.0,
        "mttr_max_s": supervisor.mttr_max() if supervisor else 0.0,
    }


def run_recovery_boutique(
    plane: str,
    fault_plan: Optional[FaultPlan] = None,
    recovery: Optional[SupervisorPolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
    scale: float = 0.05,
    duration: float = 30.0,
    seed: int = 2022,
    drain: float = DRAIN,
) -> RecoveryRunResult:
    """Boutique closed loop through a crash storm with the supervisor on."""
    if fault_plan is None:
        fault_plan = load_plan("crash-storm")
    if recovery is None:
        recovery = default_recovery_policy()
    users = max(8, int(USERS[plane] * scale))
    spawn_rate = max(4.0, SPAWN_RATES[plane] * scale)
    functions = (
        boutique.spright_functions()
        if plane in ("s-spright", "d-spright")
        else boutique.go_grpc_functions()
    )
    result = run_closed_loop(
        plane,
        functions,
        prioritized_request_classes(),
        concurrency=users,
        duration=duration,
        scale=scale,
        seed=seed,
        spawn_rate=spawn_rate,
        think_time=boutique.locust_think_time,
        client_overhead=0.0005,
        knative_params=knative_boutique_params() if plane == "knative" else None,
        sanitize=True,
        fault_plan=fault_plan,
        admission=admission,
        recovery=recovery,
    )
    # Quiesce: let in-flight requests finish so the leak check is honest.
    result.node.run(until=duration + drain)
    supervisor = result.extras["supervisor"]
    generator = result.extras["generator"]
    stats = _harvest_recovery(result.node, supervisor)
    start, end = _recovery_window(fault_plan, supervisor, duration)
    p99_d, p999_d = window_percentile_cells_ms(result.recorder, start, end)
    p99_a, p999_a = window_percentile_cells_ms(
        result.recorder, end, duration + drain
    )
    leaked, sanitizer_orphans = _leak_check(result.plane_obj)
    return RecoveryRunResult(
        plane=plane,
        workload="boutique",
        scenario="crash-storm",
        duration=duration,
        sent=generator.requests_sent,
        completed=result.recorder.count(""),
        failed=generator.requests_failed,
        shed=stats["shed"],
        crashes_detected=stats["crashes_detected"],
        restarts=stats["restarts"],
        restored=stats["restored"],
        orphans_reclaimed=stats["orphans_reclaimed"],
        sanitizer_orphans=sanitizer_orphans,
        mttr_mean_s=stats["mttr_mean_s"],
        mttr_max_s=stats["mttr_max_s"],
        p99_during_ms=p99_d,
        p999_during_ms=p999_d,
        p99_after_ms=p99_a,
        p999_after_ms=p999_a,
        leaked_slots=leaked,
        extras={"recovery_window": (start, end)},
    )


def run_recovery_motion(
    plane: str,
    fault_plan: Optional[FaultPlan] = None,
    recovery: Optional[SupervisorPolicy] = None,
    duration: float = 600.0,
    seed: int = 2022,
) -> RecoveryRunResult:
    """Motion open loop through a crash storm with the supervisor on."""
    if fault_plan is None:
        fault_plan = load_plan("crash-storm")
    if recovery is None:
        recovery = default_recovery_policy()
    run = run_motion(
        plane,
        duration=duration,
        seed=seed,
        fault_plan=fault_plan,
        recovery=recovery,
        sanitize=True,
    )
    run.node.run(until=duration + DRAIN)
    stats = _harvest_recovery(run.node, run.supervisor)
    start, end = _recovery_window(fault_plan, run.supervisor, duration)
    p99_d, p999_d = window_percentile_cells_ms(run.recorder, start, end)
    p99_a, p999_a = window_percentile_cells_ms(run.recorder, end, duration + DRAIN)
    leaked, sanitizer_orphans = _leak_check(run.plane_obj)
    return RecoveryRunResult(
        plane=plane,
        workload="motion",
        scenario="crash-storm",
        duration=duration,
        sent=run.generator.submitted,
        completed=run.recorder.count(""),
        failed=run.generator.failed,
        shed=stats["shed"],
        crashes_detected=stats["crashes_detected"],
        restarts=stats["restarts"],
        restored=stats["restored"],
        orphans_reclaimed=stats["orphans_reclaimed"],
        sanitizer_orphans=sanitizer_orphans,
        mttr_mean_s=stats["mttr_mean_s"],
        mttr_max_s=stats["mttr_max_s"],
        p99_during_ms=p99_d,
        p999_during_ms=p999_d,
        p99_after_ms=p99_a,
        p999_after_ms=p999_a,
        leaked_slots=leaked,
        extras={"recovery_window": (start, end)},
    )


def run_overload_boutique(
    plane: str,
    admission: Optional[AdmissionPolicy] = None,
    users: int = 48,
    scale: float = 0.02,
    duration: float = 5.0,
    seed: int = 2022,
) -> RecoveryRunResult:
    """Boutique driven past capacity, with vs without admission control.

    Overload comes from the demand side *and* the supply side: a small node
    (``scale``) is hit by a zero-think closed loop of ``users`` clients —
    far more concurrency than the chain can serve at its latency target.
    The identical overload runs twice — once unprotected, once with the
    admission policy — and the protected run is reported, with the
    unprotected goodput in ``extras["goodput_no_shed"]`` for the
    no-collapse comparison.
    """
    if admission is None:
        # Size the queue bound just under the offered concurrency, and put
        # the sojourn target between the healthy floor (~0.1-0.9 ms: even
        # the fastest chain rides empty queues) and the overloaded floor
        # (~1.4 ms: every window's luckiest request still queued). The CoDel
        # law then engages only when a standing queue forms.
        # max_degrade_level=1 sheds only the bulk browse tier (priority 0):
        # in a closed loop, shed clients re-draw immediately, so deeper
        # degradation just starves the admitted classes without relieving
        # concurrency — level 1 is where goodput actually improves.
        admission = AdmissionPolicy(
            queue_limit=max(8, int(users * 0.8)),
            target_delay=0.001,
            delay_window=0.5,
            max_degrade_level=1,
        )
    functions = (
        boutique.spright_functions()
        if plane in ("s-spright", "d-spright")
        else boutique.go_grpc_functions()
    )
    kwargs = dict(
        concurrency=users,
        duration=duration,
        scale=scale,
        seed=seed,
        spawn_rate=max(32.0, users / 2.0),
        client_overhead=0.0005,
        knative_params=knative_boutique_params() if plane == "knative" else None,
        sanitize=True,
    )
    baseline = run_closed_loop(
        plane, functions, prioritized_request_classes(), **kwargs
    )
    protected = run_closed_loop(
        plane, functions, prioritized_request_classes(), admission=admission, **kwargs
    )
    protected.node.run(until=duration + DRAIN)
    generator = protected.extras["generator"]
    counters = protected.node.counters.as_dict()
    shed_by_class = {
        name.rsplit("/", 1)[-1]: count
        for name, count in sorted(counters.items())
        if name.startswith("recovery/shed/")
    }
    p99, p999 = window_percentile_cells_ms(protected.recorder, 0.0, math.inf)
    base_p99, _ = window_percentile_cells_ms(baseline.recorder, 0.0, math.inf)
    leaked, _ = _leak_check(protected.plane_obj)
    return RecoveryRunResult(
        plane=plane,
        workload="boutique",
        scenario="overload",
        duration=duration,
        sent=generator.requests_sent,
        completed=protected.recorder.count(""),
        failed=generator.requests_failed,
        shed=counters.get("recovery/shed", 0),
        p99_during_ms=p99,
        p999_during_ms=p999,
        p99_after_ms=p99,
        p999_after_ms=p999,
        leaked_slots=leaked,
        extras={
            "goodput_no_shed": baseline.recorder.count("") / duration,
            "p99_no_shed_ms": base_p99,
            "shed_by_class": shed_by_class,
            "degrade_ups": counters.get("recovery/degrade_ups", 0),
            "degrade_downs": counters.get("recovery/degrade_downs", 0),
        },
    )


def run_recovery_suite(
    planes: Sequence[str] = ALL_PLANES,
    scale: float = 0.05,
    boutique_duration: float = 30.0,
    motion_duration: float = 600.0,
    seed: int = 2022,
    include_overload: bool = True,
) -> list[RecoveryRunResult]:
    """Crash-storm (both workloads) and overload rows for every plane."""
    results = []
    for plane in planes:
        results.append(
            run_recovery_boutique(
                plane, scale=scale, duration=boutique_duration, seed=seed
            )
        )
    for plane in planes:
        results.append(
            run_recovery_motion(plane, duration=motion_duration, seed=seed)
        )
    if include_overload:
        for plane in planes:
            # The overload probe keeps its own tuned shape (small node,
            # zero-think clients, short horizon) — the crash-storm scale
            # and duration would dilute it below saturation.
            results.append(run_overload_boutique(plane, seed=seed))
    return results


def format_availability_table(results: Sequence[RecoveryRunResult]) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                r.plane,
                r.workload,
                r.scenario,
                r.sent,
                round(r.goodput, 1),
                round(100.0 * r.shed_rate, 1),
                r.restored,
                round(r.mttr_mean_s, 2),
                r.orphans_reclaimed,
                r.leaked_slots,
                round(r.p99_during_ms, 2),
                round(r.p99_after_ms, 2),
                round(r.p999_during_ms, 2),
                round(r.p999_after_ms, 2),
            ]
        )
    return format_table(
        [
            "plane",
            "workload",
            "scenario",
            "sent",
            "goodput (rps)",
            "shed %",
            "restored",
            "MTTR (s)",
            "orphans",
            "leaked",
            "p99 dur (ms)",
            "p99 aft (ms)",
            "p999 dur (ms)",
            "p999 aft (ms)",
        ],
        rows,
        title="Availability under crash storms and overload",
    )


def format_overload_comparison(results: Sequence[RecoveryRunResult]) -> str:
    """The no-collapse check: goodput/p99 with admission vs without."""
    rows = []
    for r in results:
        if r.scenario != "overload":
            continue
        rows.append(
            [
                r.plane,
                round(r.extras.get("goodput_no_shed", 0.0), 1),
                round(r.goodput, 1),
                round(r.extras.get("p99_no_shed_ms", float("nan")), 2),
                round(r.p99_during_ms, 2),
                r.shed,
                r.extras.get("degrade_ups", 0),
            ]
        )
    if not rows:
        rows.append(["-", 0, 0, 0, 0, 0, 0])
    return format_table(
        [
            "plane",
            "goodput no-shed",
            "goodput shed",
            "p99 no-shed (ms)",
            "p99 shed (ms)",
            "shed",
            "degrade ups",
        ],
        rows,
        title="Overload: admission control vs unprotected (no-collapse)",
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro recovery``."""
    config = dict(config or {})
    duration = config.get("duration", 30.0)
    include_overload = config.get("include_overload", True)
    results = run_recovery_suite(
        planes=tuple(config.get("planes") or ALL_PLANES),
        scale=config.get("scale", 0.1),
        boutique_duration=duration,
        motion_duration=config.get("motion_duration", duration * 20),
        seed=config.get("seed", 2022),
        include_overload=include_overload,
    )
    sections = [format_availability_table(results)]
    if include_overload:
        sections.append(format_overload_comparison(results))
    return "\n\n".join(sections)
