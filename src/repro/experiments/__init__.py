"""Experiment runners: one module per table/figure of the paper.

| module        | artifact             |
|---------------|----------------------|
| audits        | Tables 1 and 2       |
| fig2          | Fig 2 (sidecars)     |
| fig5          | Fig 5 + §3.2.2 spots |
| boutique_exp  | Figs 9, 10, Table 5  |
| motion_exp    | Fig 11               |
| parking_exp   | Fig 12               |
| xdp_exp       | §3.5 claim           |
| ablations     | design-choice ablations |
| faults_exp    | resilience table (fault injection) |
| recovery_exp  | availability table (crash storms, overload admission) |
| trace_exp     | traced runs (spans, OpenMetrics, flamegraphs) |
| traffic_exp   | fleet-scale keep-alive economics (§4.2.2 at scale) |
| cluster_exp   | multi-node placement + λ-NIC offload (§3.8) |
| cloning_exp   | request-cloning lab: PS analytics validation + plane sweep |
"""

from . import (
    ablations,
    audits,
    boutique_exp,
    cloning_exp,
    cluster_exp,
    faults_exp,
    fig2,
    fig5,
    motion_exp,
    parking_exp,
    recovery_exp,
    trace_exp,
    traffic_exp,
    xdp_exp,
)

__all__ = [
    "ablations",
    "audits",
    "boutique_exp",
    "cloning_exp",
    "cluster_exp",
    "faults_exp",
    "fig2",
    "fig5",
    "motion_exp",
    "parking_exp",
    "recovery_exp",
    "trace_exp",
    "traffic_exp",
    "xdp_exp",
]
