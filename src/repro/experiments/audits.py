"""E1/E4: regenerate Tables 1 and 2 from executed pipelines."""

from __future__ import annotations

from ..audit import AuditTable, Auditor, DESCRIPTOR_WIRE_BYTES, OverheadKind
from ..dataplane import KnativeDataplane, Request, RequestClass, SSprightDataplane
from ..runtime import FunctionSpec, WorkerNode
from ..stats import format_table

AUDIT_CHAIN = ["fn-1", "fn-2"]  # '1 broker/front-end + 2 functions'


def audit_plane(plane_cls, repetitions: int = 5, seed: int = 2022) -> AuditTable:
    """Run the audit chain on a fresh node and reduce the traces."""
    node = WorkerNode()
    functions = [FunctionSpec(name=name, service_time=0.0) for name in AUDIT_CHAIN]
    plane = plane_cls(node, functions)
    plane.deploy()
    auditor = Auditor(name=plane.plane)
    request_class = RequestClass(name="audit", sequence=AUDIT_CHAIN, payload_size=100)

    def driver(env):
        for _ in range(repetitions):
            request = Request(
                request_class=request_class,
                payload=b"x" * request_class.payload_size,
                created_at=env.now,
                trace=auditor.new_trace(),
            )
            yield env.process(plane.submit(request))

    node.env.process(driver(node.env))
    node.run(until=30.0)
    return auditor.table()


def run_table1() -> AuditTable:
    """Table 1: Knative per-request overhead audit."""
    return audit_plane(KnativeDataplane)


def run_table2() -> AuditTable:
    """Table 2: SPRIGHT per-request overhead audit."""
    return audit_plane(SSprightDataplane)


def format_report() -> str:
    """Both audit tables plus the paper-vs-measured deltas."""
    table1 = run_table1()
    table2 = run_table2()
    rows = []
    for kind in OverheadKind:
        rows.append(
            [
                kind.value,
                table1.external_total(kind),
                table1.chain_total(kind),
                table1.total(kind),
                table2.external_total(kind),
                table2.chain_total(kind),
                table2.total(kind),
            ]
        )
    return format_table(
        ["overhead", "Kn ext", "Kn chain", "Kn total", "SP ext", "SP chain", "SP total"],
        rows,
        title=(
            "Tables 1 & 2: per-request overhead audit ('1 broker + 2 functions'; "
            f"SPRIGHT moves only the {DESCRIPTOR_WIRE_BYTES}-byte descriptor "
            "within the chain)"
        ),
    )


def run_config(config=None) -> str:
    """Shared CLI/scenario entry point for ``spright-repro tables``."""
    return format_report()
