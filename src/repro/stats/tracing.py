"""Per-request timeline analysis: where did the milliseconds go?

Requests created with ``request.enable_timeline()`` collect milestone
timestamps as they traverse a dataplane (ingress, broker/gateway, per-
function delivery and completion, response). These helpers turn the raw
timeline into per-segment durations and rendered waterfalls — the tool you
reach for when a chain's tail latency needs explaining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class Segment:
    """One leg of a request's journey."""

    name: str
    start: float
    duration: float


def segments(timeline: Sequence[tuple[str, float]], created_at: float) -> list[Segment]:
    """Milestone list -> ordered segments (each ends at its milestone)."""
    out = []
    previous = created_at
    for name, stamp in timeline:
        out.append(Segment(name=name, start=previous, duration=stamp - previous))
        previous = stamp
    return out


def service_time(timeline: Sequence[tuple[str, float]]) -> float:
    """Total time inside function service (deliver:* -> served:* pairs)."""
    total = 0.0
    deliveries: dict[str, list[float]] = {}
    for name, stamp in timeline:
        if name.startswith("deliver:"):
            deliveries.setdefault(name.split(":", 1)[1], []).append(stamp)
        elif name.startswith("served:"):
            function = name.split(":", 1)[1]
            stack = deliveries.get(function)
            if stack:
                total += stamp - stack.pop(0)
    return total


def overhead_time(
    timeline: Sequence[tuple[str, float]], created_at: float, completed_at: float
) -> float:
    """Everything that is not function service: the dataplane's share."""
    return (completed_at - created_at) - service_time(timeline)


def waterfall(
    timeline: Sequence[tuple[str, float]],
    created_at: float,
    width: int = 50,
) -> str:
    """ASCII waterfall of one request's segments."""
    parts = segments(timeline, created_at)
    if not parts:
        return "(empty timeline)"
    total = parts[-1].start + parts[-1].duration - created_at
    if total <= 0:
        return "(zero-duration timeline)"
    lines = []
    for segment in parts:
        offset = int((segment.start - created_at) / total * width)
        length = max(1, int(segment.duration / total * width))
        bar = " " * offset + "#" * length
        lines.append(
            f"{segment.name:20s} {bar:<{width + 2}s} {segment.duration * 1e6:9.1f} us"
        )
    lines.append(f"{'total':20s} {'':{width + 2}s} {total * 1e6:9.1f} us")
    return "\n".join(lines)
