"""Per-request timeline analysis: where did the milliseconds go?

Requests created with ``request.enable_timeline()`` collect milestone
timestamps as they traverse a dataplane (ingress, broker/gateway, per-
function delivery and completion, response). These helpers turn the raw
timeline into per-segment durations and rendered waterfalls — the tool you
reach for when a chain's tail latency needs explaining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class Segment:
    """One leg of a request's journey."""

    name: str
    start: float
    duration: float
    # A milestone stamped *earlier* than the previous one (interleaved
    # hedge attempts, clock surgery in tests) cannot be a real leg: the
    # segment is clamped to zero duration and flagged instead of carrying
    # a negative duration downstream.
    out_of_order: bool = False


def segments(timeline: Sequence[tuple[str, float]], created_at: float) -> list[Segment]:
    """Milestone list -> ordered segments (each ends at its milestone).

    Out-of-order stamps are clamped: the segment gets zero duration, its
    ``out_of_order`` flag is set, and the cursor stays at the latest time
    seen so later in-order segments keep their true durations.
    """
    out = []
    previous = created_at
    for name, stamp in timeline:
        if stamp < previous:
            out.append(
                Segment(name=name, start=previous, duration=0.0, out_of_order=True)
            )
        else:
            out.append(Segment(name=name, start=previous, duration=stamp - previous))
            previous = stamp
    return out


def service_time(timeline: Sequence[tuple[str, float]]) -> float:
    """Total time inside function service (deliver:* -> served:* pairs)."""
    total = 0.0
    deliveries: dict[str, list[float]] = {}
    for name, stamp in timeline:
        if name.startswith("deliver:"):
            deliveries.setdefault(name.split(":", 1)[1], []).append(stamp)
        elif name.startswith("served:"):
            function = name.split(":", 1)[1]
            stack = deliveries.get(function)
            if stack:
                total += stamp - stack.pop(0)
    return total


def overhead_time(
    timeline: Sequence[tuple[str, float]], created_at: float, completed_at: float
) -> float:
    """Everything that is not function service: the dataplane's share."""
    return (completed_at - created_at) - service_time(timeline)


def waterfall(
    timeline: Sequence[tuple[str, float]],
    created_at: float,
    width: int = 50,
) -> str:
    """ASCII waterfall of one request's segments."""
    parts = segments(timeline, created_at)
    if not parts:
        return "(empty timeline)"
    total = parts[-1].start + parts[-1].duration - created_at
    if total <= 0:
        return "(zero-duration timeline)"
    lines = []
    for segment in parts:
        offset = int((segment.start - created_at) / total * width)
        if segment.out_of_order:
            # Not a real leg: render an explicit marker, never a fake bar.
            bar = " " * offset + "!"
            lines.append(
                f"{segment.name:20s} {bar:<{width + 2}s} "
                f"{segment.duration * 1e6:9.1f} us (out-of-order)"
            )
            continue
        length = max(1, int(segment.duration / total * width))
        bar = " " * offset + "#" * length
        lines.append(
            f"{segment.name:20s} {bar:<{width + 2}s} {segment.duration * 1e6:9.1f} us"
        )
    lines.append(f"{'total':20s} {'':{width + 2}s} {total * 1e6:9.1f} us")
    return "\n".join(lines)


def waterfall_rows(
    timeline: Sequence[tuple[str, float]], created_at: float
) -> list[dict]:
    """The waterfall as structured rows — the SSE dashboard's wire shape.

    Each row carries the same information the ASCII renderer draws: name,
    start offset and duration (seconds, relative to ``created_at``), the
    fraction-of-total geometry for drawing bars, and the marker — ``#`` for
    a real leg, ``!`` for a clamped out-of-order stamp (mirroring
    :func:`waterfall`; a client must never render a fake bar for those).
    """
    parts = segments(timeline, created_at)
    if not parts:
        return []
    total = parts[-1].start + parts[-1].duration - created_at
    rows = []
    for segment in parts:
        offset = segment.start - created_at
        rows.append(
            {
                "name": segment.name,
                "kind": "phase",
                "start_s": offset,
                "duration_s": segment.duration,
                "offset_frac": (offset / total) if total > 0 else 0.0,
                "width_frac": (segment.duration / total) if total > 0 else 0.0,
                "out_of_order": segment.out_of_order,
                "marker": "!" if segment.out_of_order else "#",
            }
        )
    return rows


def span_waterfall_rows(root, spans: Sequence) -> list[dict]:
    """One traced request's waterfall rows, from its span tree.

    Phase spans become the :func:`waterfall_rows` legs; zero-duration
    *event* spans (fault injections, retries, hedges — category
    ``"event"``) are appended as explicit zero-width marker rows (marker
    ``!``) so the live view shows resilience activity inline with the
    request's legs instead of silently dropping it.

    Stamps the tracer already clamped keep their ``!`` marker too: the
    tracer stores monotonic (clamped) phase boundaries, so re-deriving
    order from the timeline alone would silently launder an out-of-order
    stamp into an innocent zero-width leg — the phase span's own
    ``out_of_order`` attribute is the surviving evidence, folded back in.
    """
    phases = sorted(
        (span for span in spans if getattr(span, "category", None) == "phase"),
        key=lambda span: (span.start, span.sid),
    )
    phases = [span for span in phases if span.end is not None]
    rows = waterfall_rows([(span.name, span.end) for span in phases], root.start)
    for row, span in zip(rows, phases):
        if span.attrs.get("out_of_order"):
            row["out_of_order"] = True
            row["marker"] = "!"
    total = root.duration
    events = sorted(
        (span for span in spans if getattr(span, "category", None) == "event"),
        key=lambda span: (span.start, span.sid),
    )
    for span in events:
        offset = span.start - root.start
        rows.append(
            {
                "name": span.name,
                "kind": "event",
                "start_s": offset,
                "duration_s": 0.0,
                "offset_frac": (offset / total) if total > 0 else 0.0,
                "width_frac": 0.0,
                "out_of_order": False,
                "marker": "!",
            }
        )
    return rows


def spans_to_timeline(spans: Sequence) -> list[tuple[str, float]]:
    """Phase spans (repro.obs) -> the flat (name, stamp) milestone timeline.

    Keeps :func:`waterfall` working on top of span trees: feed it the phase
    children of one request's root span (any iteration order).
    """
    phases = sorted(
        (span for span in spans if getattr(span, "category", None) == "phase"),
        key=lambda span: (span.start, span.sid),
    )
    return [(span.name, span.end) for span in phases if span.end is not None]


def span_waterfall(root, spans: Sequence, width: int = 50) -> str:
    """ASCII waterfall of one traced request, from its span tree."""
    return waterfall(spans_to_timeline(spans), root.start, width=width)
